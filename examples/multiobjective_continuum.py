"""A multi-objective Edge-to-Cloud problem (paper Fig. 4, right side).

"Where should the workflow components be executed to minimize
communication costs and end-to-end latency?" — a single multi-objective
optimization problem over the whole continuum.

We model a three-stage workflow (preprocess → infer → search) whose stages
can each be placed on edge, fog or cloud resources. Placement drives both
end-to-end latency (compute speed + network hops) and monetary cost
(cloud resources are fast but billed). The optimizer explores placements
and replica counts; we then extract the Pareto front.

Run:  python examples/multiobjective_continuum.py
"""

from __future__ import annotations

from repro.bayesopt import Categorical, Integer, Space
from repro.optimizer import Objective, OptimizationProblem
from repro.search import SurrogateSearch, run
from repro.testbed import Link, Site, Testbed
from repro.utils.tables import Table

#: per-stage compute demand (work units) and output payload (MB).
STAGES = {"preprocess": (1.0, 0.4), "infer": (8.0, 0.1), "search": (4.0, 0.05)}

#: layer properties: compute speed (work units/s per replica), $/replica-hour.
LAYERS = {
    "edge": {"speed": 1.0, "cost": 0.0},
    "fog": {"speed": 4.0, "cost": 0.08},
    "cloud": {"speed": 16.0, "cost": 0.50},
}

_testbed = Testbed("continuum", [Site("s")])
_testbed.network.constrain("edge", "fog", latency_ms=15.0, bandwidth_gbps=0.05)
_testbed.network.constrain("fog", "cloud", latency_ms=35.0, bandwidth_gbps=1.0)


def evaluate(config: dict) -> dict[str, float]:
    """Latency + cost of one placement (analytic pipeline model)."""
    latency = 0.0
    cost = 0.0
    location = "edge"  # data originates at the edge
    for stage, (work, payload_mb) in STAGES.items():
        target = config[f"{stage}_layer"]
        replicas = config[f"{stage}_replicas"]
        path = _testbed.network.path(location, target)
        latency += path.transfer_time(payload_mb * 1e6)
        layer = LAYERS[target]
        latency += work / (layer["speed"] * replicas)
        cost += layer["cost"] * replicas
        location = target
    return {"latency": latency, "cost": cost}


def main() -> None:
    dimensions = []
    for stage in STAGES:
        dimensions.append(Categorical(list(LAYERS), name=f"{stage}_layer"))
        dimensions.append(Integer(1, 8, name=f"{stage}_replicas"))
    space = Space(dimensions)

    problem = OptimizationProblem(
        space,
        [Objective("latency", "min", weight=1.0), Objective("cost", "max" if False else "min", weight=0.3)],
    )

    def trainable(config: dict) -> dict[str, float]:
        metrics = evaluate(config)
        metrics["objective"] = problem.scalarize(metrics)
        return metrics

    analysis = run(
        trainable,
        search_alg=SurrogateSearch(
            space, base_estimator="ET", n_initial_points=20, random_state=0
        ),
        metric="objective",
        num_samples=80,
        name="continuum-placement",
    )

    evaluations = [t.result for t in analysis.trials if "latency" in t.result]
    front = problem.pareto_front(evaluations)
    table = Table(
        ["latency (s)", "cost ($/h)", "placement"],
        title=f"Pareto front ({len(front)} of {len(evaluations)} evaluations)",
    )
    for index in sorted(front, key=lambda i: evaluations[i]["latency"]):
        config = analysis.trials[index].config
        placement = " → ".join(
            f"{stage}@{config[f'{stage}_layer']}x{config[f'{stage}_replicas']}"
            for stage in STAGES
        )
        table.add_row(
            [f"{evaluations[index]['latency']:.3f}", f"{evaluations[index]['cost']:.2f}", placement]
        )
    print(table.render())
    print(
        "\nReading: cheap all-edge placements pay in latency; renting faster"
        " layers for the heavy inference stage buys latency for money — the"
        " trade-off curve the paper's Fig. 4 (right) sketches."
    )


if __name__ == "__main__":
    main()

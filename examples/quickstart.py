"""Quickstart: simulate the Pl@ntNet engine under two configurations.

Runs the paper's production baseline and refined optimum on the simulated
Grid'5000 scenario and prints the headline comparison (Table IV's essence)
in a few seconds.

Run:  python examples/quickstart.py
"""

from repro.plantnet import BASELINE, REFINED_OPTIMUM, PlantNetScenario
from repro.utils.tables import Table


def main() -> None:
    scenario = PlantNetScenario(
        duration=345.0,      # a quarter of the paper's 23-minute runs
        warmup=60.0,
        repetitions=3,       # the paper uses 7; 3 is plenty for a demo
        base_seed=0,
    )

    print("Simulating the Pl@ntNet Identification Engine on 42 Grid'5000 nodes...")
    results = {
        "baseline (Table II)": scenario.run(BASELINE, simultaneous_requests=80),
        "refined optimum": scenario.run(REFINED_OPTIMUM, simultaneous_requests=80),
    }

    table = Table(
        ["configuration", "pools (H/D/E/S)", "response time (s)", "throughput",
         "CPU", "GPU mem"],
        title="Pl@ntNet engine @ 80 simultaneous requests",
    )
    for name, result in results.items():
        cfg = result.config
        agg = result.aggregate
        table.add_row(
            [
                name,
                f"{cfg.http}/{cfg.download}/{cfg.extract}/{cfg.simsearch}",
                str(agg.user_response_time),
                f"{agg.throughput.mean:.1f} req/s",
                f"{agg.cpu_usage.mean:.0%}",
                f"{agg.gpu_memory_gb:.1f} GB",
            ]
        )
    print(table.render())

    base = results["baseline (Table II)"].user_response_time.mean
    refined = results["refined optimum"].user_response_time.mean
    print(
        f"\nThe refined optimum answers the paper's question: "
        f"{refined / base - 1:+.1%} response time with 35% more request slots "
        f"(HTTP pool 54 vs 40) and 30% less GPU memory."
    )


if __name__ == "__main__":
    main()

"""Multi-objective Pl@ntNet: response time vs GPU memory (NSGA-II).

The paper's conclusions advertise *both* a lower response time *and* 30 %
less GPU memory. Those two goals conflict across the full Eq. 2 space
(more extract threads buy extraction throughput but cost GPU memory), so
the natural formulation is bi-objective. This example recovers the whole
response-time / GPU-memory Pareto front with NSGA-II over the analytic
engine twin and locates the paper's configurations on it.

Run:  python examples/pareto_plantnet.py
"""

from repro.engine import AnalyticEngineModel, GpuModel, EngineModelParams, ThreadPoolConfig
from repro.metaheuristics import NSGA2
from repro.plantnet import BASELINE, REFINED_OPTIMUM, paper_search_space
from repro.utils.tables import Table


def main() -> None:
    model = AnalyticEngineModel()
    gpu = GpuModel(EngineModelParams())

    def objectives(point: list) -> tuple[float, float]:
        http, download, simsearch, extract = point
        config = ThreadPoolConfig(
            http=http, download=download, extract=extract, simsearch=simsearch
        )
        return (
            model.response_time(config, 80),
            gpu.memory_gb(extract),
        )

    front = NSGA2(population_size=48, seed=0).minimize_multi(
        objectives, paper_search_space(), n_iterations=40
    )

    table = Table(
        ["resp (s)", "GPU mem (GB)", "configuration (H/D/S/E)"],
        title=f"Pareto front: response time vs GPU memory ({len(front)} points, "
        f"{front.n_evaluations} evaluations)",
    )
    shown: set[tuple[float, float]] = set()
    for point, values in sorted(zip(front.points, front.values), key=lambda pv: pv[1][0]):
        key = (round(values[0], 4), round(values[1], 2))
        if key in shown:  # many configs tie on the objectives; show one each
            continue
        shown.add(key)
        http, download, simsearch, extract = point
        table.add_row(
            [f"{values[0]:.3f}", f"{values[1]:.1f}", f"{http}/{download}/{simsearch}/{extract}"]
        )
    print(table.render())

    base = objectives([BASELINE.http, BASELINE.download, BASELINE.simsearch, BASELINE.extract])
    refined = objectives(
        [REFINED_OPTIMUM.http, REFINED_OPTIMUM.download, REFINED_OPTIMUM.simsearch, REFINED_OPTIMUM.extract]
    )
    print(f"\nbaseline:        resp {base[0]:.3f} s at {base[1]:.1f} GB (dominated)")
    print(f"refined optimum: resp {refined[0]:.3f} s at {refined[1]:.1f} GB")
    dominated = any(
        v[0] <= refined[0] + 1e-9 and v[1] <= refined[1] + 1e-9 and
        (v[0] < refined[0] - 1e-9 or v[1] < refined[1] - 1e-9)
        for v in front.values
    )
    print(
        "→ the paper's refined optimum sits "
        + ("essentially on" if not dominated else "near")
        + " the Pareto front: extract=6 is the memory-cheapest way to the"
        " fast-response basin, which NSGA-II rediscovers without OAT."
    )


if __name__ == "__main__":
    main()

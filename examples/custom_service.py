"""Optimizing a *different* application: the Sec. V-C generalization.

The paper argues the methodology generalizes beyond Pl@ntNet: users
implement a ``Service`` for their system, describe the scenario (layers,
clusters, network constraints), and express their optimization problem in
the optimizer configuration.

This example builds a Kafka-like edge-to-cloud ingestion pipeline from
scratch on the DES kernel (edge sensors → fog gateway batching → cloud
sink), deploys it through the Services layer, and optimizes the gateway's
batch size and worker count for end-to-end latency under a throughput
constraint — the Fig. 4 (left) kind of problem.

Run:  python examples/custom_service.py
"""

from __future__ import annotations

import tempfile

from repro import simcore
from repro.bayesopt import Integer, Real, Space
from repro.optimizer import (
    MetricConstraint,
    Objective,
    OptimizationManager,
    OptimizationProblem,
    OptimizerConf,
)
from repro.services import Service, ServiceContext
from repro.testbed import grid5000
from repro.utils.stats import RunningStats


class IngestionPipelineSimulation:
    """Edge sensors → fog gateway (batching) → cloud sink, as a DES."""

    def __init__(
        self,
        *,
        sensors: int,
        batch_size: int,
        gateway_workers: int,
        flush_interval: float,
        edge_fog_latency: float,
        fog_cloud_latency: float,
        duration: float = 300.0,
        seed: int = 0,
    ) -> None:
        import numpy as np

        self.env = simcore.Environment()
        self.batch_size = batch_size
        self.flush_interval = flush_interval
        self.edge_fog_latency = edge_fog_latency
        self.fog_cloud_latency = fog_cloud_latency
        self.duration = duration
        self.rng = np.random.default_rng(seed)
        self.queue = simcore.Store(self.env, name="gateway-buffer")
        self.workers = simcore.Resource(self.env, gateway_workers, name="gateway-workers")
        self.latency = RunningStats()
        self.delivered = 0
        for i in range(sensors):
            self.env.process(self._sensor(i), name=f"sensor-{i}")
        for _ in range(gateway_workers):
            self.env.process(self._gateway_worker())

    def _sensor(self, index: int):
        env = self.env
        while env.now < self.duration:
            yield env.timeout(float(self.rng.exponential(1.0)))
            yield env.timeout(self.edge_fog_latency)  # uplink
            yield self.queue.put(env.now)

    def _gateway_worker(self):
        env = self.env
        while True:
            # accumulate a batch (or flush on timer)
            batch: list[float] = []
            first = yield self.queue.get()
            batch.append(first)
            deadline = env.now + self.flush_interval
            while len(batch) < self.batch_size and env.now < deadline:
                get = self.queue.get()
                got = yield simcore.any_of(env, [get, env.timeout(max(0.0, deadline - env.now))])
                if get in got:
                    batch.append(got[get])
                else:
                    break
            with self.workers.request() as req:
                yield req
                # per-batch processing amortizes per-item cost
                yield env.timeout(0.01 + 0.002 * len(batch))
            yield env.timeout(self.fog_cloud_latency)  # downlink to the cloud
            for stamped in batch:
                self.latency.add(env.now - stamped)
                self.delivered += 1

    def run(self) -> dict[str, float]:
        self.env.run(until=self.duration)
        return {
            "end_to_end_latency": self.latency.mean,
            "throughput": self.delivered / self.duration,
            "gateway_busy": self.workers.occupancy(),
        }


class IngestionGatewayService(Service):
    """The user-defined fog gateway service (paper Sec. V-C API)."""

    name = "ingestion-gateway"

    def deploy(self, context: ServiceContext) -> None:
        node = self.require_nodes(context, 1)[0]
        context.deployment.place(
            self.name,
            node,
            cores=int(context.option("workers", 2)),
            memory_gb=8.0,
            batch_size=context.option("batch_size", 16),
        )


def main() -> None:
    # Deploy the gateway on the simulated testbed for provenance, and read
    # the network constraints the experiment declares off the emulator.
    testbed = grid5000()
    testbed.network.constrain("edge", "fog", latency_ms=20.0, bandwidth_gbps=0.1)
    testbed.network.constrain("fog", "cloud", latency_ms=40.0, bandwidth_gbps=1.0)
    edge_fog = testbed.network.path("edge", "fog").latency_ms / 1e3
    fog_cloud = testbed.network.path("fog", "cloud").latency_ms / 1e3

    def evaluator(config: dict, seed: int | None = None, duration: float | None = None):
        sim = IngestionPipelineSimulation(
            sensors=60,
            batch_size=int(config["batch_size"]),
            gateway_workers=int(config["workers"]),
            flush_interval=float(config["flush_interval"]),
            edge_fog_latency=edge_fog,
            fog_cloud_latency=fog_cloud,
            duration=duration or 200.0,
            seed=seed or 0,
        )
        return sim.run()

    conf = OptimizerConf.from_dict(
        {
            "name": "ingestion_gateway",
            "variables": [
                {"name": "batch_size", "type": "integer", "low": 1, "high": 64},
                {"name": "workers", "type": "integer", "low": 1, "high": 8},
                {"name": "flush_interval", "type": "real", "low": 0.05, "high": 2.0},
            ],
            "objectives": [{"metric": "end_to_end_latency", "mode": "min"}],
            "constraints": [{"metric": "throughput", "bound": 55.0, "kind": ">="}],
            "algorithm": {"base_estimator": "ET", "n_initial_points": 10},
            "num_samples": 25,
            "seed": 0,
            "workdir": tempfile.mkdtemp(prefix="ingestion-"),
        }
    )
    manager = OptimizationManager(conf, evaluator=evaluator)
    outcome = manager.run()
    print(outcome.summary.render())
    best = outcome.summary.best_configuration
    metrics = evaluator(best, seed=123)
    print(
        f"\nbest gateway config: batch={best['batch_size']} workers={best['workers']} "
        f"flush={best['flush_interval']:.2f}s → latency {metrics['end_to_end_latency']*1e3:.0f} ms "
        f"at {metrics['throughput']:.0f} msg/s"
    )


if __name__ == "__main__":
    main()

"""The paper's full workflow, end to end (Listing 1 + Sec. IV).

Phase I    — define the Eq. 2 optimization problem.
Phase II   — run the optimization cycle: LHS initial design, Extra-Trees
             surrogate, gp_hedge acquisition, concurrency-limited
             asynchronous evaluations on the simulated testbed.
Phase III  — print the reproducibility summary.
Refinement — One-at-a-time sensitivity analysis around the found optimum
             (the paper's Sec. IV-C), adopting any improvement.
Validation — repeat the final configuration several times, as in
             ``e2clab optimize --repeat 6 --duration 1380``.

Run:  python examples/plantnet_optimization.py
"""

import tempfile

from repro.engine import ThreadPoolConfig
from repro.plantnet import BASELINE, PlantNetOptimization
from repro.sensitivity import OATAnalysis, ParameterSweep
from repro.utils.stats import mean_std


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="plantnet-opt-")

    # Phases I + II: the Listing 1 campaign (reduced budget for a demo).
    optimization = PlantNetOptimization(
        simultaneous_requests=80,
        duration=300.0,
        warmup=60.0,
        n_initial_points=12,
        num_samples=24,
        max_concurrent=2,
        workdir=workdir,
        seed=2021,
    )
    print("Phase II: running the optimization cycle (24 evaluations)...")
    summary = optimization.run()

    # Phase III: the reproducibility summary.
    print()
    print(summary.render())
    print(f"\narchive: {optimization.archive.root}")

    # Sec. IV-C: refine with OAT on the two heavy pools.
    print("\nSensitivity analysis (OAT) around the preliminary optimum...")
    preliminary = dict(summary.best_configuration)
    oat = OATAnalysis(
        lambda cfg: optimization.scenario.evaluate(cfg, 80, seed=99),
        preliminary,
    )
    result = oat.run(
        [
            ParameterSweep.around("extract", preliminary["extract"], 2, minimum=3),
            ParameterSweep.around("simsearch", preliminary["simsearch"], 3, minimum=20),
        ]
    )
    for parameter in ("extract", "simsearch"):
        curve = result.metric_curve(parameter, "user_resp_time")
        pretty = ", ".join(f"{v}:{t:.3f}" for v, t in curve)
        print(f"  {parameter}: {pretty}")
    refined = result.refined_config("user_resp_time")
    print(f"refined optimum: {refined}")

    # Validation campaign: repeat the refined configuration 7 times.
    print("\nValidation: 7 repetitions of baseline vs refined optimum...")
    refined_cfg = ThreadPoolConfig.from_dict(
        {k: refined[k] for k in ("http", "download", "extract", "simsearch")}
    )
    scenario = optimization.scenario
    base_runs = [
        scenario.evaluate(BASELINE.to_dict(), 80, seed=1000 + i)["user_resp_time"]
        for i in range(7)
    ]
    refined_runs = [
        scenario.evaluate(refined_cfg.to_dict(), 80, seed=1000 + i)["user_resp_time"]
        for i in range(7)
    ]
    base = mean_std(base_runs)
    best = mean_std(refined_runs)
    print(f"  baseline: {base}")
    print(f"  refined:  {best}")
    print(f"  improvement: {1 - best.mean / base.mean:+.1%} (paper: +7.2% at 80 requests)")


if __name__ == "__main__":
    main()

"""Capacity planning for the spring peak (the paper's motivating question).

"One main challenge faced by Pl@ntNet engineers is to anticipate the
necessary evolution of the infrastructure to pass the upcoming spring peak
and adapt the system configuration to some expected evolution of
application usage."

This example chains the Fig. 2 growth model with the engine simulator:
project the user base forward, translate it into simultaneous requests,
and find — for both the baseline and the refined optimum — the day the
4-second tolerance is breached.

Run:  python examples/capacity_planning.py
"""

from repro.engine import AnalyticEngineModel
from repro.plantnet import BASELINE, REFINED_OPTIMUM, UserGrowthModel
from repro.plantnet.configs import MAX_TOLERATED_RESPONSE_TIME
from repro.utils.tables import Table


def main() -> None:
    growth = UserGrowthModel()
    engine = AnalyticEngineModel()

    # Calibrate the bridge so "today" (day 0 of the projection) matches the
    # paper's current operating point of ~80 simultaneous requests.
    today = 720.0  # two years into the synthetic history
    scale = 80.0 / growth.expected_simultaneous_requests(today)

    table = Table(
        ["day", "simultaneous requests", "baseline resp (s)", "refined resp (s)"],
        title="Projected load vs response time (4 s tolerance)",
    )
    breach = {"baseline": None, "refined": None}
    horizon = range(int(today), int(today) + 540, 30)
    for day in horizon:
        requests = int(round(scale * growth.expected_simultaneous_requests(float(day))))
        requests = max(1, requests)
        base = engine.response_time(BASELINE, requests)
        refined = engine.response_time(REFINED_OPTIMUM, requests)
        table.add_row([day - int(today), requests, f"{base:.2f}", f"{refined:.2f}"])
        if breach["baseline"] is None and base > MAX_TOLERATED_RESPONSE_TIME:
            breach["baseline"] = (day - int(today), requests)
        if breach["refined"] is None and refined > MAX_TOLERATED_RESPONSE_TIME:
            breach["refined"] = (day - int(today), requests)
    print(table.render())

    print()
    for name, hit in breach.items():
        if hit:
            day, requests = hit
            print(f"{name}: breaches the 4 s tolerance in ~{day} days (≈{requests} simultaneous requests)")
        else:
            print(f"{name}: survives the whole horizon")
    if breach["baseline"] and breach["refined"]:
        bought = breach["refined"][0] - breach["baseline"][0]
        print(
            f"\nThe refined configuration buys ≈{bought} extra days before the "
            "infrastructure must grow — configuration optimization as a free "
            "capacity upgrade, which is the paper's core argument."
        )


if __name__ == "__main__":
    main()

"""Sensitivity analysis of the Pl@ntNet engine (paper Sec. IV-C, extended).

Reproduces the Fig. 9 one-at-a-time study around the preliminary optimum
and extends it with Morris elementary-effects screening over the whole
Eq. 2 space — answering "which thread pool matters most?" globally rather
than around a single point.

Run:  python examples/sensitivity_analysis.py
"""

from repro.engine import AnalyticEngineModel, ThreadPoolConfig
from repro.plantnet import PRELIMINARY_OPTIMUM, PlantNetScenario, paper_search_space
from repro.sensitivity import MorrisAnalysis, OATAnalysis, ParameterSweep
from repro.utils.tables import Table


def oat_study() -> None:
    scenario = PlantNetScenario(duration=300.0, warmup=60.0, repetitions=1, base_seed=5)
    analysis = OATAnalysis(
        lambda cfg: scenario.evaluate(cfg, 80, seed=5),
        PRELIMINARY_OPTIMUM.to_dict(),
    )
    result = analysis.run(
        [
            ParameterSweep.around("extract", 7, 2, minimum=3),
            ParameterSweep.around("simsearch", 53, 3, minimum=20),
        ]
    )

    table = Table(
        ["extract", "resp (s)", "CPU", "extract busy", "simsearch busy"],
        title="OAT: extract pool around the preliminary optimum (Fig. 9)",
    )
    for value, metrics in result.sweeps["extract"]:
        table.add_row(
            [
                value,
                f"{metrics['user_resp_time']:.3f}",
                f"{metrics['cpu_usage']:.0%}",
                f"{metrics['busy_extract']:.0%}",
                f"{metrics['busy_simsearch']:.0%}",
            ]
        )
    print(table.render())
    best_extract, best_value = result.best("extract", "user_resp_time")
    print(f"→ OAT minimum at extract={best_extract} ({best_value:.3f} s); the paper adopts 6.\n")


def morris_study() -> None:
    # Morris over the whole space needs many evaluations: use the fast
    # analytic twin (validated against the DES in the benchmarks).
    model = AnalyticEngineModel()

    def objective(point: list) -> float:
        http, download, simsearch, extract = point
        return model.response_time(
            ThreadPoolConfig(http=http, download=download, extract=extract, simsearch=simsearch),
            80,
        )

    result = MorrisAnalysis(objective, paper_search_space(), seed=0).run(n_trajectories=30)
    table = Table(
        ["thread pool", "mu_star (importance)", "sigma (interactions)"],
        title="Morris screening over the Eq. 2 space (extension)",
    )
    for name, mu_star, sigma in zip(result.names, result.mu_star, result.sigma):
        table.add_row([name, f"{mu_star:.3f}", f"{sigma:.3f}"])
    print(table.render())
    print(f"→ global importance ranking: {' > '.join(result.ranking())}")
    print(
        "  (globally, the HTTP admission pool dominates — it spans 20–60 —\n"
        "   while around the optimum the extract pool drives the trade-off,\n"
        "   which is why the paper's local OAT zooms on extract/simsearch)"
    )


if __name__ == "__main__":
    oat_study()
    morris_study()

"""Deterministic seeding helpers.

Reproducibility is the heart of the paper, so every stochastic component in
this library draws from a :class:`numpy.random.Generator` derived from an
explicit seed. This module centralizes how seeds are derived so that

- the same top-level seed always produces the same experiment, and
- independent components (workload generator, service-time noise, optimizer)
  get *independent* streams even when spawned from the same parent seed.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

__all__ = ["spawn_rng", "derive_seed", "SeedSequenceFactory"]


def spawn_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a fresh :class:`numpy.random.Generator`.

    ``seed`` may be an ``int``, ``None`` (non-deterministic), or an existing
    generator, in which case a *child* generator is spawned so the parent's
    stream is not consumed by the callee.
    """
    if isinstance(seed, np.random.Generator):
        return np.random.Generator(np.random.PCG64(seed.integers(0, 2**63)))
    return np.random.default_rng(seed)


def derive_seed(base: int, *components: int | str) -> int:
    """Derive a stable 63-bit child seed from ``base`` and a component path.

    Uses :class:`numpy.random.SeedSequence` entropy mixing, with strings
    hashed stably (not via :func:`hash`, which is salted per process).
    """
    keys: list[int] = [int(base)]
    for comp in components:
        if isinstance(comp, str):
            keys.append(int.from_bytes(comp.encode("utf-8")[:8].ljust(8, b"\0"), "little"))
        else:
            keys.append(int(comp))
    seq = np.random.SeedSequence(keys)
    return int(seq.generate_state(1, dtype=np.uint64)[0] >> 1)


class SeedSequenceFactory:
    """Hand out named, independent random generators from one root seed.

    Example::

        factory = SeedSequenceFactory(42)
        workload_rng = factory.rng("workload")
        service_rng = factory.rng("service-times")

    Requesting the same name twice returns generators with identical streams,
    making component-level replay possible.
    """

    def __init__(self, root_seed: int) -> None:
        self.root_seed = int(root_seed)

    def seed(self, *components: int | str) -> int:
        """Return the derived child seed for a component path."""
        return derive_seed(self.root_seed, *components)

    def rng(self, *components: int | str) -> np.random.Generator:
        """Return a generator for a component path."""
        return np.random.default_rng(self.seed(*components))

    def seeds(self, name: str, count: int) -> Iterable[int]:
        """Yield ``count`` distinct seeds under ``name`` (for repetitions)."""
        return [self.seed(name, i) for i in range(count)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SeedSequenceFactory(root_seed={self.root_seed})"

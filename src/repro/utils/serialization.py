"""JSON-based serialization with numpy support, used for provenance capture.

Phase III of the methodology archives the optimization definition, every
evaluated point, and intermediate models. All of those records flow through
:func:`to_jsonable` so archives are plain JSON — diff-able and re-loadable
without this library.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any

import numpy as np

__all__ = ["to_jsonable", "dump_json", "load_json", "canonical_config", "config_hash"]


def to_jsonable(obj: Any) -> Any:
    """Recursively convert ``obj`` into JSON-serializable primitives.

    Handles dataclasses, numpy scalars/arrays, paths, sets and mappings.
    Objects exposing ``to_dict()`` are converted through it.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, (np.bool_,)):
        return bool(obj)
    if isinstance(obj, np.ndarray):
        return [to_jsonable(x) for x in obj.tolist()]
    if isinstance(obj, Path):
        return str(obj)
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {f.name: to_jsonable(getattr(obj, f.name)) for f in dataclasses.fields(obj)}
    if hasattr(obj, "to_dict") and callable(obj.to_dict):
        return to_jsonable(obj.to_dict())
    if isinstance(obj, dict):
        return {str(k): to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [to_jsonable(x) for x in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted(to_jsonable(x) for x in obj)
    raise TypeError(f"cannot serialize object of type {type(obj).__name__}")


def canonical_config(obj: Any) -> Any:
    """Normalize a configuration for identity comparison and hashing.

    Two configs that denote the same point must normalize identically even
    when their representations drifted — the failure mode PR 3's checkpoint
    replay hit: ints resurfacing as floats after a JSON round-trip, tuples
    becoming lists, keys reordered. Rules:

    - mappings → dicts with stringified keys, entries sorted by key;
    - lists/tuples/arrays → lists of normalized elements;
    - whole floats (``5.0``, numpy scalars) → ints, so ``5`` == ``5.0``;
    - everything else goes through :func:`to_jsonable`.
    """
    obj = to_jsonable(obj)

    def norm(value: Any) -> Any:
        if isinstance(value, bool):
            return value
        if isinstance(value, float):
            if value.is_integer():
                return int(value)
            return value
        if isinstance(value, dict):
            return {str(k): norm(v) for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))}
        if isinstance(value, list):
            return [norm(v) for v in value]
        return value

    return norm(obj)


def config_hash(obj: Any, *extra: Any) -> str:
    """Stable content hash of a configuration (plus optional extras).

    The hash is over the canonical JSON encoding, so any two configs that
    :func:`canonical_config` maps to the same value share a hash — the
    identity used by the evaluation cache and checkpoint replay matching.
    """
    payload = canonical_config(obj if not extra else (obj, *extra))
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


def dump_json(obj: Any, path: str | Path, *, indent: int = 2, atomic: bool = False) -> Path:
    """Serialize ``obj`` to ``path`` as JSON; returns the path.

    With ``atomic=True`` the document is written to a temporary file in the
    *same directory* (same filesystem, so the rename cannot cross devices),
    fsync'd, then moved into place with :func:`os.replace`. A reader — or a
    process resuming after a crash mid-write — can then only ever observe
    the previous complete document or the new one, never a truncated JSON.
    Checkpoints (``checkpoint.json``) and perf profiles are written this way.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    text = json.dumps(to_jsonable(obj), indent=indent, sort_keys=True)
    if not atomic:
        path.write_text(text)
        return path
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp_name)
        raise
    return path


def load_json(path: str | Path) -> Any:
    """Load JSON from ``path``."""
    return json.loads(Path(path).read_text())

"""Sampled time series, the unit of monitoring data.

The paper collects metric values every 10 seconds during each 23-minute run
(138 samples per run). :class:`TimeSeries` stores ``(time, value)`` samples,
supports windowed aggregation, resampling, and merging across repetitions.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.utils.stats import Summary, mean_std

__all__ = ["TimeSeries"]


class TimeSeries:
    """An append-only series of ``(time, value)`` samples."""

    __slots__ = ("name", "_times", "_values")

    def __init__(self, name: str = "", samples: Iterable[tuple[float, float]] = ()) -> None:
        self.name = name
        self._times: list[float] = []
        self._values: list[float] = []
        for t, v in samples:
            self.append(t, v)

    def append(self, time: float, value: float) -> None:
        """Append a sample; times must be non-decreasing."""
        if self._times and time < self._times[-1]:
            raise ValueError(
                f"samples must be time-ordered: got t={time} after t={self._times[-1]}"
            )
        self._times.append(float(time))
        self._values.append(float(value))

    @property
    def times(self) -> np.ndarray:
        return np.asarray(self._times, dtype=float)

    @property
    def values(self) -> np.ndarray:
        return np.asarray(self._values, dtype=float)

    def __len__(self) -> int:
        return len(self._times)

    def __iter__(self) -> Iterator[tuple[float, float]]:
        return iter(zip(self._times, self._values))

    def summary(self) -> Summary:
        """Mean ± std over all samples (what the paper tabulates)."""
        return mean_std(self._values)

    def window(self, start: float, end: float) -> "TimeSeries":
        """Samples with ``start <= t < end`` (e.g. drop warm-up)."""
        out = TimeSeries(self.name)
        for t, v in self:
            if start <= t < end:
                out.append(t, v)
        return out

    def resample(self, interval: float) -> "TimeSeries":
        """Average samples into ``interval``-wide buckets anchored at t=0."""
        if interval <= 0:
            raise ValueError("interval must be positive")
        out = TimeSeries(self.name)
        if not self._times:
            return out
        times = self.times
        values = self.values
        buckets = np.floor(times / interval).astype(int)
        for b in np.unique(buckets):
            mask = buckets == b
            out.append((b + 1) * interval, float(values[mask].mean()))
        return out

    def integrate(self) -> float:
        """Trapezoidal integral of the series over its time span."""
        if len(self) < 2:
            return 0.0
        return float(np.trapezoid(self.values, self.times))

    def time_average(self) -> float:
        """Time-weighted average value (integral / span)."""
        if len(self) < 2:
            return float(self._values[0]) if self._values else float("nan")
        span = self._times[-1] - self._times[0]
        if span == 0:
            return float(np.mean(self._values))
        return self.integrate() / span

    @staticmethod
    def merge(series: Sequence["TimeSeries"], name: str = "") -> "TimeSeries":
        """Concatenate repetitions into one pooled sample series.

        Time stamps are offset so repetitions do not interleave; this matches
        the paper pooling 7 × 138 samples into one 966-sample estimate.
        """
        out = TimeSeries(name or (series[0].name if series else ""))
        offset = 0.0
        for s in series:
            for t, v in s:
                out.append(offset + t, v)
            if len(s):
                offset += s.times[-1] + 1.0
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TimeSeries(name={self.name!r}, n={len(self)})"

"""Reservoir sampling for streaming quantile estimates.

The paper reports means, but response-time *tolerances* (the 4-second
ceiling) are really tail questions. Exact percentiles over a 23-minute run
would require storing every response; :class:`ReservoirSampler` keeps a
fixed-size uniform sample (Vitter's Algorithm R) so p50/p95/p99 estimates
stay O(capacity) in memory regardless of run length.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.utils.seeding import spawn_rng

__all__ = ["ReservoirSampler"]


class ReservoirSampler:
    """Uniform fixed-size sample of an unbounded stream (Algorithm R)."""

    __slots__ = ("capacity", "_values", "_seen", "_rng")

    def __init__(self, capacity: int = 10000, *, seed: int | None = 0) -> None:
        if capacity < 1:
            raise ValidationError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._values: list[float] = []
        self._seen = 0
        self._rng = spawn_rng(seed)

    def add(self, value: float) -> None:
        self._seen += 1
        if len(self._values) < self.capacity:
            self._values.append(float(value))
            return
        # replace a random slot with probability capacity/seen
        slot = int(self._rng.integers(0, self._seen))
        if slot < self.capacity:
            self._values[slot] = float(value)

    @property
    def seen(self) -> int:
        """Total observations offered to the reservoir."""
        return self._seen

    def __len__(self) -> int:
        return len(self._values)

    def values(self) -> np.ndarray:
        return np.asarray(self._values, dtype=float)

    def quantile(self, q: float | list[float]):
        """Quantile estimate(s) from the current sample."""
        if not self._values:
            raise ValidationError("empty reservoir")
        qs = np.atleast_1d(np.asarray(q, dtype=float))
        if ((qs < 0) | (qs > 1)).any():
            raise ValidationError("quantiles must be in [0, 1]")
        out = np.quantile(self.values(), qs)
        return float(out[0]) if np.isscalar(q) or np.ndim(q) == 0 else out

    def percentiles(self, ps: tuple[float, ...] = (50.0, 95.0, 99.0)) -> dict[str, float]:
        """Convenience ``{"p50": ..., "p95": ..., "p99": ...}`` mapping."""
        values = self.values()
        if values.size == 0:
            raise ValidationError("empty reservoir")
        return {f"p{p:g}": float(np.percentile(values, p)) for p in ps}

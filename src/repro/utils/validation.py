"""Input validation helpers raising :class:`repro.errors.ValidationError`."""

from __future__ import annotations

from typing import Any

from repro.errors import ValidationError

__all__ = ["check_positive", "check_in_range", "check_probability", "check_type"]


def check_positive(name: str, value: float, *, strict: bool = True) -> float:
    """Validate ``value > 0`` (or ``>= 0`` when ``strict=False``)."""
    value = float(value)
    if strict and value <= 0:
        raise ValidationError(f"{name} must be > 0, got {value}")
    if not strict and value < 0:
        raise ValidationError(f"{name} must be >= 0, got {value}")
    return value


def check_in_range(
    name: str,
    value: float,
    low: float,
    high: float,
    *,
    inclusive: bool = True,
) -> float:
    """Validate ``low <= value <= high`` (or strict bounds)."""
    value = float(value)
    ok = low <= value <= high if inclusive else low < value < high
    if not ok:
        brackets = "[]" if inclusive else "()"
        raise ValidationError(
            f"{name} must be in {brackets[0]}{low}, {high}{brackets[1]}, got {value}"
        )
    return value


def check_probability(name: str, value: float) -> float:
    """Validate ``0 <= value <= 1``."""
    return check_in_range(name, value, 0.0, 1.0)


def check_type(name: str, value: Any, expected: type | tuple[type, ...]) -> Any:
    """Validate ``isinstance(value, expected)``."""
    if not isinstance(value, expected):
        exp = expected.__name__ if isinstance(expected, type) else "/".join(t.__name__ for t in expected)
        raise ValidationError(f"{name} must be of type {exp}, got {type(value).__name__}")
    return value

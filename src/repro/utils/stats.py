"""Lightweight statistics used throughout metric collection.

The paper reports every metric as ``mean (± std)`` over 966 measurements
(138 samples/run × 7 runs). :class:`RunningStats` implements Welford's online
algorithm so time-series collectors never hold the full sample vector, and
:class:`Summary` is the frozen result attached to experiment outputs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = ["RunningStats", "Summary", "mean_std", "confidence_interval"]


class RunningStats:
    """Welford online mean/variance accumulator.

    Supports merging two accumulators (parallel collection) via
    :meth:`merge`, weighted updates via :meth:`add` with ``weight``, and
    min/max tracking.
    """

    __slots__ = ("count", "_mean", "_m2", "_weight", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self._weight = 0.0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value: float, weight: float = 1.0) -> None:
        """Accumulate one observation with optional ``weight`` > 0."""
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight}")
        value = float(value)
        self.count += 1
        self._weight += weight
        delta = value - self._mean
        self._mean += (weight / self._weight) * delta
        self._m2 += weight * delta * (value - self._mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def extend(self, values: Iterable[float]) -> None:
        for v in values:
            self.add(v)

    def merge(self, other: "RunningStats") -> None:
        """Fold ``other`` into ``self`` (Chan et al. parallel variance)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self._weight = other._weight
            self._mean = other._mean
            self._m2 = other._m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            return
        delta = other._mean - self._mean
        total = self._weight + other._weight
        self._mean += delta * other._weight / total
        self._m2 += other._m2 + delta * delta * self._weight * other._weight / total
        self._weight = total
        self.count += other.count
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)

    @property
    def mean(self) -> float:
        if self.count == 0:
            return math.nan
        return self._mean

    @property
    def variance(self) -> float:
        """Population-weighted variance (ddof=0 analogue)."""
        if self.count == 0:
            return math.nan
        if self._weight == 0:
            return 0.0
        return self._m2 / self._weight

    @property
    def std(self) -> float:
        var = self.variance
        return math.sqrt(var) if var == var else math.nan  # NaN-safe

    def summary(self) -> "Summary":
        return Summary(
            mean=self.mean,
            std=self.std,
            count=self.count,
            minimum=self.minimum if self.count else math.nan,
            maximum=self.maximum if self.count else math.nan,
        )

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RunningStats(count={self.count}, mean={self.mean:.6g}, std={self.std:.6g})"


@dataclass(frozen=True)
class Summary:
    """Frozen ``mean (± std)`` record, the unit the paper reports."""

    mean: float
    std: float
    count: int
    minimum: float = math.nan
    maximum: float = math.nan

    def __str__(self) -> str:
        return f"{self.mean:.3f} (±{self.std:.4f})"

    def relative_difference(self, other: "Summary") -> float:
        """Return ``(other - self) / self`` — e.g. the paper's "-7%" gains."""
        if self.mean == 0:
            raise ZeroDivisionError("relative difference against zero mean")
        return (other.mean - self.mean) / self.mean


def mean_std(values: Sequence[float]) -> Summary:
    """One-shot :class:`Summary` of a sample (population std, as the paper)."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return Summary(mean=math.nan, std=math.nan, count=0)
    return Summary(
        mean=float(arr.mean()),
        std=float(arr.std()),
        count=int(arr.size),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
    )


def confidence_interval(values: Sequence[float], level: float = 0.95) -> tuple[float, float]:
    """Normal-approximation confidence interval for the sample mean."""
    from scipy import stats as sps

    arr = np.asarray(list(values), dtype=float)
    if arr.size < 2:
        raise ValueError("confidence interval needs at least two samples")
    sem = arr.std(ddof=1) / math.sqrt(arr.size)
    z = sps.norm.ppf(0.5 + level / 2.0)
    centre = float(arr.mean())
    return centre - z * sem, centre + z * sem

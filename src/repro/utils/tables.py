"""Plain-text table rendering for benchmark/report output.

The benchmark harness regenerates the paper's tables; :class:`Table` renders
them in a compact ASCII format so ``pytest -s benchmarks/`` prints the same
rows the paper reports.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

__all__ = ["Table"]


class Table:
    """A small column-aligned ASCII table.

    Example::

        t = Table(["Thread pool", "baseline", "preliminary optimum"])
        t.add_row(["HTTP", 40, 54])
        print(t.render())
    """

    def __init__(self, headers: Sequence[str], *, title: str | None = None) -> None:
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: list[list[str]] = []

    def add_row(self, row: Iterable[Any]) -> None:
        cells = [self._fmt(c) for c in row]
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(cells)

    @staticmethod
    def _fmt(cell: Any) -> str:
        if isinstance(cell, float):
            return f"{cell:.4g}"
        return str(cell)

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(" | ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append(sep)
        for row in self.rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()

"""Shared utilities: seeding, statistics, validation, tables, serialization."""

from repro.utils.seeding import SeedSequenceFactory, spawn_rng
from repro.utils.stats import RunningStats, Summary, mean_std, confidence_interval
from repro.utils.validation import (
    check_in_range,
    check_positive,
    check_probability,
    check_type,
)
from repro.utils.reservoir import ReservoirSampler
from repro.utils.tables import Table
from repro.utils.timeseries import TimeSeries

__all__ = [
    "SeedSequenceFactory",
    "spawn_rng",
    "RunningStats",
    "Summary",
    "mean_std",
    "confidence_interval",
    "check_in_range",
    "check_positive",
    "check_probability",
    "check_type",
    "ReservoirSampler",
    "Table",
    "TimeSeries",
]

"""Asynchronous parallel trial execution (the reproduction's Ray Tune).

The paper's Optimization Manager uses Ray Tune to run parallel application
evaluations with state-of-the-art search algorithms, a concurrency limiter
and the AsyncHyperBand trial scheduler (Listing 1). This package provides
the equivalent pieces:

- :class:`Trial` / :class:`TrialRunner` — trial lifecycle and the
  asynchronous execution loop over a pluggable
  :class:`ExecutionBackend` (sync, thread, process, or the distributed
  store backend).
- :class:`TrialStore` / :func:`run_worker` — the shared crash-safe trial
  ledger and the elastic worker loop behind the ``"store"`` executor.
- :class:`SurrogateSearch` — a search algorithm wrapping
  :class:`repro.bayesopt.Optimizer` (the analogue of ``SkOptSearch``).
- :class:`RandomSearch`, :class:`GridSearch` — non-model baselines.
- :class:`ConcurrencyLimiter` — caps simultaneous suggestions.
- :class:`FIFOScheduler`, :class:`AsyncHyperBandScheduler` — trial
  schedulers (ASHA-style early stopping of bad configurations).
- :func:`run` — the ``tune.run``-like facade returning an
  :class:`ExperimentAnalysis`.
"""

from repro.search.trial import Trial, TrialStatus, Reporter
from repro.search.algos import (
    ConcurrencyLimiter,
    GridSearch,
    RandomSearch,
    SearchAlgorithm,
    SurrogateSearch,
)
from repro.search.schedulers import (
    AsyncHyperBandScheduler,
    FIFOScheduler,
    TrialDecision,
    TrialScheduler,
)
from repro.search.backends import (
    ExecutionBackend,
    available_backends,
    create_backend,
    register_backend,
)
from repro.search.runner import ExperimentAnalysis, TrialRunner, run
from repro.search.store import TrialClaim, TrialStore
from repro.search.worker import run_worker, worker_trainable_from_run_dir

__all__ = [
    "ExecutionBackend",
    "available_backends",
    "create_backend",
    "register_backend",
    "TrialStore",
    "TrialClaim",
    "run_worker",
    "worker_trainable_from_run_dir",
    "Trial",
    "TrialStatus",
    "Reporter",
    "SearchAlgorithm",
    "SurrogateSearch",
    "RandomSearch",
    "GridSearch",
    "ConcurrencyLimiter",
    "TrialScheduler",
    "TrialDecision",
    "FIFOScheduler",
    "AsyncHyperBandScheduler",
    "TrialRunner",
    "ExperimentAnalysis",
    "run",
]

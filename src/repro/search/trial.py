"""Trials: one objective evaluation each, with intermediate reporting."""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

__all__ = ["TrialStatus", "Trial", "Reporter", "StopTrial"]


class TrialStatus(str, enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    TERMINATED = "terminated"
    STOPPED = "stopped"  # early-stopped by a scheduler
    ERROR = "error"


class StopTrial(Exception):
    """Raised inside a trainable when the scheduler stops the trial."""


@dataclass
class Trial:
    """One configuration under evaluation."""

    trial_id: str
    config: dict[str, Any]
    status: TrialStatus = TrialStatus.PENDING
    #: final metrics (includes the objective metric).
    result: dict[str, float] = field(default_factory=dict)
    #: (step, metric value) intermediate reports.
    intermediate: list[tuple[int, float]] = field(default_factory=list)
    error: Optional[str] = None
    runtime_s: float = 0.0
    #: cycle-cost attribution filled by the runner: ``suggest_s`` /
    #: ``evaluate_s`` / ``tell_s`` seconds (see repro.observability.profile).
    cost: dict[str, float] = field(default_factory=dict)
    #: ``time.perf_counter()`` at executor submission — set by the runner,
    #: read back for the queue-wait span. A declared field (not an ad-hoc
    #: attribute) so it survives dataclass copying and pickling.
    _submitted: Optional[float] = None
    #: ``time.perf_counter()`` when the process-executor submit happened;
    #: the submit→collect wall is the only evaluate cost observable across
    #: a process boundary.
    _start: Optional[float] = None

    @property
    def last_step(self) -> int:
        return self.intermediate[-1][0] if self.intermediate else 0

    def metric_value(self, metric: str) -> float:
        try:
            return self.result[metric]
        except KeyError:
            raise KeyError(
                f"trial {self.trial_id} reported no metric {metric!r}; "
                f"has: {sorted(self.result)}"
            ) from None

    def to_dict(self) -> dict[str, Any]:
        return {
            "trial_id": self.trial_id,
            "config": dict(self.config),
            "status": self.status.value,
            "result": dict(self.result),
            "intermediate": list(self.intermediate),
            "error": self.error,
            "runtime_s": self.runtime_s,
            "cost": dict(self.cost),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Trial":
        """Rebuild a trial from its :meth:`to_dict` form (checkpoint resume)."""
        return cls(
            trial_id=str(data["trial_id"]),
            config=dict(data["config"]),
            status=TrialStatus(data.get("status", "pending")),
            result={k: float(v) for k, v in data.get("result", {}).items()},
            intermediate=[(int(s), float(v)) for s, v in data.get("intermediate", [])],
            error=data.get("error"),
            runtime_s=float(data.get("runtime_s", 0.0)),
            cost={k: float(v) for k, v in data.get("cost", {}).items()},
        )


class Reporter:
    """Handed to trainables for intermediate metric reporting.

    Calling :meth:`report` records the value and consults the scheduler;
    if the scheduler decides to stop the trial, :class:`StopTrial` is
    raised inside the trainable — catch-free propagation ends the trial
    cleanly with its last reported value.
    """

    def __init__(
        self,
        trial: Trial,
        on_report: Callable[[Trial, int, float], bool],
        lock: threading.Lock,
    ) -> None:
        self._trial = trial
        self._on_report = on_report
        self._lock = lock
        self._step = 0

    def report(self, value: float, step: int | None = None) -> None:
        """Report an intermediate objective value; may raise StopTrial."""
        self._step = self._step + 1 if step is None else int(step)
        with self._lock:
            self._trial.intermediate.append((self._step, float(value)))
            keep_going = self._on_report(self._trial, self._step, float(value))
        if not keep_going:
            raise StopTrial()

"""The store-backed trial worker loop (``python -m repro worker``).

A worker is the distributed counterpart of one process-pool slot: it opens
the campaign's :class:`~repro.search.store.TrialStore`, then loops
``pick_trial`` → execute → ``end_trial`` until the campaign closes (the
powerlift ``run_trials`` shape). Workers are elastic — any number can join
or leave mid-campaign, from any process or host that can see the run
directory — and crash-tolerant: a heartbeat thread renews the worker's
lease while a trial runs, so a worker that dies (even ``kill -9``) simply
stops heartbeating and its trial is reclaimed by a peer once the lease
expires.

Execution semantics are identical to the in-process executors: the same
:func:`~repro.search.execution.process_attempts` retry/timeout loop, the
same taint markers, and — when the campaign parent is observing — the same
telemetry fabric, with per-trial payloads persisted into the ledger for the
parent to merge (spans arrive stamped with this worker's ``runner_id``).
"""

from __future__ import annotations

import os
import socket
import threading
import time
from pathlib import Path
from typing import Any, Optional

from repro.observability import fabric
from repro.search.execution import Trainable, process_attempts
from repro.search.store import TrialClaim, TrialStore

__all__ = ["run_worker", "default_runner_id", "worker_trainable_from_run_dir"]


def default_runner_id(prefix: str | None = None) -> str:
    """A stable-for-this-process worker identity: ``host-pid``."""
    base = f"{socket.gethostname()}-{os.getpid()}"
    return f"{prefix}/{base}" if prefix else base


class _Heartbeat:
    """Renews one claim's lease on a background thread while a trial runs."""

    def __init__(self, store: TrialStore, claim: TrialClaim, lease_s: float) -> None:
        self._store = store
        self._claim = claim
        self._lease_s = lease_s
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._beat, name=f"heartbeat-{claim.trial_id}", daemon=True
        )
        self._thread.start()

    def _beat(self) -> None:
        # Renew well inside the lease window so one missed beat (GC pause,
        # slow filesystem) does not forfeit the claim.
        interval = max(self._lease_s / 3.0, 0.05)
        while not self._stop.wait(interval):
            try:
                self._store.heartbeat(
                    self._claim.trial_id, self._claim.runner_id, lease_s=self._lease_s
                )
            except OSError:  # pragma: no cover - fs hiccup: retry next beat
                continue

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=2.0)


def run_worker(
    store: TrialStore | str | Path,
    trainable: Trainable,
    *,
    runner_id: str | None = None,
    lease_s: float | None = None,
    poll_s: float = 0.1,
    idle_timeout_s: float | None = None,
    max_trials: int | None = None,
    on_trial: Any = None,
    push: Any = None,
) -> int:
    """Process trials from ``store`` until the campaign closes.

    Returns the number of trials this worker completed. Exits when the
    store is closed and no work is claimable, after ``idle_timeout_s``
    seconds without claimable work, or after ``max_trials`` completions.
    ``on_trial(claim, outcome)`` is an optional observer hook (used by the
    CLI for progress lines). ``push`` is an optional
    :class:`~repro.observability.live.TelemetryPusher`: per-trial fabric
    payloads then stream to the campaign's live monitor *mid-campaign*
    (activating worker telemetry even when the parent is not observing);
    a failed push falls back to embedding the payload in the ledger
    outcome, so telemetry is never lost.
    """
    if not isinstance(store, TrialStore):
        store = TrialStore.open(store)
    meta = store.meta
    runner_id = runner_id or default_runner_id(str(meta.get("name", "")) or None)
    lease = float(meta.get("lease_s", 30.0) if lease_s is None else lease_s)
    max_retries = int(meta.get("max_retries", 0))
    backoff_s = float(meta.get("retry_backoff_s", 0.0))
    timeout_s = meta.get("trial_timeout_s")
    timeout_s = None if timeout_s is None else float(timeout_s)
    telemetry = bool(meta.get("telemetry", False)) or push is not None
    if telemetry:
        fabric.activate_worker(str(meta.get("name", "experiment")))
    completed = 0
    idle_since: Optional[float] = None
    while True:
        if max_trials is not None and completed >= max_trials:
            break
        claim = store.pick_trial(runner_id, lease_s=lease)
        if claim is None:
            state = store.snapshot()
            if state.closed and not state.unfinished():
                break
            if state.closed and not state.live_leases():
                # Closed with unfinished trials and nobody working on them:
                # the parent aborted mid-campaign. Nothing left to do.
                break
            now = time.monotonic()
            idle_since = now if idle_since is None else idle_since
            if idle_timeout_s is not None and now - idle_since >= idle_timeout_s:
                break
            time.sleep(poll_s)
            continue
        idle_since = None
        heartbeat = _Heartbeat(store, claim, lease)
        try:
            outcome = _execute_claim(
                trainable, claim, max_retries, backoff_s, timeout_s, telemetry, push
            )
        finally:
            heartbeat.stop()
        store.end_trial(claim.trial_id, runner_id, outcome)
        completed += 1
        if on_trial is not None:
            on_trial(claim, outcome)
    return completed


def _execute_claim(
    trainable: Trainable,
    claim: TrialClaim,
    max_retries: int,
    backoff_s: float,
    timeout_s: float | None,
    telemetry: bool,
    push: Any = None,
) -> dict[str, Any]:
    """Run one claimed trial and build its ledger outcome payload."""
    from repro.observability.digest import get_perf
    from repro.observability.trace import get_tracer

    if not (telemetry and fabric.worker_active()):
        outcome = process_attempts(
            trainable, dict(claim.config), max_retries, backoff_s, timeout_s
        )
    else:
        tracer = get_tracer()
        start = time.perf_counter()
        with tracer.span("evaluate", trial_id=claim.trial_id):
            outcome = process_attempts(
                trainable, dict(claim.config), max_retries, backoff_s, timeout_s
            )
        evaluate_s = time.perf_counter() - start
        get_perf().record("evaluate", evaluate_s)
        outcome["evaluate_s"] = evaluate_s
        payload = fabric.drain_worker()
        pushed = False
        if push is not None and payload is not None:
            # Streamed to the live monitor: do not also embed the payload,
            # or the parent would merge every span twice at drain time.
            pushed = push.push(payload, attributes={"trial_id": claim.trial_id})
        if pushed:
            outcome["telemetry_pushed"] = True
        else:
            outcome["telemetry"] = payload
    # A reclaimed trial's measurement may overlap a zombie twin still
    # running elsewhere; flag it so the evaluation cache refuses admission.
    if claim.prior_claims:
        outcome["tainted"] = True
        outcome["reclaimed"] = claim.prior_claims
    return outcome


def _local_worker_main(
    store_root: str, trainable: Trainable, runner_id: str, poll_s: float = 0.05
) -> None:
    """Child-process target for the store backend's ``spawn="mp"`` workers."""
    run_worker(store_root, trainable, runner_id=runner_id, poll_s=poll_s)


def worker_trainable_from_run_dir(run_dir: str | Path) -> Trainable:
    """Rebuild a campaign's evaluation callable from its run directory.

    Mirrors what ``python -m repro optimize`` wires up for the parent: the
    ``optimizer_conf.json`` saved next to the artifacts defines the
    Pl@ntNet scenario (duration, seed), the fault injector, and the
    objective scalarization — so a worker on another host evaluates
    configurations *identically* to an in-process executor slot.
    """
    from repro.optimizer import OptimizerConf
    from repro.optimizer.optimization import SCALAR_METRIC
    from repro.plantnet import PlantNetScenario

    run_dir = Path(run_dir)
    conf_path = run_dir / "optimizer_conf.json"
    if not conf_path.exists():
        raise FileNotFoundError(
            f"{conf_path} not found — store-backed workers rebuild the "
            "evaluator from the conf the campaign parent saved there"
        )
    conf = OptimizerConf.from_json(conf_path)
    scenario = PlantNetScenario(duration=conf.duration or 300.0, base_seed=conf.seed or 0)
    problem = conf.build_problem()

    def evaluator(config: dict[str, Any], **kwargs: Any) -> dict[str, float]:
        return scenario.evaluate(config, **kwargs)

    injector = conf.build_fault_injector()
    evaluate = injector.wrap(evaluator) if injector is not None else evaluator

    def trainable(config: dict[str, Any]) -> dict[str, float]:
        metrics = dict(evaluate(dict(config)))
        metrics[SCALAR_METRIC] = problem.scalarize(metrics)
        return metrics

    return trainable

"""Pluggable trial-execution backends for the :class:`TrialRunner`.

The runner's main loop is backend-agnostic: it suggests configurations,
hands trials to a backend, and folds completed outcomes back into the
search algorithm. Backends own *where and how* a trial executes:

- :class:`SyncBackend` — deterministic sequential execution in the caller
  thread (tests, debugging).
- :class:`ThreadBackend` — a thread pool; supports schedulers and
  intermediate reporting.
- :class:`ProcessBackend` — a process pool; the trainable is registered
  once per worker by the pool initializer, submissions ship compact trial
  specs, and outcomes return as structured payloads.
- :class:`StoreBackend` — **distributed** execution through a shared
  file-backed :class:`~repro.search.store.TrialStore`: trials are
  persisted to the campaign ledger, workers (local child processes and/or
  elastic ``python -m repro worker <run-dir>`` joiners, possibly on other
  hosts) claim them under lease+heartbeat, and the parent folds ledgered
  outcomes back exactly like process-pool payloads — retries, taint
  markers and telemetry included.

Third parties can plug in their own transport with
:func:`register_backend`; the runner resolves backend names through
:func:`available_backends` at validation time.
"""

from __future__ import annotations

import abc
import os
import subprocess
import sys
import time
import warnings
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.errors import TrialError, ValidationError
from repro.search.execution import pool_init, process_entry
from repro.search.store import DEFAULT_LEASE_S, TrialStore
from repro.search.trial import Trial, TrialStatus

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.search.runner import TrialRunner

__all__ = [
    "ExecutionBackend",
    "SyncBackend",
    "ThreadBackend",
    "ProcessBackend",
    "StoreBackend",
    "register_backend",
    "available_backends",
    "backend_class",
    "create_backend",
]


class ExecutionBackend(abc.ABC):
    """One way of executing trials on behalf of a :class:`TrialRunner`.

    A backend is constructed per run with the owning runner (a friend
    object: backends drive the runner's observability and retry helpers so
    every backend reports costs and spans identically). Lifecycle::

        backend.start()
        future = backend.submit(trial)        # any number of times
        done = backend.wait_any(futures)      # blocks for >=1 completion
        backend.collect(future, trial)        # fold the outcome into trial
        backend.shutdown(cancel=...)          # always called (finally)
    """

    #: registry key and ``TrialRunner(executor=...)`` name.
    name: str = ""
    #: whether trials can consult the scheduler mid-flight (thread/sync).
    supports_mid_trial_scheduling: bool = True

    def __init__(self, runner: "TrialRunner") -> None:
        self.runner = runner

    @property
    def capacity(self) -> int:
        """How many trials may be in flight (sizes the suggest batches)."""
        return self.runner.max_workers

    def start(self) -> None:
        """Acquire executor resources (pools, stores, worker processes)."""

    @abc.abstractmethod
    def submit(self, trial: Trial) -> Future:
        """Dispatch one trial; the future resolves when it finishes."""

    def wait_any(self, futures: set[Future]) -> set[Future]:
        """Block until at least one submitted trial completes."""
        done, _ = wait(futures, return_when=FIRST_COMPLETED)
        return done

    def collect(self, future: Future, trial: Trial) -> None:
        """Fold a completed future's outcome into ``trial``."""
        future.result()  # propagate unexpected harness errors only

    def shutdown(self, cancel: bool = False) -> None:
        """Release resources; ``cancel`` abandons queued work."""


class SyncBackend(ExecutionBackend):
    """Sequential in-caller execution; ``submit`` returns a done future."""

    name = "sync"

    @property
    def capacity(self) -> int:
        return 1

    def submit(self, trial: Trial) -> Future:
        self.runner._execute_with_retry(trial)
        future: Future = Future()
        future.set_result(None)
        return future


class ThreadBackend(ExecutionBackend):
    """Thread-pool execution with mid-trial scheduler consultation."""

    name = "thread"

    def start(self) -> None:
        self._pool = ThreadPoolExecutor(max_workers=self.runner.max_workers)

    def submit(self, trial: Trial) -> Future:
        trial.status = TrialStatus.RUNNING
        trial._submitted = time.perf_counter()
        return self._pool.submit(self.runner._run_threaded, trial)

    def shutdown(self, cancel: bool = False) -> None:
        self._pool.shutdown(wait=True, cancel_futures=cancel)


class ProcessBackend(ExecutionBackend):
    """Process-pool execution via the picklable :func:`process_entry`."""

    name = "process"
    supports_mid_trial_scheduling = False

    def start(self) -> None:
        # The initializer registers the trainable once per worker, so each
        # submission ships only a compact per-trial spec. Workers join the
        # telemetry fabric whenever the parent is observing.
        self._pool = ProcessPoolExecutor(
            max_workers=self.runner.max_workers,
            initializer=pool_init,
            initargs=(self.runner.trainable, self.runner._observing(), self.runner.name),
        )

    def submit(self, trial: Trial) -> Future:
        runner = self.runner
        trial.status = TrialStatus.RUNNING
        trial._submitted = time.perf_counter()
        trial._start = time.perf_counter()
        # trainable=None: the worker uses its pool_init registration.
        return self._pool.submit(
            process_entry,
            None,
            dict(trial.config),
            runner.max_retries,
            runner.retry_backoff_s,
            runner.trial_timeout_s,
            trial.trial_id,
            time.time(),  # wall clock: the only timeline workers share
        )

    def collect(self, future: Future, trial: Trial) -> None:
        payload: Any = None
        try:
            payload = future.result()
        except Exception as exc:  # noqa: BLE001 - harness failure (pickling, pool death)
            trial.error = f"{type(exc).__name__}: {exc}"
            trial.status = TrialStatus.ERROR
        self.runner._fold_worker_payload(trial, payload)

    def shutdown(self, cancel: bool = False) -> None:
        self._pool.shutdown(wait=True, cancel_futures=cancel)


class StoreBackend(ExecutionBackend):
    """Distributed execution through a shared file-backed trial store.

    ``TrialRunner(backend_options=...)`` knobs:

    - ``store_dir`` (required) — the store directory, shared with workers.
    - ``spawn`` — ``"mp"`` (default) forks ``local_workers`` child
      processes running :func:`repro.search.worker.run_worker` on this
      runner's trainable; ``"cli"`` launches ``python -m repro worker
      <run_dir>`` subprocesses (workers rebuild the evaluator from
      ``optimizer_conf.json``, so the trainable need not be picklable);
      ``"none"`` spawns nothing and relies on elastic external joiners.
    - ``local_workers`` — children to spawn (default ``max_workers``).
    - ``run_dir`` — campaign directory, required for ``spawn="cli"``.
    - ``lease_s`` / ``poll_s`` — worker lease duration and the parent's
      completion-poll interval.
    """

    name = "store"
    supports_mid_trial_scheduling = False

    def start(self) -> None:
        runner = self.runner
        options = dict(runner.backend_options or {})
        store_dir = options.get("store_dir")
        if store_dir is None:
            raise ValidationError(
                "the store backend needs backend_options={'store_dir': ...}"
            )
        self.lease_s = float(options.get("lease_s", DEFAULT_LEASE_S))
        self.poll_s = float(options.get("poll_s", 0.05))
        self.spawn = str(options.get("spawn", "mp"))
        if self.spawn not in ("mp", "cli", "none"):
            raise ValidationError(f"unknown store spawn mode {self.spawn!r}")
        self.run_dir = options.get("run_dir")
        if self.spawn == "cli" and self.run_dir is None:
            raise ValidationError("spawn='cli' needs backend_options={'run_dir': ...}")
        local_workers = int(options.get("local_workers", runner.max_workers))
        self.store = TrialStore.create(
            store_dir,
            name=runner.name,
            metric=runner.metric,
            max_retries=runner.max_retries,
            retry_backoff_s=runner.retry_backoff_s,
            trial_timeout_s=runner.trial_timeout_s,
            lease_s=self.lease_s,
            telemetry=runner._observing(),
            # Each campaign session starts a fresh ledger: resume replays
            # finished trials through the checkpoint layer, and a stale
            # ``close`` event must not poison the new session's workers.
            fresh=True,
        )
        self._trial_ids: dict[Future, str] = {}
        self._procs: list[Any] = []
        self._popen: list[subprocess.Popen] = []
        self._warned_no_workers = False
        self._dead_since: float | None = None
        if self.spawn == "mp":
            import multiprocessing

            from repro.search.worker import _local_worker_main

            ctx = multiprocessing.get_context()
            for index in range(local_workers):
                proc = ctx.Process(
                    target=_local_worker_main,
                    args=(str(self.store.root), runner.trainable, f"{runner.name}/local{index}"),
                    daemon=True,
                )
                proc.start()
                self._procs.append(proc)
        elif self.spawn == "cli":
            pkg_root = str(Path(__file__).resolve().parents[2])
            env = dict(os.environ)
            env["PYTHONPATH"] = pkg_root + os.pathsep + env.get("PYTHONPATH", "")
            for index in range(local_workers):
                log = (self.store.root / f"worker-local{index}.log").open("w")
                self._popen.append(
                    subprocess.Popen(
                        [
                            sys.executable,
                            "-m",
                            "repro",
                            "worker",
                            str(self.run_dir),
                            "--runner-id",
                            f"{runner.name}/local{index}",
                        ],
                        stdout=log,
                        stderr=subprocess.STDOUT,
                        env=env,
                    )
                )

    def submit(self, trial: Trial) -> Future:
        trial.status = TrialStatus.RUNNING
        trial._submitted = time.perf_counter()
        trial._start = time.perf_counter()
        self.store.add_trial(trial.trial_id, trial.config)
        future: Future = Future()
        self._trial_ids[future] = trial.trial_id
        return future

    def wait_any(self, futures: set[Future]) -> set[Future]:
        while True:
            state = self.store.snapshot()
            done: set[Future] = set()
            for future in futures:
                info = state.trials.get(self._trial_ids.get(future, ""))
                if info is not None and info.status == "done" and not future.done():
                    future.set_result(info.outcome)
                    done.add(future)
            if done:
                return done
            self._check_liveness(state)
            time.sleep(self.poll_s)

    def _check_liveness(self, state: Any) -> None:
        """Fail fast when work can no longer make progress.

        With spawned local workers: if every child exited while trials are
        unfinished and no peer holds a live lease, the campaign is stuck —
        raise instead of polling forever (a short grace period tolerates an
        elastic joiner racing in). Without spawned workers, warn once that
        the campaign is waiting for ``python -m repro worker`` joiners.
        """
        spawned = self._procs or self._popen
        liveness = self.store.worker_liveness(state=state)
        any_live = any(info["lease_state"] == "live" for info in liveness)
        if not spawned:
            if not self._warned_no_workers and not any_live:
                self._warned_no_workers = True
                warnings.warn(
                    "store backend has no local workers; waiting for "
                    "'python -m repro worker <run-dir>' processes to join",
                    RuntimeWarning,
                    stacklevel=4,
                )
            return
        alive = any(p.is_alive() for p in self._procs) or any(
            p.poll() is None for p in self._popen
        )
        if alive or any_live:
            self._dead_since = None
            return
        now = time.monotonic()
        if self._dead_since is None:
            self._dead_since = now
            return
        if now - self._dead_since > max(2.0, 2 * self.poll_s):
            unfinished = len(state.unfinished())
            raise TrialError(
                f"all local store workers exited with {unfinished} trial(s) "
                "unfinished and no live leases — see the worker logs in "
                f"{self.store.root}"
            )

    def collect(self, future: Future, trial: Trial) -> None:
        payload = future.result()
        if not isinstance(payload, dict):
            trial.error = "store worker recorded no structured outcome"
            trial.status = TrialStatus.ERROR
            payload = None
        self.runner._fold_worker_payload(trial, payload)

    def shutdown(self, cancel: bool = False) -> None:
        self.store.close()
        deadline = time.monotonic() + max(self.lease_s, 5.0)
        for proc in self._procs:
            proc.join(timeout=max(0.1, deadline - time.monotonic()))
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)
        for proc in self._popen:
            try:
                proc.wait(timeout=max(0.1, deadline - time.monotonic()))
            except subprocess.TimeoutExpired:
                proc.terminate()
                try:
                    proc.wait(timeout=2.0)
                except subprocess.TimeoutExpired:
                    proc.kill()


_BACKENDS: dict[str, type[ExecutionBackend]] = {}


def register_backend(cls: type[ExecutionBackend]) -> type[ExecutionBackend]:
    """Register an :class:`ExecutionBackend` under its ``name``."""
    if not cls.name:
        raise ValidationError(f"{cls.__name__} declares no backend name")
    _BACKENDS[cls.name] = cls
    return cls


def available_backends() -> tuple[str, ...]:
    """Registered backend names, for ``executor=`` validation."""
    return tuple(sorted(_BACKENDS))


def backend_class(name: str) -> type[ExecutionBackend]:
    """Resolve a backend class by name; raises for unknown executors."""
    try:
        return _BACKENDS[name]
    except KeyError:
        raise ValidationError(f"unknown executor {name!r}") from None


def create_backend(name: str, runner: "TrialRunner") -> ExecutionBackend:
    return backend_class(name)(runner)


for _cls in (SyncBackend, ThreadBackend, ProcessBackend, StoreBackend):
    register_backend(_cls)

"""The trial runner: asynchronous parallel execution of trials.

``run()`` is the facade equivalent to the paper's ``tune.run`` (Listing 1
line 14): it drives a search algorithm, executes trials through a
pluggable :class:`~repro.search.backends.ExecutionBackend`, consults the
trial scheduler on intermediate results, and returns an
:class:`ExperimentAnalysis`.

Executor notes
--------------
- ``"sync"`` — deterministic sequential execution (tests, debugging).
- ``"thread"`` — overlapped trials; supports schedulers and intermediate
  reporting. Best when the trainable releases the GIL or is I/O-bound;
  also what gives the constant-liar asynchronous semantics without
  pickling constraints.
- ``"process"`` — true CPU parallelism for pure-Python trainables (the
  engine DES). The trainable must be picklable (a top-level function);
  intermediate reporting/schedulers are unsupported across the process
  boundary, so the scheduler must be FIFO.
- ``"store"`` — distributed execution through a shared file-backed
  :class:`~repro.search.store.TrialStore`: trials are persisted to a
  crash-safe ledger and claimed under lease+heartbeat by elastic workers
  (local children and/or ``python -m repro worker <run-dir>`` joiners).
  Configure with ``backend_options={"store_dir": ...}``.

The runner's main loop is backend-agnostic — suggest, submit, wait, fold —
and every backend reports through the same observability spine (trial
spans, queue-wait/evaluate costs, fabric telemetry merge), so analyses are
comparable across executors.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.bayesopt.space import Space
from repro.errors import TrialError, ValidationError
from repro.faults.context import injection_occurred, reset_injection_flag, set_current_attempt
from repro.observability import fabric
from repro.observability.digest import get_perf
from repro.observability.metrics import get_registry
from repro.observability.profile import CostBreakdown, aggregate_costs
from repro.observability.trace import Tracer, get_tracer
from repro.search.algos import SearchAlgorithm, SurrogateSearch
from repro.search.backends import backend_class, create_backend
from repro.search.evalcache import EvalCache

# Worker-side primitives live in repro.search.execution; the historic
# underscore names stay importable from here for callers and tests.
from repro.search.execution import (
    Trainable,
    attempt_once as _attempt_once,  # noqa: F401 - re-export
    normalize_result as _normalize_result,
    pool_init as _pool_init,  # noqa: F401 - re-export
    process_attempts as _process_attempts,  # noqa: F401 - re-export
    process_entry as _process_entry,  # noqa: F401 - re-export
)
from repro.search.schedulers import FIFOScheduler, TrialDecision, TrialScheduler
from repro.search.trial import Reporter, StopTrial, Trial, TrialStatus

__all__ = ["TrialRunner", "ExperimentAnalysis", "run"]

#: persistence callback. Single-argument callables receive the finished
#: trial records; two-argument callables additionally receive the
#: searcher's ``state_dict()`` (refit cadence, hedge gains) so ``--resume``
#: restores the optimization cadence, not just the observations.
Checkpointer = Callable[..., Any]


@dataclass
class ExperimentAnalysis:
    """Results of one experiment: all trials plus best-of views."""

    name: str
    metric: str
    mode: str
    trials: list[Trial] = field(default_factory=list)
    wall_clock_s: float = 0.0

    def _completed(self) -> list[Trial]:
        done = [
            t
            for t in self.trials
            if t.status in (TrialStatus.TERMINATED, TrialStatus.STOPPED)
            and self.metric in t.result
        ]
        if not done:
            raise TrialError("no completed trials with the target metric")
        return done

    @property
    def best_trial(self) -> Trial:
        key = lambda t: t.result[self.metric]  # noqa: E731
        done = self._completed()
        return min(done, key=key) if self.mode == "min" else max(done, key=key)

    @property
    def best_config(self) -> dict[str, Any]:
        return dict(self.best_trial.config)

    @property
    def best_result(self) -> float:
        return self.best_trial.result[self.metric]

    def records(self) -> list[dict[str, Any]]:
        """Flat record per trial (a dataframe-ready structure)."""
        return [t.to_dict() for t in self.trials]

    def objective_history(self) -> list[float]:
        """Objective values in completion order (for convergence plots).

        NaN entries are skipped: an early-stopped trial that never produced
        an intermediate report scores NaN, which would otherwise poison the
        running-incumbent computation of a convergence plot.
        """
        return [
            t.result[self.metric]
            for t in self.trials
            if self.metric in t.result and t.result[self.metric] == t.result[self.metric]
        ]

    def cost_profile(self) -> CostBreakdown:
        """Pooled suggest/evaluate/tell cost over all trials."""
        return aggregate_costs(t.cost for t in self.trials)

    def __str__(self) -> str:
        return (
            f"ExperimentAnalysis({self.name!r}: {len(self.trials)} trials, "
            f"best {self.metric}={self.best_result:.4g})"
        )


class TrialRunner:
    """Executes trials against a search algorithm and a scheduler."""

    def __init__(
        self,
        trainable: Trainable,
        search_alg: SearchAlgorithm,
        *,
        metric: str,
        mode: str = "min",
        scheduler: TrialScheduler | None = None,
        num_samples: int = 10,
        executor: str = "sync",
        max_workers: int = 4,
        name: str = "experiment",
        raise_on_failed_trial: bool = False,
        log_dir: str | None = None,
        tracer: Tracer | None = None,
        max_retries: int = 0,
        retry_backoff_s: float = 0.0,
        trial_timeout_s: float | None = None,
        resume_trials: list[Trial] | None = None,
        resume_searcher_state: dict[str, Any] | None = None,
        checkpoint: Checkpointer | None = None,
        checkpoint_every: int = 1,
        eval_cache: "EvalCache | None" = None,
        backend_options: dict[str, Any] | None = None,
    ) -> None:
        if mode not in ("min", "max"):
            raise ValidationError("mode must be 'min' or 'max'")
        if num_samples < 1:
            raise ValidationError("num_samples must be >= 1")
        backend_cls = backend_class(executor)  # raises for unknown executors
        if max_retries < 0:
            raise ValidationError("max_retries must be >= 0")
        if retry_backoff_s < 0:
            raise ValidationError("retry_backoff_s must be >= 0")
        if trial_timeout_s is not None and trial_timeout_s <= 0:
            raise ValidationError("trial_timeout_s must be > 0")
        if checkpoint_every < 1:
            raise ValidationError("checkpoint_every must be >= 1")
        self.trainable = trainable
        self.search_alg = search_alg
        self.metric = metric
        self.mode = mode
        self.scheduler = scheduler or FIFOScheduler(mode)
        if not backend_cls.supports_mid_trial_scheduling and not isinstance(
            self.scheduler, FIFOScheduler
        ):
            raise ValidationError(
                f"{executor} executor cannot consult a scheduler mid-trial; use FIFO"
            )
        self.num_samples = int(num_samples)
        self.executor_kind = executor
        self.max_workers = int(max_workers)
        self.name = name
        self.raise_on_failed_trial = raise_on_failed_trial
        self.max_retries = int(max_retries)
        self.retry_backoff_s = float(retry_backoff_s)
        self.trial_timeout_s = None if trial_timeout_s is None else float(trial_timeout_s)
        self.backend_options = dict(backend_options or {})
        self._tracer = tracer if tracer is not None else get_tracer()
        #: the live status board (resolved lazily in run(); inert by default,
        #: so the hooks cost one attribute check when nothing serves).
        self._board: Any = None
        #: open per-trial spans, for cross-thread parenting (trial_id → Span).
        self._trial_spans: dict[str, Any] = {}
        self._lock = threading.Lock()
        #: serializes all scheduler access: with the thread executor,
        #: ``on_result`` fires from worker threads while ``on_complete``
        #: fires from the drain loop — stateful schedulers need one lock.
        self._scheduler_lock = threading.Lock()
        #: trials replayed from a checkpoint (count against num_samples).
        self._resume_trials: list[Trial] = list(resume_trials or [])
        #: searcher state from the checkpoint, restored after replay.
        self._resume_searcher_state = resume_searcher_state
        self._checkpoint = checkpoint
        self._checkpoint_takes_state = self._accepts_state(checkpoint)
        self.checkpoint_every = int(checkpoint_every)
        #: memoizing trial cache consulted before executor submission.
        self.eval_cache = eval_cache
        self._finished: list[Trial] = list(self._resume_trials)
        self._since_checkpoint = 0
        self._log_path = None
        if log_dir is not None:
            from pathlib import Path

            directory = Path(log_dir)
            directory.mkdir(parents=True, exist_ok=True)
            self._log_path = directory / f"{name}.jsonl"
            self._log_path.write_text("")  # truncate previous runs

    @staticmethod
    def _accepts_state(checkpoint: Checkpointer | None) -> bool:
        """Whether the checkpointer takes a second (searcher state) argument."""
        if checkpoint is None:
            return False
        import inspect

        try:
            params = list(inspect.signature(checkpoint).parameters.values())
        except (TypeError, ValueError):
            return False
        positional = [
            p
            for p in params
            if p.kind
            in (inspect.Parameter.POSITIONAL_ONLY, inspect.Parameter.POSITIONAL_OR_KEYWORD)
        ]
        if any(p.kind is inspect.Parameter.VAR_POSITIONAL for p in params):
            return True
        return len(positional) >= 2

    def _observing(self) -> bool:
        """Whether any telemetry consumer is active (workers should join)."""
        return bool(self._tracer.enabled or get_registry().enabled or get_perf().enabled)

    # -- observability hooks ---------------------------------------------------------

    def _suggest(self, trial_id: str) -> tuple[Optional[dict[str, Any]], float]:
        """Time one ``suggest`` call (acquisition + surrogate read)."""
        fits_before = self.search_alg.fit_count()
        start = time.perf_counter()
        config = self.search_alg.suggest(trial_id)
        elapsed = time.perf_counter() - start
        if config is not None:
            self._record_suggest(elapsed, 1, fits_before)
        return config, elapsed

    def _suggest_batch(self, trial_ids: list[str]) -> tuple[list[dict[str, Any]], float]:
        """Time one batched suggest; returns configs and the per-config cost."""
        fits_before = self.search_alg.fit_count()
        start = time.perf_counter()
        configs = self.search_alg.suggest_batch(trial_ids)
        elapsed = time.perf_counter() - start
        if configs:
            self._record_suggest(elapsed, len(configs), fits_before)
        return configs, elapsed / len(configs) if configs else elapsed

    def _record_suggest(self, elapsed: float, n_configs: int, fits_before: int) -> None:
        """Split suggest latency into fit-bearing and amortized series.

        One digest mixing ~0.5 µs prefetch hits with fit-bearing asks makes
        every percentile meaningless, so the two populations are recorded
        apart: ``suggest_fit`` holds the *whole* elapsed time of an ask that
        blocked on an inline surrogate fit; ``suggest`` holds the
        per-candidate cost of everything else (prefetch pops, model reads,
        cold design draws — the steady-state hot path).
        """
        perf = get_perf()
        if not perf.enabled:
            return
        if self.search_alg.fit_count() > fits_before:
            perf.record("suggest_fit", elapsed)
        else:
            per_candidate = elapsed / n_configs
            for _ in range(n_configs):
                perf.record("suggest", per_candidate)

    def _open_trial(self, trial: Trial, suggest_s: float) -> None:
        """Record the suggest cost; open the trial span if tracing."""
        trial.cost["suggest_s"] = suggest_s
        tracer = self._tracer
        if not tracer.enabled:
            return
        now = tracer.clock()
        span = tracer.start_span(
            f"trial:{trial.trial_id}", start=now - suggest_s, trial_id=trial.trial_id
        )
        with self._lock:
            self._trial_spans[trial.trial_id] = span
        child = tracer.start_span("suggest", parent=span, start=now - suggest_s)
        tracer.end_span(child)

    def _close_trial(self, trial: Trial) -> None:
        tracer = self._tracer
        if not tracer.enabled:
            return
        with self._lock:
            span = self._trial_spans.pop(trial.trial_id, None)
        if span is not None:
            span.set("status", trial.status.value)
            if self.metric in trial.result:
                span.set(self.metric, trial.result[self.metric])
            for key in ("retries", "timeouts"):
                if trial.cost.get(key):
                    span.set(key, int(trial.cost[key]))
            tracer.end_span(span, error=trial.error)

    def _record_execute_span(self, trial: Trial, duration_s: float) -> None:
        """Emit the execute child span, backdated by the measured duration."""
        tracer = self._tracer
        if not tracer.enabled:
            return
        with self._lock:
            parent = self._trial_spans.get(trial.trial_id)
        # Children finish (and stream to watchdog subscribers) before their
        # trial parent, so each carries the trial identity itself.
        span = tracer.start_span(
            "execute",
            parent=parent,
            start=tracer.clock() - duration_s,
            trial_id=trial.trial_id,
        )
        span.set("status", trial.status.value)
        tracer.end_span(span, error=trial.error)

    def _record_queue_wait(self, trial: Trial) -> None:
        """Record the executor queue wait (submit → worker pickup)."""
        submitted = trial._submitted
        if submitted is None:
            return
        wait_s = time.perf_counter() - submitted
        trial.cost["queue_wait_s"] = wait_s
        get_perf().record("queue_wait", wait_s)
        tracer = self._tracer
        if not tracer.enabled:
            return
        with self._lock:
            parent = self._trial_spans.get(trial.trial_id)
        span = tracer.start_span(
            "queue-wait",
            parent=parent,
            start=tracer.clock() - wait_s,
            trial_id=trial.trial_id,
        )
        tracer.end_span(span)

    # -- single-trial execution -----------------------------------------------------

    def _wants_reporter(self) -> bool:
        import inspect

        try:
            params = inspect.signature(self.trainable).parameters
        except (TypeError, ValueError):
            return False
        return len(params) >= 2

    def _execute_inline(self, trial: Trial, attempt: int = 0) -> None:
        reporter = Reporter(trial, self._on_report, self._lock)
        set_current_attempt(attempt)
        reset_injection_flag()
        start = time.perf_counter()
        trial.status = TrialStatus.RUNNING
        try:
            if self._wants_reporter():
                raw = self.trainable(dict(trial.config), reporter)
            else:
                raw = self.trainable(dict(trial.config))
            trial.result = _normalize_result(raw, self.metric)
            trial.status = TrialStatus.TERMINATED
        except StopTrial:
            # Early-stopped: score with the last intermediate value.
            last = trial.intermediate[-1][1] if trial.intermediate else float("nan")
            trial.result = {self.metric: last}
            trial.status = TrialStatus.STOPPED
        except Exception as exc:  # noqa: BLE001 - recorded on the trial
            trial.error = f"{type(exc).__name__}: {exc}"
            trial.status = TrialStatus.ERROR
        if injection_occurred():
            # Read here, on the thread that ran the attempt (thread-local
            # flag); the cache refuses results carrying this marker.
            trial.cost["fault_injected"] = 1.0
        trial.runtime_s = time.perf_counter() - start
        trial.cost["evaluate_s"] = trial.runtime_s
        get_perf().record("evaluate", trial.runtime_s)
        self._record_execute_span(trial, trial.runtime_s)

    def _run_attempt(self, scratch: Trial, attempt: int) -> bool:
        """Run one attempt; ``False`` means it hit the per-trial timeout.

        With a timeout configured the attempt runs on its own daemon thread
        against a *scratch* trial; on timeout the thread is abandoned (Python
        cannot preempt it) but only ever mutates the scratch object, so the
        real trial stays consistent for the retry.
        """
        if self.trial_timeout_s is None:
            self._execute_inline(scratch, attempt)
            return True
        worker = threading.Thread(
            target=self._execute_inline,
            args=(scratch, attempt),
            name=f"trial-{scratch.trial_id}-attempt{attempt}",
            daemon=True,
        )
        worker.start()
        worker.join(self.trial_timeout_s)
        return not worker.is_alive()

    def _execute_with_retry(self, trial: Trial) -> None:
        """Execute a trial with per-attempt timeout and retry-with-backoff.

        A failed or hung attempt is retried up to ``max_retries`` times; the
        attempt index is published through :mod:`repro.faults.context` so
        stochastic components (fault injectors, seeded evaluators) draw a
        fresh stream per attempt. Retry/timeout counts are recorded on
        ``trial.cost`` and exported through the metrics registry.
        """
        if self.max_retries == 0 and self.trial_timeout_s is None:
            self._execute_inline(trial)
            return
        trial.status = TrialStatus.RUNNING
        retries = 0
        timeouts = 0
        total_runtime = 0.0
        attempts = self.max_retries + 1
        for attempt in range(attempts):
            scratch = Trial(trial_id=trial.trial_id, config=dict(trial.config))
            completed = self._run_attempt(scratch, attempt)
            with self._lock:
                trial.intermediate = list(scratch.intermediate)
            if completed:
                trial.result = scratch.result
                trial.error = scratch.error
                trial.status = scratch.status
                total_runtime += scratch.runtime_s
                # Mirror the final attempt's injected-fault marker.
                if scratch.cost.get("fault_injected"):
                    trial.cost["fault_injected"] = 1.0
                else:
                    trial.cost.pop("fault_injected", None)
            else:
                timeouts += 1
                trial.result = {}
                trial.error = (
                    f"TrialTimeout: attempt {attempt + 1} exceeded {self.trial_timeout_s}s"
                )
                trial.status = TrialStatus.ERROR
                total_runtime += self.trial_timeout_s or 0.0
                self._record_timeout_span(trial)
            if trial.status in (TrialStatus.TERMINATED, TrialStatus.STOPPED):
                break
            if attempt < attempts - 1:
                retries += 1
                if self.retry_backoff_s > 0:
                    time.sleep(self.retry_backoff_s * (2**attempt))
        trial.runtime_s = total_runtime
        trial.cost["evaluate_s"] = total_runtime
        if retries:
            trial.cost["retries"] = float(retries)
        if timeouts:
            trial.cost["timeouts"] = float(timeouts)
        self._count_fault_metrics(retries, timeouts)

    def _count_fault_metrics(self, retries: int, timeouts: int) -> None:
        registry = get_registry()
        if not registry.enabled or not (retries or timeouts):
            return
        if retries:
            registry.counter(
                "repro_trial_retries_total", "trial attempts retried after failure or timeout"
            ).inc(retries)
        if timeouts:
            registry.counter(
                "repro_trial_timeouts_total", "trial attempts that hit the per-trial timeout"
            ).inc(timeouts)

    def _record_timeout_span(self, trial: Trial) -> None:
        tracer = self._tracer
        if not tracer.enabled:
            return
        with self._lock:
            parent = self._trial_spans.get(trial.trial_id)
        span = tracer.start_span(
            "execute",
            parent=parent,
            start=tracer.clock() - (self.trial_timeout_s or 0.0),
            trial_id=trial.trial_id,
        )
        span.set("status", "timeout")
        tracer.end_span(span, error=trial.error)

    # -- evaluation cache -------------------------------------------------------------

    def _cache_lookup(self, trial: Trial) -> bool:
        """Serve ``trial`` from the evaluation cache; True on a hit.

        A hit completes the trial without touching the executor: the stored
        (normalized) result is replayed, the evaluate cost is zero, and the
        ``cache_hit`` cost marker feeds the Phase III profile.
        """
        if self.eval_cache is None:
            return False
        cached = self.eval_cache.lookup(trial.config)
        if cached is None:
            return False
        trial.result = cached
        trial.status = TrialStatus.TERMINATED
        trial.runtime_s = 0.0
        trial.cost["evaluate_s"] = 0.0
        trial.cost["cache_hit"] = 1.0
        self._record_execute_span(trial, 0.0)
        return True

    def _cache_store(self, trial: Trial) -> None:
        """Admit a finished trial's result, unless tainted.

        Only cleanly terminated results qualify; retried, timed-out,
        fault-injected and early-stopped trials are refused, and a trial
        that was itself served from the cache is not re-stored (it would
        inflate the replicate count without a fresh measurement).
        """
        if self.eval_cache is None or trial.status is not TrialStatus.TERMINATED:
            return
        if trial.cost.get("cache_hit"):
            return
        cost = trial.cost
        tainted = bool(
            cost.get("retries") or cost.get("timeouts") or cost.get("fault_injected")
        )
        self.eval_cache.store(trial.config, trial.result, tainted=tainted)

    def _on_report(self, trial: Trial, step: int, value: float) -> bool:
        with self._scheduler_lock:
            decision = self.scheduler.on_result(trial, step, value)
        return decision is TrialDecision.CONTINUE

    def _log_trial(self, trial: Trial) -> None:
        """Append the finished trial as one JSON line (Tune-style log)."""
        if self._log_path is None:
            return
        import json

        with self._lock:
            with self._log_path.open("a") as handle:
                handle.write(json.dumps(trial.to_dict()) + "\n")

    def _after_trial(self, trial: Trial) -> None:
        with self._scheduler_lock:
            self.scheduler.on_complete(trial)
        try:
            if trial.status is TrialStatus.ERROR:
                self.search_alg.on_trial_error(trial.trial_id, trial.config)
                if self.raise_on_failed_trial:
                    raise TrialError(trial.error or "trial failed", trial_id=trial.trial_id)
                return
            value = trial.result.get(self.metric)
            if value is not None and value == value:  # not NaN
                start = time.perf_counter()
                self.search_alg.on_trial_complete(trial.trial_id, trial.config, value)
                trial.cost["tell_s"] = time.perf_counter() - start
                get_perf().record("tell", trial.cost["tell_s"])
                tracer = self._tracer
                if tracer.enabled:
                    with self._lock:
                        parent = self._trial_spans.get(trial.trial_id)
                    span = tracer.start_span(
                        "tell",
                        parent=parent,
                        start=tracer.clock() - trial.cost["tell_s"],
                        trial_id=trial.trial_id,
                    )
                    tracer.end_span(span)
        finally:
            self._close_trial(trial)
            self._log_trial(trial)
            self._record_finished(trial)
            if self._board is not None and self._board.enabled:
                value = trial.result.get(self.metric) if trial.result else None
                self._board.trial_finished(
                    trial.trial_id,
                    value=value if isinstance(value, (int, float)) else None,
                    status=getattr(trial.status, "value", str(trial.status)),
                )

    # -- checkpoint / resume ---------------------------------------------------------

    def _record_finished(self, trial: Trial) -> None:
        """Track a finished trial and periodically persist the campaign state."""
        if self._checkpoint is None:
            return
        self._finished.append(trial)
        self._since_checkpoint += 1
        if self._since_checkpoint >= self.checkpoint_every:
            self._flush_checkpoint()

    def _flush_checkpoint(self) -> None:
        if self._checkpoint is None or self._since_checkpoint == 0:
            return
        self._since_checkpoint = 0
        records = [t.to_dict() for t in self._finished]
        if self._checkpoint_takes_state:
            self._checkpoint(records, self.search_alg.state_dict())
        else:
            self._checkpoint(records)

    def _replay_resumed(self, trials: list[Trial]) -> int:
        """Feed checkpointed trials back into the searcher without re-executing.

        Completed trials are ``tell``-ed into the search algorithm so the
        surrogate resumes with its full observation history; errored trials
        surrender through ``on_trial_error``. Every resumed trial counts
        against the ``num_samples`` budget, and every resumed trial is
        re-logged into the fresh trial log so ``<name>.jsonl`` stays a
        complete ledger across resume generations — the archive falls back
        to it when ``checkpoint.json`` is lost to a crash.
        """
        for trial in self._resume_trials:
            trials.append(trial)
            value = trial.result.get(self.metric)
            if (
                trial.status in (TrialStatus.TERMINATED, TrialStatus.STOPPED)
                and value is not None
                and value == value
            ):
                self.search_alg.on_trial_complete(trial.trial_id, trial.config, value)
            elif trial.status is TrialStatus.ERROR:
                self.search_alg.on_trial_error(trial.trial_id, trial.config)
            self._log_trial(trial)
        if self._resume_searcher_state:
            # After replay, so counters restored here are clamped against
            # the full replayed history rather than an empty searcher.
            self.search_alg.load_state(self._resume_searcher_state)
        return len(self._resume_trials)

    # -- main loop --------------------------------------------------------------------

    def run(self) -> ExperimentAnalysis:
        from repro.observability.live import get_status_board

        self._board = get_status_board()
        start = time.perf_counter()
        trials: list[Trial] = []
        created = self._replay_resumed(trials)
        backend = create_backend(self.executor_kind, self)
        backend.start()
        futures: dict[Future, Trial] = {}
        cancel = False
        try:
            exhausted = False
            while True:
                # Fill every free backend slot from one batched suggest
                # (a single surrogate fit for model-based searchers).
                while not exhausted and created < self.num_samples:
                    want = min(self.num_samples - created, backend.capacity - len(futures))
                    if want <= 0:
                        break
                    ids = [f"{self.name}_{created + k:05d}" for k in range(want)]
                    if want == 1:
                        config, suggest_s = self._suggest(ids[0])
                        configs = [] if config is None else [config]
                    else:
                        configs, suggest_s = self._suggest_batch(ids)
                    if not configs:
                        if not futures:
                            exhausted = True  # nothing pending → truly done
                        break
                    for config in configs:
                        trial = Trial(trial_id=f"{self.name}_{created:05d}", config=config)
                        self._open_trial(trial, suggest_s)
                        trials.append(trial)
                        created += 1
                        if self._cache_lookup(trial):
                            # Completed without occupying an executor
                            # slot; tell the searcher right away.
                            self._after_trial(trial)
                        else:
                            if self._board is not None and self._board.enabled:
                                self._board.trial_started(trial.trial_id)
                            futures[backend.submit(trial)] = trial
                    if len(configs) < len(ids):
                        break  # limited/exhausted for now: drain first

                if not futures:
                    if exhausted or created >= self.num_samples:
                        break
                    # Every config of a partial batch was served from
                    # the cache: nothing to drain, go refill.
                    continue
                done = backend.wait_any(set(futures))
                for future in done:
                    trial = futures.pop(future)
                    backend.collect(future, trial)
                    self._cache_store(trial)
                    self._after_trial(trial)
                if created >= self.num_samples and not futures:
                    break
        except TrialError as exc:
            # Abort cleanly mid-drain: cancel everything still queued so
            # shutdown does not execute abandoned work, and hand the
            # partial analysis to the caller on the error.
            cancel = True
            for future in futures:
                future.cancel()
            exc.analysis = self._analysis(trials, start)
            raise
        except BaseException:
            cancel = True
            raise
        finally:
            backend.shutdown(cancel=cancel)
        self._flush_checkpoint()
        return self._analysis(trials, start)

    def _run_threaded(self, trial: Trial) -> None:
        self._record_queue_wait(trial)
        self._execute_with_retry(trial)

    def _fold_worker_payload(self, trial: Trial, payload: Any) -> None:
        """Fold a worker's structured outcome payload into ``trial``.

        The payload is the shared wire format documented in
        :mod:`repro.search.execution` — produced identically by process-pool
        workers and store-backed distributed workers, so both backends share
        this one folding path (status, retry/timeout/taint markers, the
        parent-clamped cost split, and the fabric telemetry merge).
        ``payload=None`` means a harness-level failure already recorded on
        the trial by the backend; only the wall-clock accounting runs.
        """
        if isinstance(payload, dict):
            retries = int(payload.get("retries", 0))
            timeouts = int(payload.get("timeouts", 0))
            if retries:
                trial.cost["retries"] = float(retries)
            if timeouts:
                trial.cost["timeouts"] = float(timeouts)
            if payload.get("tainted"):
                trial.cost["fault_injected"] = 1.0
            if payload.get("reclaimed"):
                # The trial was reclaimed from a dead worker's expired lease;
                # the count is provenance (and the taint marker above keeps
                # the measurement out of the evaluation cache).
                trial.cost["reclaimed"] = float(payload["reclaimed"])
            self._count_fault_metrics(retries, timeouts)
            if payload.get("ok"):
                try:
                    trial.result = _normalize_result(payload["raw"], self.metric)
                    trial.status = TrialStatus.TERMINATED
                except Exception as exc:  # noqa: BLE001 - recorded on the trial
                    trial.error = f"{type(exc).__name__}: {exc}"
                    trial.status = TrialStatus.ERROR
            else:
                trial.error = str(payload.get("error") or "trial failed")
                trial.status = TrialStatus.ERROR
        wall = time.perf_counter() - (trial._start or time.perf_counter())
        trial.runtime_s = wall
        worker = payload if isinstance(payload, dict) and "evaluate_s" in payload else None
        if worker is not None:
            # A fabric worker measured the split itself: clamp both pieces to
            # the parent-observed wall (clock skew must not inflate costs).
            evaluate_s = min(max(float(worker["evaluate_s"]), 0.0), wall)
            queue_wait_s = min(
                max(float(worker.get("queue_wait_s", 0.0)), 0.0),
                max(wall - evaluate_s, 0.0),
            )
            trial.cost["evaluate_s"] = evaluate_s
            if queue_wait_s > 0:
                trial.cost["queue_wait_s"] = queue_wait_s
                self._record_process_wait_span(trial, wall, queue_wait_s)
            self._record_execute_span(trial, evaluate_s)
        else:
            # Pre-fabric fallback: only the submit→collect wall is
            # observable, queue wait included.
            trial.cost["evaluate_s"] = wall
            get_perf().record("evaluate", wall)
            self._record_execute_span(trial, wall)
        telemetry = payload.get("telemetry") if isinstance(payload, dict) else None
        if telemetry is not None:
            with self._lock:
                trial_span = self._trial_spans.get(trial.trial_id)
            fabric.merge_payload(
                telemetry, parent=trial_span, attributes={"trial_id": trial.trial_id}
            )

    def _record_process_wait_span(
        self, trial: Trial, wall_s: float, queue_wait_s: float
    ) -> None:
        """Backdated queue-wait span for worker-measured queue waits.

        The wait happened at the *start* of the submit→collect wall, so the
        span is stamped ``[now - wall, now - wall + wait]`` via the explicit
        ``end=`` override.
        """
        tracer = self._tracer
        if not tracer.enabled:
            return
        with self._lock:
            parent = self._trial_spans.get(trial.trial_id)
        now = tracer.clock()
        span = tracer.start_span(
            "queue-wait", parent=parent, start=now - wall_s, trial_id=trial.trial_id
        )
        tracer.end_span(span, end=now - wall_s + queue_wait_s)

    def _analysis(self, trials: list[Trial], start: float) -> ExperimentAnalysis:
        return ExperimentAnalysis(
            name=self.name,
            metric=self.metric,
            mode=self.mode,
            trials=trials,
            wall_clock_s=time.perf_counter() - start,
        )


def run(
    trainable: Trainable,
    *,
    space: Space | None = None,
    metric: str,
    mode: str = "min",
    num_samples: int = 10,
    search_alg: SearchAlgorithm | None = None,
    scheduler: TrialScheduler | None = None,
    executor: str = "sync",
    max_workers: int = 4,
    name: str = "experiment",
    seed: int | None = None,
    log_dir: str | None = None,
    batch_size: int = 1,
    refit_every: int = 1,
    incremental: bool = False,
    background_refit: bool = False,
    fit_jobs: int | None = None,
    backend_options: dict[str, Any] | None = None,
) -> ExperimentAnalysis:
    """``tune.run``-style entry point.

    Either pass a ``search_alg`` or a ``space`` (then a default
    :class:`SurrogateSearch` with Extra-Trees and LHS initialization is
    built, matching the paper's Listing 1 configuration). ``batch_size``
    and ``refit_every`` tune the default searcher's suggest hot path:
    batched asks amortize one surrogate fit over several suggestions, and
    refits are throttled to every ``refit_every`` fresh observations.
    ``incremental`` / ``background_refit`` / ``fit_jobs`` take the
    remaining full refits off the ask path entirely (see
    :class:`repro.bayesopt.Optimizer`; the first two trade bit-exact
    reproducibility for a flat suggest tail). ``backend_options``
    parameterizes the execution backend (e.g. the ``"store"`` executor's
    ``store_dir``).
    """
    if search_alg is None:
        if space is None:
            raise ValidationError("pass either search_alg or space")
        search_alg = SurrogateSearch(
            space,
            mode=mode,
            base_estimator="ET",
            initial_point_generator="lhs",
            acq_func="gp_hedge",
            n_initial_points=max(1, min(10, num_samples // 2)),
            random_state=seed,
            batch_size=batch_size,
            refit_every=refit_every,
            incremental=incremental,
            background_refit=background_refit,
            fit_jobs=fit_jobs,
        )
    runner = TrialRunner(
        trainable,
        search_alg,
        metric=metric,
        mode=mode,
        scheduler=scheduler,
        num_samples=num_samples,
        executor=executor,
        max_workers=max_workers,
        name=name,
        log_dir=log_dir,
        backend_options=backend_options,
    )
    return runner.run()

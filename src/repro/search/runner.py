"""The trial runner: asynchronous parallel execution of trials.

``run()`` is the facade equivalent to the paper's ``tune.run`` (Listing 1
line 14): it drives a search algorithm, executes trials (inline, in
threads, or in separate processes), consults the trial scheduler on
intermediate results, and returns an :class:`ExperimentAnalysis`.

Executor notes
--------------
- ``"sync"`` — deterministic sequential execution (tests, debugging).
- ``"thread"`` — overlapped trials; supports schedulers and intermediate
  reporting. Best when the trainable releases the GIL or is I/O-bound;
  also what gives the constant-liar asynchronous semantics without
  pickling constraints.
- ``"process"`` — true CPU parallelism for pure-Python trainables (the
  engine DES). The trainable must be picklable (a top-level function);
  intermediate reporting/schedulers are unsupported across the process
  boundary, so the scheduler must be FIFO.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, ThreadPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.bayesopt.space import Space
from repro.errors import TrialError, ValidationError
from repro.faults.context import injection_occurred, reset_injection_flag, set_current_attempt
from repro.observability import fabric
from repro.observability.digest import get_perf
from repro.observability.metrics import get_registry
from repro.observability.profile import CostBreakdown, aggregate_costs
from repro.observability.trace import Tracer, get_tracer
from repro.search.algos import SearchAlgorithm, SurrogateSearch
from repro.search.evalcache import EvalCache
from repro.search.schedulers import FIFOScheduler, TrialDecision, TrialScheduler
from repro.search.trial import Reporter, StopTrial, Trial, TrialStatus

__all__ = ["TrialRunner", "ExperimentAnalysis", "run"]

Trainable = Callable[..., Any]

Checkpointer = Callable[[list[dict[str, Any]]], Any]


def _normalize_result(raw: Any, metric: str) -> dict[str, float]:
    """Coerce a trainable's return value into a float metrics dict.

    The target metric is strict (a non-numeric value is a trial error);
    auxiliary entries that do not convert to float (e.g. a ``"deployment"``
    tag string) are silently dropped rather than failing the whole trial.
    """
    if isinstance(raw, dict):
        if metric not in raw:
            raise TrialError(f"trainable result lacks metric {metric!r}: {sorted(raw)}")
        out: dict[str, float] = {metric: float(raw[metric])}
        for key, value in raw.items():
            if key == metric:
                continue
            try:
                out[key] = float(value)
            except (TypeError, ValueError):
                continue
        return out
    return {metric: float(raw)}


def _attempt_once(
    trainable: Trainable, config: dict[str, Any], timeout_s: float | None
) -> tuple[str, Any, bool]:
    """One attempt in a worker process.

    Returns ``(status, payload, injected)`` where status is ``"ok"`` /
    ``"error"`` / ``"timeout"`` and ``injected`` records whether a fault
    was injected into the attempt (read on the thread that ran it, since
    the marker is thread-local).
    """
    if timeout_s is None:
        reset_injection_flag()
        try:
            raw = trainable(config)
            return ("ok", raw, injection_occurred())
        except Exception as exc:  # noqa: BLE001 - reported to the parent
            return ("error", f"{type(exc).__name__}: {exc}", injection_occurred())
        except BaseException as exc:  # SystemExit & friends: still one trial's error
            if isinstance(exc, KeyboardInterrupt):
                raise
            return ("error", f"{type(exc).__name__}: {exc}", injection_occurred())
    box: list[tuple[str, Any, bool]] = []

    def _worker() -> None:
        try:
            box.append(_attempt_once(trainable, config, None))
        except BaseException as exc:  # noqa: BLE001 - keep the box non-empty
            box.append(("error", f"{type(exc).__name__}: {exc}", True))

    worker = threading.Thread(target=_worker, daemon=True)
    worker.start()
    worker.join(timeout_s)
    if worker.is_alive():
        return ("timeout", f"TrialTimeout: exceeded {timeout_s}s", True)
    if not box:
        return ("error", "trial worker exited without reporting a result", True)
    return box[0]


#: per-worker registration installed by :func:`_pool_init` — the trainable
#: is pickled once per worker process instead of once per submitted trial.
_WORKER_TRAINABLE: Optional[Trainable] = None


def _pool_init(
    trainable: Trainable, telemetry: bool = False, runner_name: str = "experiment"
) -> None:
    """Process-pool initializer: register the trainable once per worker.

    With ``telemetry`` the worker also joins the cross-process fabric —
    a worker-local tracer/registry/perf recorder captures everything the
    trainable's instrumentation records, shipped back per trial.
    """
    global _WORKER_TRAINABLE
    _WORKER_TRAINABLE = trainable
    if telemetry:
        fabric.activate_worker(runner_name)


def _process_attempts(
    trainable: Trainable,
    config: dict[str, Any],
    max_retries: int,
    backoff_s: float,
    timeout_s: float | None,
) -> dict[str, Any]:
    """The worker-side retry/timeout loop shared by all process entries."""
    retries = 0
    timeouts = 0
    payload: Any = None
    injected = False
    for attempt in range(int(max_retries) + 1):
        set_current_attempt(attempt)
        status, payload, injected = _attempt_once(trainable, config, timeout_s)
        if status == "ok":
            return {
                "ok": True,
                "raw": payload,
                "retries": retries,
                "timeouts": timeouts,
                "tainted": bool(injected or retries or timeouts),
            }
        if status == "timeout":
            timeouts += 1
        if attempt < max_retries:
            retries += 1
            if backoff_s > 0:
                time.sleep(backoff_s * (2**attempt))
    return {
        "ok": False,
        "error": payload,
        "retries": retries,
        "timeouts": timeouts,
        "tainted": True,
    }


def _process_entry(
    trainable: Optional[Trainable],
    config: dict[str, Any],
    max_retries: int = 0,
    backoff_s: float = 0.0,
    timeout_s: float | None = None,
    trial_id: str | None = None,
    submitted_unix: float | None = None,
) -> dict[str, Any]:
    """Top-level entry for process executors (picklable).

    ``trainable=None`` uses the per-worker registration from
    :func:`_pool_init`, so each submission ships only the compact trial
    spec (config + retry knobs), not a re-pickled trainable/conf object.
    The retry/timeout loop runs *inside* the worker so the parent's drain
    loop stays a plain future wait. Never raises for trainable failures —
    the structured payload carries the outcome plus retry/timeout counts
    and a ``tainted`` marker (fault injected or timed out on the final
    attempt) the evaluation cache uses to refuse admission.

    In a fabric-activated worker the payload additionally carries
    worker-measured ``queue_wait_s``/``evaluate_s`` and a ``telemetry``
    blob (spans, metrics, latency digests) for the parent to merge.
    """
    if trainable is None:
        trainable = _WORKER_TRAINABLE
        if trainable is None:  # pragma: no cover - defensive
            return {"ok": False, "error": "no trainable registered in worker", "retries": 0, "timeouts": 0, "tainted": True}
    if not fabric.worker_active():
        return _process_attempts(trainable, config, max_retries, backoff_s, timeout_s)
    perf = get_perf()
    queue_wait = 0.0
    if submitted_unix is not None:
        # Submit→pickup across the process boundary: only wall clocks are
        # shared, so the parent stamps a unix timestamp at submit time.
        queue_wait = max(0.0, time.time() - float(submitted_unix))
        perf.record("queue_wait", queue_wait)
    tracer = get_tracer()
    start = time.perf_counter()
    with tracer.span("evaluate", trial_id=trial_id):
        result = _process_attempts(trainable, config, max_retries, backoff_s, timeout_s)
    evaluate_s = time.perf_counter() - start
    perf.record("evaluate", evaluate_s)
    result["queue_wait_s"] = queue_wait
    result["evaluate_s"] = evaluate_s
    result["telemetry"] = fabric.drain_worker()
    return result


@dataclass
class ExperimentAnalysis:
    """Results of one experiment: all trials plus best-of views."""

    name: str
    metric: str
    mode: str
    trials: list[Trial] = field(default_factory=list)
    wall_clock_s: float = 0.0

    def _completed(self) -> list[Trial]:
        done = [
            t
            for t in self.trials
            if t.status in (TrialStatus.TERMINATED, TrialStatus.STOPPED)
            and self.metric in t.result
        ]
        if not done:
            raise TrialError("no completed trials with the target metric")
        return done

    @property
    def best_trial(self) -> Trial:
        key = lambda t: t.result[self.metric]  # noqa: E731
        done = self._completed()
        return min(done, key=key) if self.mode == "min" else max(done, key=key)

    @property
    def best_config(self) -> dict[str, Any]:
        return dict(self.best_trial.config)

    @property
    def best_result(self) -> float:
        return self.best_trial.result[self.metric]

    def records(self) -> list[dict[str, Any]]:
        """Flat record per trial (a dataframe-ready structure)."""
        return [t.to_dict() for t in self.trials]

    def objective_history(self) -> list[float]:
        """Objective values in completion order (for convergence plots).

        NaN entries are skipped: an early-stopped trial that never produced
        an intermediate report scores NaN, which would otherwise poison the
        running-incumbent computation of a convergence plot.
        """
        return [
            t.result[self.metric]
            for t in self.trials
            if self.metric in t.result and t.result[self.metric] == t.result[self.metric]
        ]

    def cost_profile(self) -> CostBreakdown:
        """Pooled suggest/evaluate/tell cost over all trials."""
        return aggregate_costs(t.cost for t in self.trials)

    def __str__(self) -> str:
        return (
            f"ExperimentAnalysis({self.name!r}: {len(self.trials)} trials, "
            f"best {self.metric}={self.best_result:.4g})"
        )


class TrialRunner:
    """Executes trials against a search algorithm and a scheduler."""

    def __init__(
        self,
        trainable: Trainable,
        search_alg: SearchAlgorithm,
        *,
        metric: str,
        mode: str = "min",
        scheduler: TrialScheduler | None = None,
        num_samples: int = 10,
        executor: str = "sync",
        max_workers: int = 4,
        name: str = "experiment",
        raise_on_failed_trial: bool = False,
        log_dir: str | None = None,
        tracer: Tracer | None = None,
        max_retries: int = 0,
        retry_backoff_s: float = 0.0,
        trial_timeout_s: float | None = None,
        resume_trials: list[Trial] | None = None,
        checkpoint: Checkpointer | None = None,
        checkpoint_every: int = 1,
        eval_cache: "EvalCache | None" = None,
    ) -> None:
        if mode not in ("min", "max"):
            raise ValidationError("mode must be 'min' or 'max'")
        if num_samples < 1:
            raise ValidationError("num_samples must be >= 1")
        if executor not in ("sync", "thread", "process"):
            raise ValidationError(f"unknown executor {executor!r}")
        if max_retries < 0:
            raise ValidationError("max_retries must be >= 0")
        if retry_backoff_s < 0:
            raise ValidationError("retry_backoff_s must be >= 0")
        if trial_timeout_s is not None and trial_timeout_s <= 0:
            raise ValidationError("trial_timeout_s must be > 0")
        if checkpoint_every < 1:
            raise ValidationError("checkpoint_every must be >= 1")
        self.trainable = trainable
        self.search_alg = search_alg
        self.metric = metric
        self.mode = mode
        self.scheduler = scheduler or FIFOScheduler(mode)
        if executor == "process" and not isinstance(self.scheduler, FIFOScheduler):
            raise ValidationError(
                "process executor cannot consult a scheduler mid-trial; use FIFO"
            )
        self.num_samples = int(num_samples)
        self.executor_kind = executor
        self.max_workers = int(max_workers)
        self.name = name
        self.raise_on_failed_trial = raise_on_failed_trial
        self.max_retries = int(max_retries)
        self.retry_backoff_s = float(retry_backoff_s)
        self.trial_timeout_s = None if trial_timeout_s is None else float(trial_timeout_s)
        self._tracer = tracer if tracer is not None else get_tracer()
        #: open per-trial spans, for cross-thread parenting (trial_id → Span).
        self._trial_spans: dict[str, Any] = {}
        self._lock = threading.Lock()
        #: serializes all scheduler access: with the thread executor,
        #: ``on_result`` fires from worker threads while ``on_complete``
        #: fires from the drain loop — stateful schedulers need one lock.
        self._scheduler_lock = threading.Lock()
        #: trials replayed from a checkpoint (count against num_samples).
        self._resume_trials: list[Trial] = list(resume_trials or [])
        self._checkpoint = checkpoint
        self.checkpoint_every = int(checkpoint_every)
        #: memoizing trial cache consulted before executor submission.
        self.eval_cache = eval_cache
        self._finished: list[Trial] = list(self._resume_trials)
        self._since_checkpoint = 0
        self._log_path = None
        if log_dir is not None:
            from pathlib import Path

            directory = Path(log_dir)
            directory.mkdir(parents=True, exist_ok=True)
            self._log_path = directory / f"{name}.jsonl"
            self._log_path.write_text("")  # truncate previous runs

    # -- observability hooks ---------------------------------------------------------

    def _suggest(self, trial_id: str) -> tuple[Optional[dict[str, Any]], float]:
        """Time one ``suggest`` call (acquisition + surrogate read)."""
        start = time.perf_counter()
        config = self.search_alg.suggest(trial_id)
        return config, time.perf_counter() - start

    def _suggest_batch(self, trial_ids: list[str]) -> tuple[list[dict[str, Any]], float]:
        """Time one batched suggest; returns configs and the per-config cost."""
        start = time.perf_counter()
        configs = self.search_alg.suggest_batch(trial_ids)
        elapsed = time.perf_counter() - start
        return configs, elapsed / len(configs) if configs else elapsed

    def _open_trial(self, trial: Trial, suggest_s: float) -> None:
        """Record the suggest cost; open the trial span if tracing."""
        trial.cost["suggest_s"] = suggest_s
        get_perf().record("suggest", suggest_s)
        tracer = self._tracer
        if not tracer.enabled:
            return
        now = tracer.clock()
        span = tracer.start_span(
            f"trial:{trial.trial_id}", start=now - suggest_s, trial_id=trial.trial_id
        )
        with self._lock:
            self._trial_spans[trial.trial_id] = span
        child = tracer.start_span("suggest", parent=span, start=now - suggest_s)
        tracer.end_span(child)

    def _close_trial(self, trial: Trial) -> None:
        tracer = self._tracer
        if not tracer.enabled:
            return
        with self._lock:
            span = self._trial_spans.pop(trial.trial_id, None)
        if span is not None:
            span.set("status", trial.status.value)
            if self.metric in trial.result:
                span.set(self.metric, trial.result[self.metric])
            for key in ("retries", "timeouts"):
                if trial.cost.get(key):
                    span.set(key, int(trial.cost[key]))
            tracer.end_span(span, error=trial.error)

    def _record_execute_span(self, trial: Trial, duration_s: float) -> None:
        """Emit the execute child span, backdated by the measured duration."""
        tracer = self._tracer
        if not tracer.enabled:
            return
        with self._lock:
            parent = self._trial_spans.get(trial.trial_id)
        # Children finish (and stream to watchdog subscribers) before their
        # trial parent, so each carries the trial identity itself.
        span = tracer.start_span(
            "execute",
            parent=parent,
            start=tracer.clock() - duration_s,
            trial_id=trial.trial_id,
        )
        span.set("status", trial.status.value)
        tracer.end_span(span, error=trial.error)

    def _record_queue_wait(self, trial: Trial) -> None:
        """Record the executor queue wait (submit → worker pickup)."""
        submitted = trial._submitted
        if submitted is None:
            return
        wait_s = time.perf_counter() - submitted
        trial.cost["queue_wait_s"] = wait_s
        get_perf().record("queue_wait", wait_s)
        tracer = self._tracer
        if not tracer.enabled:
            return
        with self._lock:
            parent = self._trial_spans.get(trial.trial_id)
        span = tracer.start_span(
            "queue-wait",
            parent=parent,
            start=tracer.clock() - wait_s,
            trial_id=trial.trial_id,
        )
        tracer.end_span(span)

    # -- single-trial execution -----------------------------------------------------

    def _wants_reporter(self) -> bool:
        import inspect

        try:
            params = inspect.signature(self.trainable).parameters
        except (TypeError, ValueError):
            return False
        return len(params) >= 2

    def _execute_inline(self, trial: Trial, attempt: int = 0) -> None:
        reporter = Reporter(trial, self._on_report, self._lock)
        set_current_attempt(attempt)
        reset_injection_flag()
        start = time.perf_counter()
        trial.status = TrialStatus.RUNNING
        try:
            if self._wants_reporter():
                raw = self.trainable(dict(trial.config), reporter)
            else:
                raw = self.trainable(dict(trial.config))
            trial.result = _normalize_result(raw, self.metric)
            trial.status = TrialStatus.TERMINATED
        except StopTrial:
            # Early-stopped: score with the last intermediate value.
            last = trial.intermediate[-1][1] if trial.intermediate else float("nan")
            trial.result = {self.metric: last}
            trial.status = TrialStatus.STOPPED
        except Exception as exc:  # noqa: BLE001 - recorded on the trial
            trial.error = f"{type(exc).__name__}: {exc}"
            trial.status = TrialStatus.ERROR
        if injection_occurred():
            # Read here, on the thread that ran the attempt (thread-local
            # flag); the cache refuses results carrying this marker.
            trial.cost["fault_injected"] = 1.0
        trial.runtime_s = time.perf_counter() - start
        trial.cost["evaluate_s"] = trial.runtime_s
        get_perf().record("evaluate", trial.runtime_s)
        self._record_execute_span(trial, trial.runtime_s)

    def _run_attempt(self, scratch: Trial, attempt: int) -> bool:
        """Run one attempt; ``False`` means it hit the per-trial timeout.

        With a timeout configured the attempt runs on its own daemon thread
        against a *scratch* trial; on timeout the thread is abandoned (Python
        cannot preempt it) but only ever mutates the scratch object, so the
        real trial stays consistent for the retry.
        """
        if self.trial_timeout_s is None:
            self._execute_inline(scratch, attempt)
            return True
        worker = threading.Thread(
            target=self._execute_inline,
            args=(scratch, attempt),
            name=f"trial-{scratch.trial_id}-attempt{attempt}",
            daemon=True,
        )
        worker.start()
        worker.join(self.trial_timeout_s)
        return not worker.is_alive()

    def _execute_with_retry(self, trial: Trial) -> None:
        """Execute a trial with per-attempt timeout and retry-with-backoff.

        A failed or hung attempt is retried up to ``max_retries`` times; the
        attempt index is published through :mod:`repro.faults.context` so
        stochastic components (fault injectors, seeded evaluators) draw a
        fresh stream per attempt. Retry/timeout counts are recorded on
        ``trial.cost`` and exported through the metrics registry.
        """
        if self.max_retries == 0 and self.trial_timeout_s is None:
            self._execute_inline(trial)
            return
        trial.status = TrialStatus.RUNNING
        retries = 0
        timeouts = 0
        total_runtime = 0.0
        attempts = self.max_retries + 1
        for attempt in range(attempts):
            scratch = Trial(trial_id=trial.trial_id, config=dict(trial.config))
            completed = self._run_attempt(scratch, attempt)
            with self._lock:
                trial.intermediate = list(scratch.intermediate)
            if completed:
                trial.result = scratch.result
                trial.error = scratch.error
                trial.status = scratch.status
                total_runtime += scratch.runtime_s
                # Mirror the final attempt's injected-fault marker.
                if scratch.cost.get("fault_injected"):
                    trial.cost["fault_injected"] = 1.0
                else:
                    trial.cost.pop("fault_injected", None)
            else:
                timeouts += 1
                trial.result = {}
                trial.error = (
                    f"TrialTimeout: attempt {attempt + 1} exceeded {self.trial_timeout_s}s"
                )
                trial.status = TrialStatus.ERROR
                total_runtime += self.trial_timeout_s or 0.0
                self._record_timeout_span(trial)
            if trial.status in (TrialStatus.TERMINATED, TrialStatus.STOPPED):
                break
            if attempt < attempts - 1:
                retries += 1
                if self.retry_backoff_s > 0:
                    time.sleep(self.retry_backoff_s * (2**attempt))
        trial.runtime_s = total_runtime
        trial.cost["evaluate_s"] = total_runtime
        if retries:
            trial.cost["retries"] = float(retries)
        if timeouts:
            trial.cost["timeouts"] = float(timeouts)
        self._count_fault_metrics(retries, timeouts)

    def _count_fault_metrics(self, retries: int, timeouts: int) -> None:
        registry = get_registry()
        if not registry.enabled or not (retries or timeouts):
            return
        if retries:
            registry.counter(
                "repro_trial_retries_total", "trial attempts retried after failure or timeout"
            ).inc(retries)
        if timeouts:
            registry.counter(
                "repro_trial_timeouts_total", "trial attempts that hit the per-trial timeout"
            ).inc(timeouts)

    def _record_timeout_span(self, trial: Trial) -> None:
        tracer = self._tracer
        if not tracer.enabled:
            return
        with self._lock:
            parent = self._trial_spans.get(trial.trial_id)
        span = tracer.start_span(
            "execute",
            parent=parent,
            start=tracer.clock() - (self.trial_timeout_s or 0.0),
            trial_id=trial.trial_id,
        )
        span.set("status", "timeout")
        tracer.end_span(span, error=trial.error)

    # -- evaluation cache -------------------------------------------------------------

    def _cache_lookup(self, trial: Trial) -> bool:
        """Serve ``trial`` from the evaluation cache; True on a hit.

        A hit completes the trial without touching the executor: the stored
        (normalized) result is replayed, the evaluate cost is zero, and the
        ``cache_hit`` cost marker feeds the Phase III profile.
        """
        if self.eval_cache is None:
            return False
        cached = self.eval_cache.lookup(trial.config)
        if cached is None:
            return False
        trial.result = cached
        trial.status = TrialStatus.TERMINATED
        trial.runtime_s = 0.0
        trial.cost["evaluate_s"] = 0.0
        trial.cost["cache_hit"] = 1.0
        self._record_execute_span(trial, 0.0)
        return True

    def _cache_store(self, trial: Trial) -> None:
        """Admit a finished trial's result, unless tainted.

        Only cleanly terminated results qualify; retried, timed-out,
        fault-injected and early-stopped trials are refused, and a trial
        that was itself served from the cache is not re-stored (it would
        inflate the replicate count without a fresh measurement).
        """
        if self.eval_cache is None or trial.status is not TrialStatus.TERMINATED:
            return
        if trial.cost.get("cache_hit"):
            return
        cost = trial.cost
        tainted = bool(
            cost.get("retries") or cost.get("timeouts") or cost.get("fault_injected")
        )
        self.eval_cache.store(trial.config, trial.result, tainted=tainted)

    def _on_report(self, trial: Trial, step: int, value: float) -> bool:
        with self._scheduler_lock:
            decision = self.scheduler.on_result(trial, step, value)
        return decision is TrialDecision.CONTINUE

    def _log_trial(self, trial: Trial) -> None:
        """Append the finished trial as one JSON line (Tune-style log)."""
        if self._log_path is None:
            return
        import json

        with self._lock:
            with self._log_path.open("a") as handle:
                handle.write(json.dumps(trial.to_dict()) + "\n")

    def _after_trial(self, trial: Trial) -> None:
        with self._scheduler_lock:
            self.scheduler.on_complete(trial)
        try:
            if trial.status is TrialStatus.ERROR:
                self.search_alg.on_trial_error(trial.trial_id, trial.config)
                if self.raise_on_failed_trial:
                    raise TrialError(trial.error or "trial failed", trial_id=trial.trial_id)
                return
            value = trial.result.get(self.metric)
            if value is not None and value == value:  # not NaN
                start = time.perf_counter()
                self.search_alg.on_trial_complete(trial.trial_id, trial.config, value)
                trial.cost["tell_s"] = time.perf_counter() - start
                get_perf().record("tell", trial.cost["tell_s"])
                tracer = self._tracer
                if tracer.enabled:
                    with self._lock:
                        parent = self._trial_spans.get(trial.trial_id)
                    span = tracer.start_span(
                        "tell",
                        parent=parent,
                        start=tracer.clock() - trial.cost["tell_s"],
                        trial_id=trial.trial_id,
                    )
                    tracer.end_span(span)
        finally:
            self._close_trial(trial)
            self._log_trial(trial)
            self._record_finished(trial)

    # -- checkpoint / resume ---------------------------------------------------------

    def _record_finished(self, trial: Trial) -> None:
        """Track a finished trial and periodically persist the campaign state."""
        if self._checkpoint is None:
            return
        self._finished.append(trial)
        self._since_checkpoint += 1
        if self._since_checkpoint >= self.checkpoint_every:
            self._flush_checkpoint()

    def _flush_checkpoint(self) -> None:
        if self._checkpoint is None or self._since_checkpoint == 0:
            return
        self._since_checkpoint = 0
        self._checkpoint([t.to_dict() for t in self._finished])

    def _replay_resumed(self, trials: list[Trial]) -> int:
        """Feed checkpointed trials back into the searcher without re-executing.

        Completed trials are ``tell``-ed into the search algorithm so the
        surrogate resumes with its full observation history; errored trials
        surrender through ``on_trial_error``. Every resumed trial counts
        against the ``num_samples`` budget.
        """
        for trial in self._resume_trials:
            trials.append(trial)
            value = trial.result.get(self.metric)
            if (
                trial.status in (TrialStatus.TERMINATED, TrialStatus.STOPPED)
                and value is not None
                and value == value
            ):
                self.search_alg.on_trial_complete(trial.trial_id, trial.config, value)
            elif trial.status is TrialStatus.ERROR:
                self.search_alg.on_trial_error(trial.trial_id, trial.config)
        return len(self._resume_trials)

    # -- main loop --------------------------------------------------------------------

    def run(self) -> ExperimentAnalysis:
        start = time.perf_counter()
        trials: list[Trial] = []
        created = self._replay_resumed(trials)
        if self.executor_kind == "sync":
            try:
                while created < self.num_samples:
                    trial_id = f"{self.name}_{created:05d}"
                    config, suggest_s = self._suggest(trial_id)
                    if config is None:
                        break  # exhausted (grid) — with sync there is nothing pending
                    trial = Trial(trial_id=trial_id, config=config)
                    self._open_trial(trial, suggest_s)
                    trials.append(trial)
                    created += 1
                    if not self._cache_lookup(trial):
                        self._execute_with_retry(trial)
                        self._cache_store(trial)
                    self._after_trial(trial)
            except TrialError as exc:
                exc.analysis = self._analysis(trials, start)
                raise
            self._flush_checkpoint()
            return self._analysis(trials, start)

        if self.executor_kind == "thread":
            pool_cm = ThreadPoolExecutor(max_workers=self.max_workers)
        else:
            # The initializer registers the trainable once per worker, so
            # each submission ships only a compact per-trial spec. Workers
            # join the telemetry fabric whenever the parent is observing.
            telemetry = bool(
                self._tracer.enabled or get_registry().enabled or get_perf().enabled
            )
            pool_cm = ProcessPoolExecutor(
                max_workers=self.max_workers,
                initializer=_pool_init,
                initargs=(self.trainable, telemetry, self.name),
            )
        with pool_cm as pool:
            futures: dict[Future, Trial] = {}
            exhausted = False
            try:
                while True:
                    # Fill every free executor slot from one batched suggest
                    # (a single surrogate fit for model-based searchers).
                    while not exhausted and created < self.num_samples:
                        want = min(self.num_samples - created, self.max_workers - len(futures))
                        if want <= 0:
                            break
                        ids = [f"{self.name}_{created + k:05d}" for k in range(want)]
                        if want == 1:
                            config, suggest_s = self._suggest(ids[0])
                            configs = [] if config is None else [config]
                        else:
                            configs, suggest_s = self._suggest_batch(ids)
                        if not configs:
                            if not futures:
                                exhausted = True  # nothing pending → truly done
                            break
                        for config in configs:
                            trial = Trial(trial_id=f"{self.name}_{created:05d}", config=config)
                            self._open_trial(trial, suggest_s)
                            trials.append(trial)
                            created += 1
                            if self._cache_lookup(trial):
                                # Completed without occupying an executor
                                # slot; tell the searcher right away.
                                self._after_trial(trial)
                            else:
                                futures[self._submit(pool, trial)] = trial
                        if len(configs) < len(ids):
                            break  # limited/exhausted for now: drain first

                    if not futures:
                        if exhausted or created >= self.num_samples:
                            break
                        # Every config of a partial batch was served from
                        # the cache: nothing to drain, go refill.
                        continue
                    done, _ = wait(futures, return_when=FIRST_COMPLETED)
                    for future in done:
                        trial = futures.pop(future)
                        self._collect(future, trial)
                        self._cache_store(trial)
                        self._after_trial(trial)
                    if created >= self.num_samples and not futures:
                        break
            except TrialError as exc:
                # Abort cleanly mid-drain: cancel everything still queued so
                # the pool context exit does not execute abandoned work, and
                # hand the partial analysis to the caller on the error.
                for future in futures:
                    future.cancel()
                pool.shutdown(wait=True, cancel_futures=True)
                exc.analysis = self._analysis(trials, start)
                raise
        self._flush_checkpoint()
        return self._analysis(trials, start)

    def _submit(self, pool: Any, trial: Trial) -> Future:
        trial.status = TrialStatus.RUNNING
        trial._submitted = time.perf_counter()
        if self.executor_kind == "process":
            trial._start = time.perf_counter()
            # trainable=None: the worker uses its _pool_init registration.
            return pool.submit(
                _process_entry,
                None,
                dict(trial.config),
                self.max_retries,
                self.retry_backoff_s,
                self.trial_timeout_s,
                trial.trial_id,
                time.time(),  # wall clock: the only timeline workers share
            )
        return pool.submit(self._run_threaded, trial)

    def _run_threaded(self, trial: Trial) -> None:
        self._record_queue_wait(trial)
        self._execute_with_retry(trial)

    def _collect(self, future: Future, trial: Trial) -> None:
        if self.executor_kind != "process":
            future.result()  # propagate unexpected harness errors only
            return
        payload: Any = None
        try:
            payload = future.result()
        except Exception as exc:  # noqa: BLE001 - harness-level failure (pickling, pool death)
            trial.error = f"{type(exc).__name__}: {exc}"
            trial.status = TrialStatus.ERROR
        else:
            retries = int(payload.get("retries", 0))
            timeouts = int(payload.get("timeouts", 0))
            if retries:
                trial.cost["retries"] = float(retries)
            if timeouts:
                trial.cost["timeouts"] = float(timeouts)
            if payload.get("tainted"):
                trial.cost["fault_injected"] = 1.0
            self._count_fault_metrics(retries, timeouts)
            if payload.get("ok"):
                try:
                    trial.result = _normalize_result(payload["raw"], self.metric)
                    trial.status = TrialStatus.TERMINATED
                except Exception as exc:  # noqa: BLE001 - recorded on the trial
                    trial.error = f"{type(exc).__name__}: {exc}"
                    trial.status = TrialStatus.ERROR
            else:
                trial.error = str(payload.get("error") or "trial failed")
                trial.status = TrialStatus.ERROR
        wall = time.perf_counter() - (trial._start or time.perf_counter())
        trial.runtime_s = wall
        worker = payload if isinstance(payload, dict) and "evaluate_s" in payload else None
        if worker is not None:
            # A fabric worker measured the split itself: clamp both pieces to
            # the parent-observed wall (clock skew must not inflate costs).
            evaluate_s = min(max(float(worker["evaluate_s"]), 0.0), wall)
            queue_wait_s = min(
                max(float(worker.get("queue_wait_s", 0.0)), 0.0),
                max(wall - evaluate_s, 0.0),
            )
            trial.cost["evaluate_s"] = evaluate_s
            if queue_wait_s > 0:
                trial.cost["queue_wait_s"] = queue_wait_s
                self._record_process_wait_span(trial, wall, queue_wait_s)
            self._record_execute_span(trial, evaluate_s)
        else:
            # Pre-fabric fallback: only the submit→collect wall is
            # observable, queue wait included.
            trial.cost["evaluate_s"] = wall
            get_perf().record("evaluate", wall)
            self._record_execute_span(trial, wall)
        telemetry = payload.get("telemetry") if isinstance(payload, dict) else None
        if telemetry is not None:
            with self._lock:
                trial_span = self._trial_spans.get(trial.trial_id)
            fabric.merge_payload(
                telemetry, parent=trial_span, attributes={"trial_id": trial.trial_id}
            )

    def _record_process_wait_span(
        self, trial: Trial, wall_s: float, queue_wait_s: float
    ) -> None:
        """Backdated queue-wait span for the process executor.

        The wait happened at the *start* of the submit→collect wall, so the
        span is stamped ``[now - wall, now - wall + wait]`` via the explicit
        ``end=`` override.
        """
        tracer = self._tracer
        if not tracer.enabled:
            return
        with self._lock:
            parent = self._trial_spans.get(trial.trial_id)
        now = tracer.clock()
        span = tracer.start_span(
            "queue-wait", parent=parent, start=now - wall_s, trial_id=trial.trial_id
        )
        tracer.end_span(span, end=now - wall_s + queue_wait_s)

    def _analysis(self, trials: list[Trial], start: float) -> ExperimentAnalysis:
        return ExperimentAnalysis(
            name=self.name,
            metric=self.metric,
            mode=self.mode,
            trials=trials,
            wall_clock_s=time.perf_counter() - start,
        )


def run(
    trainable: Trainable,
    *,
    space: Space | None = None,
    metric: str,
    mode: str = "min",
    num_samples: int = 10,
    search_alg: SearchAlgorithm | None = None,
    scheduler: TrialScheduler | None = None,
    executor: str = "sync",
    max_workers: int = 4,
    name: str = "experiment",
    seed: int | None = None,
    log_dir: str | None = None,
    batch_size: int = 1,
    refit_every: int = 1,
) -> ExperimentAnalysis:
    """``tune.run``-style entry point.

    Either pass a ``search_alg`` or a ``space`` (then a default
    :class:`SurrogateSearch` with Extra-Trees and LHS initialization is
    built, matching the paper's Listing 1 configuration). ``batch_size``
    and ``refit_every`` tune the default searcher's suggest hot path:
    batched asks amortize one surrogate fit over several suggestions, and
    refits are throttled to every ``refit_every`` fresh observations.
    """
    if search_alg is None:
        if space is None:
            raise ValidationError("pass either search_alg or space")
        search_alg = SurrogateSearch(
            space,
            mode=mode,
            base_estimator="ET",
            initial_point_generator="lhs",
            acq_func="gp_hedge",
            n_initial_points=max(1, min(10, num_samples // 2)),
            random_state=seed,
            batch_size=batch_size,
            refit_every=refit_every,
        )
    runner = TrialRunner(
        trainable,
        search_alg,
        metric=metric,
        mode=mode,
        scheduler=scheduler,
        num_samples=num_samples,
        executor=executor,
        max_workers=max_workers,
        name=name,
        log_dir=log_dir,
    )
    return runner.run()

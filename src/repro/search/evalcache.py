"""Content-addressed memoization of trial evaluations.

Populations (GA/PSO/DE) and batched-ask fallbacks over the discrete
Pl@ntNet space re-propose duplicate configurations constantly; each
re-simulation of a duplicate costs a full engine DES run for an answer the
campaign already has. The :class:`EvalCache` keys finished results by the
*canonical* configuration (via
:func:`repro.utils.serialization.config_hash`, so ``{"http": 80}`` and
``{"http": 80.0}`` collide as they should) plus a scenario fingerprint
covering everything else that determines the result — seeds, workload
duration, repetitions, model parameters.

Admission is strict: only cleanly terminated results enter. Fault-injected
attempts (any kind, including stragglers and link degradation), timed-out
or retried trials, and early-stopped trials are refused — a cache must
never replay a tainted measurement as a clean one.

Replicate-awareness: ``min_replicates=k`` serves hits only once a key has
``k`` stored evaluations, so noisy setups that deliberately re-measure a
configuration keep re-measuring until the quota is met. ``k=1`` (the
default) memoizes deterministic objectives; opting out entirely means not
attaching a cache.

Persistence is one JSONL line per stored result in the run directory, so
a resumed campaign starts warm and the cache contents are plain
provenance data.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Any, Mapping, Optional

from repro.errors import ValidationError
from repro.observability.metrics import get_registry
from repro.utils.serialization import canonical_config, config_hash

__all__ = ["EvalCache"]


class EvalCache:
    """Memoizes evaluation results by canonical config + scenario fingerprint."""

    def __init__(
        self,
        *,
        path: str | Path | None = None,
        fingerprint: Any = None,
        min_replicates: int = 1,
        fsync: bool = False,
    ) -> None:
        if int(min_replicates) < 1:
            raise ValidationError("min_replicates must be >= 1")
        self.min_replicates = int(min_replicates)
        self.fingerprint = canonical_config(fingerprint) if fingerprint is not None else None
        self.path = Path(path) if path is not None else None
        #: fsync every ledger append — cheap insurance when several hosts
        #: share the cache file over a network filesystem.
        self.fsync = bool(fsync)
        self._entries: dict[str, list[dict[str, float]]] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.rejected = 0
        self.corrupt = 0
        if self.path is not None and self.path.exists():
            self._load()

    # -- keys -----------------------------------------------------------------------

    def key(self, config: Mapping[str, Any]) -> str:
        """Content hash identifying one evaluation of ``config``."""
        return config_hash({"config": config, "fingerprint": self.fingerprint})

    # -- lookup / store ---------------------------------------------------------------

    def lookup(self, config: Mapping[str, Any]) -> Optional[dict[str, float]]:
        """A stored result for ``config``, or ``None`` (a miss).

        Hits are only served once the key holds at least
        ``min_replicates`` stored results; the first stored replicate is
        returned, so a deterministic objective replays byte-identically.
        """
        from repro.observability.digest import get_perf

        perf = get_perf()
        if not perf.enabled:
            return self._lookup(config)
        start = time.perf_counter()
        try:
            return self._lookup(config)
        finally:
            perf.record("evalcache_lookup", time.perf_counter() - start)

    def _lookup(self, config: Mapping[str, Any]) -> Optional[dict[str, float]]:
        key = self.key(config)
        with self._lock:
            replicates = self._entries.get(key)
            if replicates is not None and len(replicates) >= self.min_replicates:
                self.hits += 1
                self._count("hits")
                return dict(replicates[0])
            self.misses += 1
            self._count("misses")
            return None

    def store(
        self,
        config: Mapping[str, Any],
        result: Mapping[str, float],
        *,
        tainted: bool = False,
    ) -> bool:
        """Admit a finished result; refused (``False``) when ``tainted``.

        Callers pass ``tainted=True`` for anything that must never be
        replayed: fault-injected attempts, timeouts, retried trials,
        early-stopped partial scores.
        """
        if tainted:
            with self._lock:
                self.rejected += 1
            return False
        key = self.key(config)
        payload = {str(k): float(v) for k, v in result.items()}
        with self._lock:
            self._entries.setdefault(key, []).append(payload)
            self.stores += 1
            if self.path is not None:
                line = json.dumps(
                    {"key": key, "config": canonical_config(config), "result": payload},
                    sort_keys=True,
                )
                self._append_line(line)
        return True

    def _append_line(self, line: str) -> None:
        """One record = one ``write()`` on an ``O_APPEND`` descriptor.

        ``O_APPEND`` makes the kernel pick the offset atomically per write,
        so concurrent runners sharing one cache file (the distributed store
        backend's workers, or two campaigns over a shared cache) can never
        interleave bytes or tear each other's lines — the failure mode of
        buffered ``open("a")`` appends, where one logical record may flush
        as several writes.
        """
        assert self.path is not None
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, (line + "\n").encode("utf-8"))
            if self.fsync:
                os.fsync(fd)
        finally:
            os.close(fd)

    # -- persistence ------------------------------------------------------------------

    def _load(self) -> None:
        assert self.path is not None
        for line in self.path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                key = record["key"]
                config = record["config"]
                result = {str(k): float(v) for k, v in record["result"].items()}
            except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                # A torn tail line from a crashed run is not fatal.
                self.corrupt += 1
                continue
            if self.key(config) != key:
                # The config no longer re-hashes to the stored key: a
                # corrupted record, or an entry written under a different
                # scenario fingerprint — either way it must not be served.
                self.corrupt += 1
                continue
            self._entries.setdefault(key, []).append(result)

    # -- reporting --------------------------------------------------------------------

    def _count(self, outcome: str) -> None:
        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "repro_eval_cache_lookups_total",
                "evaluation cache lookups by outcome",
                labelnames=("outcome",),
            ).inc(outcome=outcome)

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "stores": self.stores,
                "rejected": self.rejected,
                "corrupt": self.corrupt,
                "entries": len(self._entries),
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EvalCache(entries={len(self)}, hits={self.hits}, "
            f"misses={self.misses}, min_replicates={self.min_replicates})"
        )

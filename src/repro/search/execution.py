"""Worker-side trial execution primitives.

Everything a *worker* — a process-pool child, or a store-backed runner on
another host — needs to execute one trial attempt lives here, so the same
retry/timeout/taint semantics apply no matter which
:class:`~repro.search.backends.ExecutionBackend` dispatched the trial:

- :func:`normalize_result` — coerce a trainable's return value into the
  float metrics dict the parent folds into the :class:`Trial`;
- :func:`attempt_once` / :func:`process_attempts` — one attempt (with the
  per-attempt timeout isolation thread) and the retry-with-backoff loop,
  both publishing the attempt index through :mod:`repro.faults.context`;
- :func:`process_entry` — the picklable top-level entry submitted to
  process pools, returning the structured outcome payload;
- :func:`pool_init` — the pool initializer that registers the trainable
  once per worker and joins the telemetry fabric.

The **outcome payload** is the shared wire format between any worker and
the parent's :meth:`TrialRunner._fold_worker_payload`::

    {"ok": bool, "raw"/"error": ..., "retries": int, "timeouts": int,
     "tainted": bool, ["queue_wait_s": float, "evaluate_s": float,
     "telemetry": {...}]}

Store-backed workers (:mod:`repro.search.worker`) persist exactly this
payload into the trial ledger, so distributed outcomes replay through the
same parent-side folding as local process-pool results.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Optional

from repro.errors import TrialError
from repro.faults.context import injection_occurred, reset_injection_flag, set_current_attempt
from repro.observability import fabric
from repro.observability.digest import get_perf
from repro.observability.trace import get_tracer

__all__ = [
    "Trainable",
    "normalize_result",
    "attempt_once",
    "process_attempts",
    "process_entry",
    "pool_init",
]

Trainable = Callable[..., Any]


def normalize_result(raw: Any, metric: str) -> dict[str, float]:
    """Coerce a trainable's return value into a float metrics dict.

    The target metric is strict (a non-numeric value is a trial error);
    auxiliary entries that do not convert to float (e.g. a ``"deployment"``
    tag string) are silently dropped rather than failing the whole trial.
    """
    if isinstance(raw, dict):
        if metric not in raw:
            raise TrialError(f"trainable result lacks metric {metric!r}: {sorted(raw)}")
        out: dict[str, float] = {metric: float(raw[metric])}
        for key, value in raw.items():
            if key == metric:
                continue
            try:
                out[key] = float(value)
            except (TypeError, ValueError):
                continue
        return out
    return {metric: float(raw)}


def attempt_once(
    trainable: Trainable, config: dict[str, Any], timeout_s: float | None
) -> tuple[str, Any, bool]:
    """One attempt in a worker process.

    Returns ``(status, payload, injected)`` where status is ``"ok"`` /
    ``"error"`` / ``"timeout"`` and ``injected`` records whether a fault
    was injected into the attempt (read on the thread that ran it, since
    the marker is thread-local).
    """
    if timeout_s is None:
        reset_injection_flag()
        try:
            raw = trainable(config)
            return ("ok", raw, injection_occurred())
        except Exception as exc:  # noqa: BLE001 - reported to the parent
            return ("error", f"{type(exc).__name__}: {exc}", injection_occurred())
        except BaseException as exc:  # SystemExit & friends: still one trial's error
            if isinstance(exc, KeyboardInterrupt):
                raise
            return ("error", f"{type(exc).__name__}: {exc}", injection_occurred())
    box: list[tuple[str, Any, bool]] = []

    def _worker() -> None:
        try:
            box.append(attempt_once(trainable, config, None))
        except BaseException as exc:  # noqa: BLE001 - keep the box non-empty
            box.append(("error", f"{type(exc).__name__}: {exc}", True))

    worker = threading.Thread(target=_worker, daemon=True)
    worker.start()
    worker.join(timeout_s)
    if worker.is_alive():
        return ("timeout", f"TrialTimeout: exceeded {timeout_s}s", True)
    if not box:
        return ("error", "trial worker exited without reporting a result", True)
    return box[0]


#: per-worker registration installed by :func:`pool_init` — the trainable
#: is pickled once per worker process instead of once per submitted trial.
_WORKER_TRAINABLE: Optional[Trainable] = None


def pool_init(
    trainable: Trainable, telemetry: bool = False, runner_name: str = "experiment"
) -> None:
    """Process-pool initializer: register the trainable once per worker.

    With ``telemetry`` the worker also joins the cross-process fabric —
    a worker-local tracer/registry/perf recorder captures everything the
    trainable's instrumentation records, shipped back per trial.
    """
    global _WORKER_TRAINABLE
    _WORKER_TRAINABLE = trainable
    if telemetry:
        fabric.activate_worker(runner_name)


def process_attempts(
    trainable: Trainable,
    config: dict[str, Any],
    max_retries: int,
    backoff_s: float,
    timeout_s: float | None,
) -> dict[str, Any]:
    """The worker-side retry/timeout loop shared by all process entries."""
    retries = 0
    timeouts = 0
    payload: Any = None
    injected = False
    for attempt in range(int(max_retries) + 1):
        set_current_attempt(attempt)
        status, payload, injected = attempt_once(trainable, config, timeout_s)
        if status == "ok":
            return {
                "ok": True,
                "raw": payload,
                "retries": retries,
                "timeouts": timeouts,
                "tainted": bool(injected or retries or timeouts),
            }
        if status == "timeout":
            timeouts += 1
        if attempt < max_retries:
            retries += 1
            if backoff_s > 0:
                time.sleep(backoff_s * (2**attempt))
    return {
        "ok": False,
        "error": payload,
        "retries": retries,
        "timeouts": timeouts,
        "tainted": True,
    }


def process_entry(
    trainable: Optional[Trainable],
    config: dict[str, Any],
    max_retries: int = 0,
    backoff_s: float = 0.0,
    timeout_s: float | None = None,
    trial_id: str | None = None,
    submitted_unix: float | None = None,
) -> dict[str, Any]:
    """Top-level entry for process executors (picklable).

    ``trainable=None`` uses the per-worker registration from
    :func:`pool_init`, so each submission ships only the compact trial
    spec (config + retry knobs), not a re-pickled trainable/conf object.
    The retry/timeout loop runs *inside* the worker so the parent's drain
    loop stays a plain future wait. Never raises for trainable failures —
    the structured payload carries the outcome plus retry/timeout counts
    and a ``tainted`` marker (fault injected or timed out on the final
    attempt) the evaluation cache uses to refuse admission.

    In a fabric-activated worker the payload additionally carries
    worker-measured ``queue_wait_s``/``evaluate_s`` and a ``telemetry``
    blob (spans, metrics, latency digests) for the parent to merge.
    """
    if trainable is None:
        trainable = _WORKER_TRAINABLE
        if trainable is None:  # pragma: no cover - defensive
            return {"ok": False, "error": "no trainable registered in worker", "retries": 0, "timeouts": 0, "tainted": True}
    if not fabric.worker_active():
        return process_attempts(trainable, config, max_retries, backoff_s, timeout_s)
    perf = get_perf()
    queue_wait = 0.0
    if submitted_unix is not None:
        # Submit→pickup across the process boundary: only wall clocks are
        # shared, so the parent stamps a unix timestamp at submit time.
        queue_wait = max(0.0, time.time() - float(submitted_unix))
        perf.record("queue_wait", queue_wait)
    tracer = get_tracer()
    start = time.perf_counter()
    with tracer.span("evaluate", trial_id=trial_id):
        result = process_attempts(trainable, config, max_retries, backoff_s, timeout_s)
    evaluate_s = time.perf_counter() - start
    perf.record("evaluate", evaluate_s)
    result["queue_wait_s"] = queue_wait
    result["evaluate_s"] = evaluate_s
    result["telemetry"] = fabric.drain_worker()
    return result

"""Search algorithms: how the next trial configuration is chosen."""

from __future__ import annotations

import abc
import itertools
from typing import Any, Optional

import numpy as np

from repro.bayesopt.optimizer import Optimizer
from repro.bayesopt.space import Space
from repro.errors import ValidationError

__all__ = [
    "SearchAlgorithm",
    "SurrogateSearch",
    "RandomSearch",
    "GridSearch",
    "ConcurrencyLimiter",
]


class SearchAlgorithm(abc.ABC):
    """Suggests configurations and learns from completed trials."""

    def __init__(self, space: Space, *, mode: str = "min") -> None:
        if mode not in ("min", "max"):
            raise ValidationError(f"mode must be 'min' or 'max', got {mode!r}")
        self.space = space
        self.mode = mode

    def _sign(self, value: float) -> float:
        """Internally everything minimizes; flip for mode='max'."""
        return value if self.mode == "min" else -value

    @abc.abstractmethod
    def suggest(self, trial_id: str) -> Optional[dict[str, Any]]:
        """Next configuration, or ``None`` when the algorithm is exhausted."""

    def suggest_batch(self, trial_ids: list[str]) -> list[dict[str, Any]]:
        """Up to ``len(trial_ids)`` configurations in one call.

        The returned list may be shorter when the algorithm is exhausted or
        concurrency-limited; it never contains ``None``. The default loops
        :meth:`suggest`; model-based searchers override it to amortize one
        surrogate fit across the whole batch.
        """
        out: list[dict[str, Any]] = []
        for trial_id in trial_ids:
            config = self.suggest(trial_id)
            if config is None:
                break
            out.append(config)
        return out

    @abc.abstractmethod
    def on_trial_complete(self, trial_id: str, config: dict[str, Any], value: float) -> None:
        """Feed back the objective value of a finished trial."""

    def on_trial_error(self, trial_id: str, config: dict[str, Any]) -> None:
        """Default: forget the pending suggestion (subclasses may override)."""

    # -- checkpoint / lifecycle hooks -------------------------------------------------

    def state_dict(self) -> Optional[dict[str, Any]]:
        """Checkpointable searcher internals, or ``None`` when stateless.

        Whatever this returns is stored verbatim in ``checkpoint.json`` and
        handed back to :meth:`load_state` on ``--resume`` *after* the
        finished trials have been replayed through
        :meth:`on_trial_complete`.
        """
        return None

    def load_state(self, state: dict[str, Any]) -> None:
        """Restore :meth:`state_dict` output (no-op for stateless searchers)."""

    def fit_count(self) -> int:
        """Monotonic count of inline (ask-blocking) surrogate fits.

        The trial runner compares it around a suggest call to classify the
        latency as fit-bearing (``suggest_fit``) or amortized (``suggest``).
        Always 0 for model-free searchers.
        """
        return 0

    def close(self) -> None:
        """Release background resources (refit worker threads); idempotent."""


class SurrogateSearch(SearchAlgorithm):
    """Model-based search wrapping :class:`repro.bayesopt.Optimizer`.

    The analogue of the paper's ``SkOptSearch(optimizer=Optimizer(...))``;
    pass either a pre-built optimizer or the optimizer's keyword arguments.

    ``batch_size`` > 1 prefetches suggestions: one ``ask(batch_size)``
    (a single surrogate fit) feeds that many ``suggest`` calls. The trial
    runner additionally asks for whole batches directly via
    :meth:`suggest_batch` to fill all free executor slots at once.
    """

    def __init__(
        self,
        space: Space,
        *,
        mode: str = "min",
        optimizer: Optimizer | None = None,
        batch_size: int = 1,
        **optimizer_kwargs: Any,
    ) -> None:
        super().__init__(space, mode=mode)
        if optimizer is not None and optimizer_kwargs:
            raise ValidationError("pass either optimizer or kwargs, not both")
        if batch_size < 1:
            raise ValidationError("batch_size must be >= 1")
        self.optimizer = optimizer or Optimizer(space, **optimizer_kwargs)
        if self.optimizer.space is not space:
            # Allow a pre-built optimizer but insist the spaces agree.
            if self.optimizer.space.names != space.names:
                raise ValidationError("optimizer space does not match search space")
        self.batch_size = int(batch_size)
        self._prefetched: list[dict[str, Any]] = []

    def suggest(self, trial_id: str) -> Optional[dict[str, Any]]:
        if self._prefetched:
            return self._prefetched.pop(0)
        if self.batch_size > 1:
            points = self.optimizer.ask(self.batch_size)
            self._prefetched = [self.space.to_dict(p) for p in points]
            return self._prefetched.pop(0)
        return self.space.to_dict(self.optimizer.ask())

    def suggest_batch(self, trial_ids: list[str]) -> list[dict[str, Any]]:
        out: list[dict[str, Any]] = []
        while self._prefetched and len(out) < len(trial_ids):
            out.append(self._prefetched.pop(0))
        need = len(trial_ids) - len(out)
        if need > 0:
            out.extend(self.space.to_dict(p) for p in self.optimizer.ask(need))
        return out

    def on_trial_complete(self, trial_id: str, config: dict[str, Any], value: float) -> None:
        point = [config[name] for name in self.space.names]
        self.optimizer.tell(point, self._sign(value))

    def state_dict(self) -> Optional[dict[str, Any]]:
        return {"optimizer": self.optimizer.export_state()}

    def load_state(self, state: dict[str, Any]) -> None:
        optimizer_state = state.get("optimizer")
        if optimizer_state:
            self.optimizer.restore_state(optimizer_state)

    def fit_count(self) -> int:
        return self.optimizer.n_fits

    def close(self) -> None:
        self.optimizer.close()


class RandomSearch(SearchAlgorithm):
    """Uniform random sampling of the space."""

    def __init__(self, space: Space, *, mode: str = "min", seed: int | None = None) -> None:
        super().__init__(space, mode=mode)
        self.rng = np.random.default_rng(seed)

    def suggest(self, trial_id: str) -> Optional[dict[str, Any]]:
        unit = self.rng.random(len(self.space))
        point = self.space.inverse_transform(unit[None, :])[0]
        return self.space.to_dict(point)

    def on_trial_complete(self, trial_id: str, config: dict[str, Any], value: float) -> None:
        pass  # memoryless


class GridSearch(SearchAlgorithm):
    """Exhaustive scan over explicit value lists per dimension."""

    def __init__(
        self,
        space: Space,
        values: dict[str, list[Any]],
        *,
        mode: str = "min",
    ) -> None:
        super().__init__(space, mode=mode)
        missing = set(space.names) - set(values)
        if missing:
            raise ValidationError(f"grid values missing for dimensions: {sorted(missing)}")
        axes = [values[name] for name in space.names]
        self._points = [
            dict(zip(space.names, combo)) for combo in itertools.product(*axes)
        ]
        self._cursor = 0

    def __len__(self) -> int:
        return len(self._points)

    def suggest(self, trial_id: str) -> Optional[dict[str, Any]]:
        if self._cursor >= len(self._points):
            return None
        point = self._points[self._cursor]
        self._cursor += 1
        return dict(point)

    def on_trial_complete(self, trial_id: str, config: dict[str, Any], value: float) -> None:
        pass


class ConcurrencyLimiter(SearchAlgorithm):
    """Caps the number of outstanding suggestions (Listing 1 line 12).

    ``suggest`` returns ``None`` while ``max_concurrent`` suggestions are
    unresolved; the trial runner interprets ``None`` as "wait".
    """

    def __init__(self, searcher: SearchAlgorithm, max_concurrent: int) -> None:
        if max_concurrent < 1:
            raise ValidationError("max_concurrent must be >= 1")
        super().__init__(searcher.space, mode=searcher.mode)
        self.searcher = searcher
        self.max_concurrent = int(max_concurrent)
        self._outstanding: set[str] = set()

    def suggest(self, trial_id: str) -> Optional[dict[str, Any]]:
        if len(self._outstanding) >= self.max_concurrent:
            return None
        config = self.searcher.suggest(trial_id)
        if config is not None:
            self._outstanding.add(trial_id)
        return config

    def suggest_batch(self, trial_ids: list[str]) -> list[dict[str, Any]]:
        free = self.max_concurrent - len(self._outstanding)
        if free <= 0:
            return []
        ids = list(trial_ids)[:free]
        configs = self.searcher.suggest_batch(ids)
        self._outstanding.update(ids[: len(configs)])
        return configs

    def on_trial_complete(self, trial_id: str, config: dict[str, Any], value: float) -> None:
        self._outstanding.discard(trial_id)
        self.searcher.on_trial_complete(trial_id, config, value)

    def on_trial_error(self, trial_id: str, config: dict[str, Any]) -> None:
        self._outstanding.discard(trial_id)
        self.searcher.on_trial_error(trial_id, config)

    def state_dict(self) -> Optional[dict[str, Any]]:
        return self.searcher.state_dict()

    def load_state(self, state: dict[str, Any]) -> None:
        self.searcher.load_state(state)

    def fit_count(self) -> int:
        return self.searcher.fit_count()

    def close(self) -> None:
        self.searcher.close()

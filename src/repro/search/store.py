"""A shared, crash-safe, file-backed trial store for distributed campaigns.

The store is the durable hand-off point between one campaign parent (the
:class:`~repro.search.runner.TrialRunner` with the ``"store"`` backend) and
any number of workers — local processes spawned by the backend, or elastic
``python -m repro worker <run-dir>`` processes joining and leaving
mid-campaign, possibly on other hosts sharing the filesystem.

Design (modeled on powerlift's DB-backed ``run_trials`` worker loop, made
file-native so a campaign needs nothing but its run directory):

- ``store.json`` — immutable campaign metadata (metric, retry knobs,
  lease duration, telemetry flag), written atomically once.
- ``ledger.jsonl`` — an **append-only event log**. Every event is one JSON
  line emitted as a single ``write()`` on an ``O_APPEND`` descriptor, so
  concurrent writers never interleave bytes and a crash can at worst leave
  one torn *tail* line (skipped on replay, never corrupting prior events).
  Current state is materialized by replaying events in order.
- ``.lock`` — an ``flock``-guarded critical section around claim-type
  transitions (``pick_trial`` reads state *and* appends the claim under
  the lock), so two workers can never claim the same trial.

Event types::

    {"type": "trial",     "trial_id", "config", "t"}            # enqueued
    {"type": "claim",     "trial_id", "runner_id", "lease_until", "t"}
    {"type": "heartbeat", "trial_id", "runner_id", "lease_until", "t"}
    {"type": "release",   "trial_id", "runner_id", "reason", "t"}
    {"type": "done",      "trial_id", "runner_id", "outcome", "t"}
    {"type": "close",     "t"}                                  # campaign over

Lifecycle rules enforced by replay: a trial is *queued* until claimed;
a claim is live until its ``lease_until`` passes, the claimer releases it,
or a ``done`` lands; an expired lease makes the trial claimable again
(lease+heartbeat reclamation of orphaned trials — a SIGKILLed worker stops
heartbeating and its trial is re-queued); the **first** ``done`` event per
trial wins, so a reclaimed trial whose original worker was merely slow
still completes exactly once from the parent's point of view.
"""

from __future__ import annotations

import fcntl
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Mapping, Optional

from contextlib import contextmanager

from repro.errors import ValidationError
from repro.utils.serialization import dump_json, load_json, to_jsonable

__all__ = ["TrialStore", "StoreState", "TrialClaim", "DEFAULT_LEASE_S"]

LEDGER_FILE = "ledger.jsonl"
META_FILE = "store.json"
LOCK_FILE = ".lock"

#: default worker lease duration; heartbeats renew at a third of this.
DEFAULT_LEASE_S = 30.0


@dataclass
class TrialClaim:
    """One successful ``pick_trial``: the work handed to a worker."""

    trial_id: str
    config: dict[str, Any]
    runner_id: str
    lease_until: float
    #: how many times this trial had been claimed before (0 = first run).
    prior_claims: int = 0


@dataclass
class _TrialState:
    config: dict[str, Any]
    status: str = "queued"  # queued | claimed | done
    runner_id: Optional[str] = None
    lease_until: float = 0.0
    outcome: Optional[dict[str, Any]] = None
    claims: int = 0
    completed_by: Optional[str] = None


@dataclass
class StoreState:
    """Materialized view of the ledger at one point in time."""

    trials: dict[str, _TrialState] = field(default_factory=dict)
    order: list[str] = field(default_factory=list)
    closed: bool = False
    #: duplicate ``done`` events ignored (first-completion-wins accounting).
    duplicate_done: int = 0
    #: ledger lines that failed to parse (torn tail from a crashed writer).
    torn_lines: int = 0
    #: per-runner activity replayed from claim/heartbeat/done events:
    #: ``runner_id -> {"last_seen_t", "claims", "done"}``. Release events
    #: deliberately do not count — ``pick_trial`` appends them on behalf of
    #: the *dead* runner whose lease it reclaims, so treating one as a
    #: heartbeat would resurrect exactly the worker the store just buried.
    runners: dict[str, dict[str, Any]] = field(default_factory=dict)

    def _runner_seen(self, runner_id: Any, t: Any) -> dict[str, Any]:
        record = self.runners.setdefault(
            str(runner_id), {"last_seen_t": 0.0, "claims": 0, "done": 0}
        )
        try:
            record["last_seen_t"] = max(record["last_seen_t"], float(t))
        except (TypeError, ValueError):
            pass
        return record

    def counts(self) -> dict[str, int]:
        out = {"queued": 0, "claimed": 0, "done": 0}
        for state in self.trials.values():
            out[state.status] += 1
        return out

    def unfinished(self) -> list[str]:
        return [tid for tid in self.order if self.trials[tid].status != "done"]

    def live_leases(self, now: float | None = None) -> list[str]:
        now = time.time() if now is None else now
        return [
            tid
            for tid in self.order
            if self.trials[tid].status == "claimed" and self.trials[tid].lease_until > now
        ]


class TrialStore:
    """File-backed distributed trial ledger (see module docstring)."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        if not (self.root / META_FILE).exists():
            raise ValidationError(
                f"no trial store under {self.root} — create one with TrialStore.create()"
            )
        self.meta: dict[str, Any] = load_json(self.root / META_FILE)
        self._ledger = self.root / LEDGER_FILE
        self._lockpath = self.root / LOCK_FILE

    # -- construction -----------------------------------------------------------------

    @classmethod
    def create(
        cls,
        root: str | Path,
        *,
        name: str = "experiment",
        metric: str = "objective",
        max_retries: int = 0,
        retry_backoff_s: float = 0.0,
        trial_timeout_s: float | None = None,
        lease_s: float = DEFAULT_LEASE_S,
        telemetry: bool = False,
        fresh: bool = False,
    ) -> "TrialStore":
        """Create (or re-open) the store directory for one campaign.

        ``fresh=True`` truncates an existing ledger; the default keeps it,
        so a resumed campaign re-opens its store with prior events intact.
        """
        if lease_s <= 0:
            raise ValidationError("lease_s must be > 0")
        root = Path(root)
        root.mkdir(parents=True, exist_ok=True)
        meta = {
            "schema": "repro.store/1",
            "name": name,
            "metric": metric,
            "max_retries": int(max_retries),
            "retry_backoff_s": float(retry_backoff_s),
            "trial_timeout_s": trial_timeout_s,
            "lease_s": float(lease_s),
            "telemetry": bool(telemetry),
        }
        dump_json(meta, root / META_FILE, atomic=True)
        ledger = root / LEDGER_FILE
        if fresh and ledger.exists():
            ledger.unlink()
        ledger.touch(exist_ok=True)
        (root / LOCK_FILE).touch(exist_ok=True)
        return cls(root)

    @classmethod
    def open(cls, root: str | Path) -> "TrialStore":
        """Open an existing store (worker side)."""
        return cls(root)

    # -- the ledger -------------------------------------------------------------------

    def _append(self, record: Mapping[str, Any]) -> None:
        """Append one event as a single ``O_APPEND`` write (crash-safe)."""
        line = json.dumps(to_jsonable(record), sort_keys=True) + "\n"
        fd = os.open(self._ledger, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, line.encode("utf-8"))
        finally:
            os.close(fd)

    @contextmanager
    def _locked(self) -> Iterator[None]:
        """Exclusive inter-process critical section (``flock``)."""
        fd = os.open(self._lockpath, os.O_WRONLY | os.O_CREAT, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            fcntl.flock(fd, fcntl.LOCK_UN)
            os.close(fd)

    def events(self) -> Iterator[dict[str, Any]]:
        """Parsed ledger events in append order (torn lines skipped)."""
        if not self._ledger.exists():
            return
        with self._ledger.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn tail line from a crashed writer
                if isinstance(event, dict) and "type" in event:
                    yield event

    def snapshot(self) -> StoreState:
        """Replay the ledger into the current campaign state."""
        state = StoreState()
        raw_lines = 0
        parsed = 0
        if self._ledger.exists():
            raw_lines = sum(
                1 for line in self._ledger.read_text(encoding="utf-8").splitlines() if line.strip()
            )
        for event in self.events():
            parsed += 1
            kind = event["type"]
            tid = event.get("trial_id")
            if kind == "trial":
                if tid not in state.trials:
                    state.trials[tid] = _TrialState(config=dict(event.get("config", {})))
                    state.order.append(tid)
                continue
            if kind == "close":
                state.closed = True
                continue
            trial = state.trials.get(tid)
            if trial is None:
                continue  # claim/done for an unknown trial: ignore
            if kind == "claim":
                if event.get("runner_id") is not None:
                    record = state._runner_seen(event["runner_id"], event.get("t", 0.0))
                    record["claims"] += 1
                if trial.status != "done":
                    trial.status = "claimed"
                    trial.runner_id = event.get("runner_id")
                    trial.lease_until = float(event.get("lease_until", 0.0))
                    trial.claims += 1
            elif kind == "heartbeat":
                if event.get("runner_id") is not None:
                    state._runner_seen(event["runner_id"], event.get("t", 0.0))
                if trial.status == "claimed" and trial.runner_id == event.get("runner_id"):
                    trial.lease_until = max(
                        trial.lease_until, float(event.get("lease_until", 0.0))
                    )
            elif kind == "release":
                if trial.status == "claimed" and trial.runner_id == event.get("runner_id"):
                    trial.status = "queued"
                    trial.runner_id = None
                    trial.lease_until = 0.0
            elif kind == "done":
                if event.get("runner_id") is not None:
                    record = state._runner_seen(event["runner_id"], event.get("t", 0.0))
                if trial.status == "done":
                    state.duplicate_done += 1  # first completion wins
                else:
                    if event.get("runner_id") is not None:
                        record["done"] += 1
                    trial.status = "done"
                    trial.outcome = event.get("outcome")
                    trial.completed_by = event.get("runner_id")
        state.torn_lines = max(0, raw_lines - parsed)
        return state

    def worker_liveness(
        self, *, state: StoreState | None = None, now: float | None = None
    ) -> list[dict[str, Any]]:
        """Per-runner liveness derived from ledger heartbeat ages.

        One record per runner ever seen in the ledger, sorted by id:
        ``lease_state`` is ``"live"`` (holds at least one unexpired lease),
        ``"expired"`` (holds claims but every lease lapsed — the worker is
        presumed dead until a reclaim re-queues its trials) or ``"idle"``
        (between claims, or finished). Consumers: ``GET /status`` worker
        rows and the store backend's stall guard.
        """
        state = self.snapshot() if state is None else state
        now = time.time() if now is None else now
        held: dict[str, list[tuple[str, float]]] = {}
        for tid in state.order:
            trial = state.trials[tid]
            if trial.status == "claimed" and trial.runner_id is not None:
                held.setdefault(trial.runner_id, []).append((tid, trial.lease_until))
        out = []
        for runner_id in sorted(state.runners):
            record = state.runners[runner_id]
            leases = held.get(runner_id, [])
            best_lease = max((until for _, until in leases), default=None)
            if best_lease is None:
                lease_state = "idle"
            elif best_lease > now:
                lease_state = "live"
            else:
                lease_state = "expired"
            out.append(
                {
                    "runner_id": runner_id,
                    "lease_state": lease_state,
                    "last_seen_age_s": max(0.0, now - record["last_seen_t"]),
                    "lease_remaining_s": (
                        best_lease - now if best_lease is not None else None
                    ),
                    "active_trials": [tid for tid, _ in leases],
                    "claims": record["claims"],
                    "done": record["done"],
                }
            )
        return out

    # -- producer API (the campaign parent) ---------------------------------------------

    def add_trial(self, trial_id: str, config: Mapping[str, Any]) -> None:
        """Enqueue one trial; re-adding a known id is a no-op on replay."""
        self._append(
            {"type": "trial", "trial_id": str(trial_id), "config": dict(config), "t": time.time()}
        )

    def close(self) -> None:
        """Mark the campaign over; idle workers observe this and exit."""
        self._append({"type": "close", "t": time.time()})

    # -- worker API ---------------------------------------------------------------------

    def pick_trial(
        self, runner_id: str, *, lease_s: float | None = None
    ) -> Optional[TrialClaim]:
        """Atomically claim the next runnable trial, or ``None``.

        Under the store lock: the oldest *queued* trial is claimed; failing
        that, the oldest *claimed* trial whose lease has expired is
        reclaimed (released, then claimed by this runner) — that is how a
        SIGKILLed worker's trial finds a new home.
        """
        lease_s = float(self.meta.get("lease_s", DEFAULT_LEASE_S) if lease_s is None else lease_s)
        now = time.time()
        with self._locked():
            state = self.snapshot()
            if state.closed:
                # A closed campaign hands out no work — queued leftovers
                # belong to an aborted parent and must not be executed.
                return None
            chosen: Optional[str] = None
            prior = 0
            for tid in state.order:
                if state.trials[tid].status == "queued":
                    chosen = tid
                    prior = state.trials[tid].claims
                    break
            if chosen is None:
                for tid in state.order:
                    trial = state.trials[tid]
                    if trial.status == "claimed" and trial.lease_until <= now:
                        self._append(
                            {
                                "type": "release",
                                "trial_id": tid,
                                "runner_id": trial.runner_id,
                                "reason": "lease-expired",
                                "t": now,
                            }
                        )
                        chosen = tid
                        prior = trial.claims
                        break
            if chosen is None:
                return None
            lease_until = now + lease_s
            self._append(
                {
                    "type": "claim",
                    "trial_id": chosen,
                    "runner_id": runner_id,
                    "lease_until": lease_until,
                    "t": now,
                }
            )
            return TrialClaim(
                trial_id=chosen,
                config=dict(state.trials[chosen].config),
                runner_id=runner_id,
                lease_until=lease_until,
                prior_claims=prior,
            )

    def heartbeat(self, trial_id: str, runner_id: str, *, lease_s: float | None = None) -> None:
        """Extend this runner's lease on a trial it is still executing."""
        lease_s = float(self.meta.get("lease_s", DEFAULT_LEASE_S) if lease_s is None else lease_s)
        self._append(
            {
                "type": "heartbeat",
                "trial_id": str(trial_id),
                "runner_id": runner_id,
                "lease_until": time.time() + lease_s,
                "t": time.time(),
            }
        )

    def end_trial(self, trial_id: str, runner_id: str, outcome: Mapping[str, Any]) -> None:
        """Record a finished trial's outcome payload (first event wins)."""
        self._append(
            {
                "type": "done",
                "trial_id": str(trial_id),
                "runner_id": runner_id,
                "outcome": dict(outcome),
                "t": time.time(),
            }
        )

    # -- convenience ----------------------------------------------------------------------

    def done_records(self) -> dict[str, dict[str, Any]]:
        """trial_id → winning outcome payload, for resume/recovery readers."""
        state = self.snapshot()
        return {
            tid: dict(trial.outcome)
            for tid, trial in state.trials.items()
            if trial.status == "done" and isinstance(trial.outcome, dict)
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        counts = self.snapshot().counts()
        return f"TrialStore({self.root}, {counts})"

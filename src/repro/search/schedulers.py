"""Trial schedulers: early stopping of unpromising configurations."""

from __future__ import annotations

import enum
from collections import defaultdict

import numpy as np

from repro.errors import ValidationError
from repro.search.trial import Trial

__all__ = ["TrialDecision", "TrialScheduler", "FIFOScheduler", "AsyncHyperBandScheduler"]


class TrialDecision(str, enum.Enum):
    CONTINUE = "continue"
    STOP = "stop"


class TrialScheduler:
    """Base scheduler: lets every trial run to completion."""

    def __init__(self, mode: str = "min") -> None:
        if mode not in ("min", "max"):
            raise ValidationError("mode must be 'min' or 'max'")
        self.mode = mode

    def on_result(self, trial: Trial, step: int, value: float) -> TrialDecision:
        return TrialDecision.CONTINUE

    def on_complete(self, trial: Trial) -> None:
        pass


class FIFOScheduler(TrialScheduler):
    """No early stopping (the default)."""


class AsyncHyperBandScheduler(TrialScheduler):
    """ASHA — asynchronous successive halving (Li et al. 2018).

    Rungs are placed at ``grace_period · reduction_factor**k`` steps. When a
    trial reaches a rung, it is stopped unless its value is within the best
    ``1/reduction_factor`` fraction of everything recorded at that rung —
    the asynchronous variant promotes immediately instead of waiting for a
    full bracket, matching Ray Tune's ``AsyncHyperBandScheduler``.
    """

    def __init__(
        self,
        *,
        mode: str = "min",
        grace_period: int = 1,
        reduction_factor: float = 3.0,
        max_t: int = 100,
    ) -> None:
        super().__init__(mode)
        if grace_period < 1:
            raise ValidationError("grace_period must be >= 1")
        if reduction_factor <= 1:
            raise ValidationError("reduction_factor must be > 1")
        if max_t < grace_period:
            raise ValidationError("max_t must be >= grace_period")
        self.grace_period = int(grace_period)
        self.reduction_factor = float(reduction_factor)
        self.max_t = int(max_t)
        # rung step -> recorded values at that rung
        self._rungs: dict[int, list[float]] = defaultdict(list)
        rungs = []
        step = self.grace_period
        while step <= self.max_t:
            rungs.append(int(step))
            step = step * self.reduction_factor
        self._rung_steps = rungs

    def rung_for(self, step: int) -> int | None:
        """The highest rung at or below ``step``, if any."""
        eligible = [r for r in self._rung_steps if r <= step]
        return eligible[-1] if eligible else None

    def on_result(self, trial: Trial, step: int, value: float) -> TrialDecision:
        rung = self.rung_for(step)
        if rung is None:
            return TrialDecision.CONTINUE
        signed = value if self.mode == "min" else -value
        recorded = self._rungs[rung]
        recorded.append(signed)
        if len(recorded) < self.reduction_factor:
            return TrialDecision.CONTINUE  # not enough evidence yet
        cutoff = float(np.quantile(recorded, 1.0 / self.reduction_factor))
        return TrialDecision.CONTINUE if signed <= cutoff else TrialDecision.STOP

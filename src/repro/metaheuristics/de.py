"""Differential evolution, DE/rand/1/bin."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.bayesopt.space import Dimension, Space
from repro.errors import ValidationError
from repro.metaheuristics.base import (
    MetaheuristicOptimizer,
    MetaheuristicResult,
    Objective,
    _Memo,
)

__all__ = ["DifferentialEvolution"]


class DifferentialEvolution(MetaheuristicOptimizer):
    """Classic DE: mutant ``a + F·(b − c)``, binomial crossover, greedy
    selection. Out-of-cube mutants are reflected back inside."""

    def __init__(
        self,
        population_size: int = 25,
        *,
        differential_weight: float = 0.7,
        crossover_rate: float = 0.9,
        seed: int | None = None,
    ) -> None:
        super().__init__(seed=seed)
        if population_size < 4:
            raise ValidationError("population_size must be >= 4 for DE/rand/1")
        if not 0 < differential_weight <= 2:
            raise ValidationError("differential_weight must be in (0, 2]")
        if not 0 <= crossover_rate <= 1:
            raise ValidationError("crossover_rate must be in [0, 1]")
        self.population_size = int(population_size)
        self.differential_weight = float(differential_weight)
        self.crossover_rate = float(crossover_rate)

    def minimize(
        self,
        func: Objective,
        space: Space | Sequence[Dimension],
        *,
        n_iterations: int = 50,
    ) -> MetaheuristicResult:
        space = self._as_space(space)
        n_iterations = self._check_iterations(n_iterations)
        rng = np.random.default_rng(self.seed)
        memo = _Memo(func, space)
        d = len(space)
        n = self.population_size

        population = rng.random((n, d))
        fitness = np.array([memo(ind) for ind in population])
        history: list[float] = []

        for _ in range(n_iterations):
            history.append(float(fitness.min()))
            for i in range(n):
                choices = [j for j in range(n) if j != i]
                a, b, c = population[rng.choice(choices, size=3, replace=False)]
                mutant = a + self.differential_weight * (b - c)
                # Reflect out-of-bounds coordinates back into the cube.
                mutant = np.abs(mutant)
                mutant = np.where(mutant > 1.0, 2.0 - mutant, mutant)
                mutant = np.clip(mutant, 0.0, 1.0)
                cross = rng.random(d) < self.crossover_rate
                cross[rng.integers(d)] = True  # at least one gene from mutant
                candidate = np.where(cross, mutant, population[i])
                f_candidate = memo(candidate)
                if f_candidate <= fitness[i]:
                    population[i] = candidate
                    fitness[i] = f_candidate

        best = int(np.argmin(fitness))
        history.append(float(fitness[best]))
        return MetaheuristicResult(
            x=memo.decode(population[best]),
            fun=float(fitness[best]),
            n_evaluations=memo.n_evaluations,
            history=history,
        )

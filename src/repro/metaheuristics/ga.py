"""Genetic algorithm: tournament selection, uniform crossover, mutation."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.bayesopt.space import Dimension, Space
from repro.errors import ValidationError
from repro.metaheuristics.base import (
    MetaheuristicOptimizer,
    MetaheuristicResult,
    Objective,
    _Memo,
)

__all__ = ["GeneticAlgorithm"]


class GeneticAlgorithm(MetaheuristicOptimizer):
    """Real-coded GA over the unit cube.

    Per generation: elitism keeps the best ``n_elites``; parents are chosen
    by ``tournament_size``-way tournaments; children arise from uniform
    crossover with probability ``crossover_rate`` and per-gene Gaussian
    mutation with probability ``mutation_rate``.
    """

    def __init__(
        self,
        population_size: int = 30,
        *,
        tournament_size: int = 3,
        crossover_rate: float = 0.9,
        mutation_rate: float = 0.15,
        mutation_sigma: float = 0.12,
        n_elites: int = 2,
        seed: int | None = None,
    ) -> None:
        super().__init__(seed=seed)
        if population_size < 4:
            raise ValidationError("population_size must be >= 4")
        if not 2 <= tournament_size <= population_size:
            raise ValidationError("tournament_size must be in [2, population_size]")
        if not 0 <= crossover_rate <= 1 or not 0 <= mutation_rate <= 1:
            raise ValidationError("rates must be in [0, 1]")
        if not 0 <= n_elites < population_size:
            raise ValidationError("n_elites must be in [0, population_size)")
        self.population_size = int(population_size)
        self.tournament_size = int(tournament_size)
        self.crossover_rate = float(crossover_rate)
        self.mutation_rate = float(mutation_rate)
        self.mutation_sigma = float(mutation_sigma)
        self.n_elites = int(n_elites)

    def minimize(
        self,
        func: Objective,
        space: Space | Sequence[Dimension],
        *,
        n_iterations: int = 50,
    ) -> MetaheuristicResult:
        space = self._as_space(space)
        n_iterations = self._check_iterations(n_iterations)
        rng = np.random.default_rng(self.seed)
        memo = _Memo(func, space)
        d = len(space)

        population = rng.random((self.population_size, d))
        fitness = np.array([memo(ind) for ind in population])
        history: list[float] = []

        for _ in range(n_iterations):
            order = np.argsort(fitness)
            population = population[order]
            fitness = fitness[order]
            history.append(float(fitness[0]))

            next_pop = [population[i].copy() for i in range(self.n_elites)]
            while len(next_pop) < self.population_size:
                p1 = self._tournament(population, fitness, rng)
                p2 = self._tournament(population, fitness, rng)
                if rng.random() < self.crossover_rate:
                    mask = rng.random(d) < 0.5
                    child = np.where(mask, p1, p2)
                else:
                    child = p1.copy()
                mutate = rng.random(d) < self.mutation_rate
                child = np.where(
                    mutate, child + rng.normal(0.0, self.mutation_sigma, size=d), child
                )
                next_pop.append(np.clip(child, 0.0, 1.0))
            population = np.stack(next_pop)
            fitness = np.array([memo(ind) for ind in population])

        best = int(np.argmin(fitness))
        history.append(float(fitness[best]))
        return MetaheuristicResult(
            x=memo.decode(population[best]),
            fun=float(fitness[best]),
            n_evaluations=memo.n_evaluations,
            history=history,
        )

    def _tournament(
        self, population: np.ndarray, fitness: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        idx = rng.choice(len(population), size=self.tournament_size, replace=False)
        return population[idx[np.argmin(fitness[idx])]]

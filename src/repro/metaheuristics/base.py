"""Shared machinery for population/trajectory metaheuristics.

All algorithms search the unit hypercube and decode through the
:class:`~repro.bayesopt.space.Space`, so integer and categorical dimensions
work out of the box. Objective values are memoized per decoded point, which
matters for integer spaces where many cube points collapse onto one
configuration.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from repro.bayesopt.space import Dimension, Space
from repro.errors import ValidationError

__all__ = ["MetaheuristicResult", "MetaheuristicOptimizer"]

Objective = Callable[[list[Any]], float]


@dataclass
class MetaheuristicResult:
    """Outcome of a metaheuristic run."""

    x: list[Any]
    fun: float
    n_evaluations: int
    #: best objective value after each iteration (convergence curve).
    history: list[float] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "x": self.x,
            "fun": self.fun,
            "n_evaluations": self.n_evaluations,
            "history": list(self.history),
        }


class MetaheuristicOptimizer(abc.ABC):
    """Base: unit-cube search with decode-and-memoize evaluation."""

    def __init__(self, *, seed: int | None = None) -> None:
        self.seed = seed

    @abc.abstractmethod
    def minimize(
        self,
        func: Objective,
        space: Space | Sequence[Dimension],
        *,
        n_iterations: int = 50,
    ) -> MetaheuristicResult:
        """Minimize ``func`` over ``space``."""

    # -- helpers shared by implementations -------------------------------------------

    @staticmethod
    def _as_space(space: Space | Sequence[Dimension]) -> Space:
        return space if isinstance(space, Space) else Space(space)

    @staticmethod
    def _check_iterations(n_iterations: int) -> int:
        if n_iterations < 1:
            raise ValidationError("n_iterations must be >= 1")
        return int(n_iterations)


class _Memo:
    """Decode-and-memoize objective wrapper over the unit cube."""

    def __init__(self, func: Objective, space: Space) -> None:
        self.func = func
        self.space = space
        self.cache: dict[tuple[Any, ...], float] = {}
        self.n_evaluations = 0

    def __call__(self, unit: np.ndarray) -> float:
        point = self.space.inverse_transform(np.clip(unit, 0.0, 1.0)[None, :])[0]
        key = tuple(point)
        if key not in self.cache:
            self.cache[key] = float(self.func(point))
            self.n_evaluations += 1
        return self.cache[key]

    def decode(self, unit: np.ndarray) -> list[Any]:
        return self.space.inverse_transform(np.clip(unit, 0.0, 1.0)[None, :])[0]

"""Metaheuristic optimizers for short-running applications (Sec. III-B2).

When a single point of the search space evaluates in minutes, the paper's
methodology admits evolutionary and swarm-intelligence algorithms instead
of (or alongside) surrogate models. Implemented here, all over the same
:class:`repro.bayesopt.space.Space` abstraction:

- :class:`GeneticAlgorithm` — tournament selection, uniform crossover,
  Gaussian mutation (Mirjalili 2019, paper's [32]).
- :class:`DifferentialEvolution` — DE/rand/1/bin (Das 2016, paper's [33]).
- :class:`SimulatedAnnealing` — Metropolis acceptance with geometric
  cooling (van Laarhoven & Aarts 1987, paper's [34]).
- :class:`ParticleSwarm` — global-best PSO with inertia damping
  (Du & Swamy 2016, paper's [35]).
- :class:`NSGA2` — non-dominated sorting GA for true multi-objective
  problems (the Fig. 4-right formulation), returning a Pareto front.
"""

from repro.metaheuristics.base import MetaheuristicOptimizer, MetaheuristicResult
from repro.metaheuristics.ga import GeneticAlgorithm
from repro.metaheuristics.de import DifferentialEvolution
from repro.metaheuristics.sa import SimulatedAnnealing
from repro.metaheuristics.pso import ParticleSwarm
from repro.metaheuristics.nsga2 import NSGA2, ParetoResult

__all__ = [
    "MetaheuristicOptimizer",
    "MetaheuristicResult",
    "GeneticAlgorithm",
    "DifferentialEvolution",
    "SimulatedAnnealing",
    "ParticleSwarm",
    "NSGA2",
    "ParetoResult",
]

"""NSGA-II: non-dominated sorting genetic algorithm (Deb et al. 2002).

The paper's Sec. II-B formalizes multi-objective problems (e.g. "minimize
communication costs *and* end-to-end latency", Fig. 4 right) but its
evaluation scalarizes to a single metric. NSGA-II is the standard
population approach for recovering the whole Pareto front instead; it
completes the metaheuristics toolbox for short-running applications.

Implements the canonical algorithm: fast non-dominated sorting, crowding
distance, binary tournament on (rank, crowding), simulated binary
crossover (SBX) and polynomial mutation — all over the unit cube with
decode-through-:class:`~repro.bayesopt.space.Space` like the other
metaheuristics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from repro.bayesopt.space import Dimension, Space
from repro.errors import ValidationError
from repro.metaheuristics.base import MetaheuristicOptimizer

__all__ = ["NSGA2", "ParetoResult"]

MultiObjective = Callable[[list[Any]], Sequence[float]]


@dataclass
class ParetoResult:
    """The final non-dominated set of an NSGA-II run."""

    #: decoded points on the front.
    points: list[list[Any]]
    #: objective vectors (minimization convention) aligned with ``points``.
    values: list[tuple[float, ...]]
    n_evaluations: int
    #: hypervolume-ish progress proxy: best scalarized sum per generation.
    history: list[float] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.points)

    def best_for(self, objective_index: int) -> tuple[list[Any], tuple[float, ...]]:
        """The front point minimizing one particular objective."""
        if not self.points:
            raise ValidationError("empty Pareto front")
        i = min(range(len(self.values)), key=lambda j: self.values[j][objective_index])
        return self.points[i], self.values[i]


def fast_non_dominated_sort(values: np.ndarray) -> list[np.ndarray]:
    """Deb's fast non-dominated sort; returns fronts as index arrays."""
    n = len(values)
    dominated_by: list[list[int]] = [[] for _ in range(n)]
    domination_count = np.zeros(n, dtype=int)
    for i in range(n):
        for j in range(i + 1, n):
            if _dominates(values[i], values[j]):
                dominated_by[i].append(j)
                domination_count[j] += 1
            elif _dominates(values[j], values[i]):
                dominated_by[j].append(i)
                domination_count[i] += 1
    fronts: list[np.ndarray] = []
    current = np.nonzero(domination_count == 0)[0]
    while len(current):
        fronts.append(current)
        nxt: list[int] = []
        for i in current:
            for j in dominated_by[i]:
                domination_count[j] -= 1
                if domination_count[j] == 0:
                    nxt.append(j)
        current = np.array(sorted(nxt), dtype=int)
    return fronts


def _dominates(a: np.ndarray, b: np.ndarray) -> bool:
    return bool(np.all(a <= b) and np.any(a < b))


def crowding_distance(values: np.ndarray) -> np.ndarray:
    """Crowding distance of each point within one front."""
    n, m = values.shape
    distance = np.zeros(n)
    if n <= 2:
        return np.full(n, np.inf)
    for k in range(m):
        order = np.argsort(values[:, k])
        distance[order[0]] = distance[order[-1]] = np.inf
        span = values[order[-1], k] - values[order[0], k]
        if span == 0:
            continue
        for idx in range(1, n - 1):
            distance[order[idx]] += (
                values[order[idx + 1], k] - values[order[idx - 1], k]
            ) / span
    return distance


class NSGA2(MetaheuristicOptimizer):
    """Multi-objective minimizer returning a Pareto front."""

    def __init__(
        self,
        population_size: int = 40,
        *,
        crossover_eta: float = 15.0,
        mutation_eta: float = 20.0,
        crossover_rate: float = 0.9,
        mutation_rate: float | None = None,
        seed: int | None = None,
    ) -> None:
        super().__init__(seed=seed)
        if population_size < 4 or population_size % 2:
            raise ValidationError("population_size must be an even integer >= 4")
        self.population_size = int(population_size)
        self.crossover_eta = float(crossover_eta)
        self.mutation_eta = float(mutation_eta)
        if not 0 <= crossover_rate <= 1:
            raise ValidationError("crossover_rate must be in [0, 1]")
        self.crossover_rate = float(crossover_rate)
        self.mutation_rate = mutation_rate

    # -- single-objective facade (MetaheuristicOptimizer contract) ----------------------

    def minimize(self, func, space, *, n_iterations: int = 50):
        """Single-objective adapter: wraps ``func`` as a 1-tuple objective."""
        from repro.metaheuristics.base import MetaheuristicResult

        result = self.minimize_multi(lambda x: (float(func(x)),), space, n_iterations=n_iterations)
        point, values = result.best_for(0)
        return MetaheuristicResult(
            x=point,
            fun=values[0],
            n_evaluations=result.n_evaluations,
            history=result.history,
        )

    # -- the real interface ----------------------------------------------------------------

    def minimize_multi(
        self,
        func: MultiObjective,
        space: Space | Sequence[Dimension],
        *,
        n_iterations: int = 50,
    ) -> ParetoResult:
        space = self._as_space(space)
        n_iterations = self._check_iterations(n_iterations)
        rng = np.random.default_rng(self.seed)
        d = len(space)
        mutation_rate = self.mutation_rate if self.mutation_rate is not None else 1.0 / d

        cache: dict[tuple[Any, ...], tuple[float, ...]] = {}
        evaluations = 0

        def evaluate(unit: np.ndarray) -> tuple[float, ...]:
            nonlocal evaluations
            point = space.inverse_transform(np.clip(unit, 0, 1)[None, :])[0]
            key = tuple(point)
            if key not in cache:
                values = tuple(float(v) for v in func(point))
                if not values:
                    raise ValidationError("objective returned no values")
                cache[key] = values
                evaluations += 1
            return cache[key]

        population = rng.random((self.population_size, d))
        values = np.array([evaluate(p) for p in population])
        history: list[float] = []

        for _ in range(n_iterations):
            offspring = self._make_offspring(population, values, rng, mutation_rate)
            off_values = np.array([evaluate(p) for p in offspring])
            merged = np.vstack([population, offspring])
            merged_values = np.vstack([values, off_values])
            population, values = self._environmental_selection(merged, merged_values)
            history.append(float(values.sum(axis=1).min()))

        fronts = fast_non_dominated_sort(values)
        front = fronts[0]
        # deduplicate decoded points on the front
        seen: set[tuple[Any, ...]] = set()
        points: list[list[Any]] = []
        front_values: list[tuple[float, ...]] = []
        for i in front:
            point = space.inverse_transform(population[i][None, :])[0]
            key = tuple(point)
            if key in seen:
                continue
            seen.add(key)
            points.append(point)
            front_values.append(tuple(float(v) for v in values[i]))
        return ParetoResult(
            points=points,
            values=front_values,
            n_evaluations=evaluations,
            history=history,
        )

    # -- variation operators ------------------------------------------------------------------

    def _make_offspring(
        self,
        population: np.ndarray,
        values: np.ndarray,
        rng: np.random.Generator,
        mutation_rate: float,
    ) -> np.ndarray:
        ranks = np.empty(len(population), dtype=int)
        crowding = np.empty(len(population))
        for rank, front in enumerate(fast_non_dominated_sort(values)):
            ranks[front] = rank
            crowding[front] = crowding_distance(values[front])

        def tournament() -> np.ndarray:
            i, j = rng.choice(len(population), size=2, replace=False)
            if ranks[i] < ranks[j] or (ranks[i] == ranks[j] and crowding[i] > crowding[j]):
                return population[i]
            return population[j]

        offspring = []
        while len(offspring) < self.population_size:
            p1, p2 = tournament(), tournament()
            if rng.random() < self.crossover_rate:
                c1, c2 = self._sbx(p1, p2, rng)
            else:
                c1, c2 = p1.copy(), p2.copy()
            offspring.append(self._polynomial_mutation(c1, rng, mutation_rate))
            if len(offspring) < self.population_size:
                offspring.append(self._polynomial_mutation(c2, rng, mutation_rate))
        return np.clip(np.stack(offspring), 0.0, 1.0)

    def _sbx(
        self, p1: np.ndarray, p2: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Simulated binary crossover in the unit cube."""
        u = rng.random(len(p1))
        beta = np.where(
            u <= 0.5,
            (2.0 * u) ** (1.0 / (self.crossover_eta + 1.0)),
            (1.0 / (2.0 * (1.0 - u))) ** (1.0 / (self.crossover_eta + 1.0)),
        )
        c1 = 0.5 * ((1 + beta) * p1 + (1 - beta) * p2)
        c2 = 0.5 * ((1 - beta) * p1 + (1 + beta) * p2)
        return c1, c2

    def _polynomial_mutation(
        self, child: np.ndarray, rng: np.random.Generator, rate: float
    ) -> np.ndarray:
        mask = rng.random(len(child)) < rate
        if not mask.any():
            return child
        u = rng.random(len(child))
        delta = np.where(
            u < 0.5,
            (2.0 * u) ** (1.0 / (self.mutation_eta + 1.0)) - 1.0,
            1.0 - (2.0 * (1.0 - u)) ** (1.0 / (self.mutation_eta + 1.0)),
        )
        out = child.copy()
        out[mask] = np.clip(child[mask] + delta[mask], 0.0, 1.0)
        return out

    def _environmental_selection(
        self, merged: np.ndarray, merged_values: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Fill the next generation front by front, crowding-truncated."""
        selected: list[int] = []
        for front in fast_non_dominated_sort(merged_values):
            if len(selected) + len(front) <= self.population_size:
                selected.extend(front.tolist())
            else:
                remaining = self.population_size - len(selected)
                crowding = crowding_distance(merged_values[front])
                order = np.argsort(crowding)[::-1]
                selected.extend(front[order[:remaining]].tolist())
                break
        index = np.array(selected, dtype=int)
        return merged[index], merged_values[index]

"""Global-best particle swarm optimization with inertia damping."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.bayesopt.space import Dimension, Space
from repro.errors import ValidationError
from repro.metaheuristics.base import (
    MetaheuristicOptimizer,
    MetaheuristicResult,
    Objective,
    _Memo,
)

__all__ = ["ParticleSwarm"]


class ParticleSwarm(MetaheuristicOptimizer):
    """gbest-PSO: ``v ← ωv + c1·r1·(pbest − x) + c2·r2·(gbest − x)``.

    Velocities are clamped to ``velocity_max`` and the inertia ω decays
    linearly from ``inertia`` to ``inertia_final`` over the run.
    """

    def __init__(
        self,
        swarm_size: int = 25,
        *,
        inertia: float = 0.9,
        inertia_final: float = 0.4,
        cognitive: float = 1.5,
        social: float = 1.5,
        velocity_max: float = 0.3,
        seed: int | None = None,
    ) -> None:
        super().__init__(seed=seed)
        if swarm_size < 2:
            raise ValidationError("swarm_size must be >= 2")
        if velocity_max <= 0:
            raise ValidationError("velocity_max must be > 0")
        self.swarm_size = int(swarm_size)
        self.inertia = float(inertia)
        self.inertia_final = float(inertia_final)
        self.cognitive = float(cognitive)
        self.social = float(social)
        self.velocity_max = float(velocity_max)

    def minimize(
        self,
        func: Objective,
        space: Space | Sequence[Dimension],
        *,
        n_iterations: int = 50,
    ) -> MetaheuristicResult:
        space = self._as_space(space)
        n_iterations = self._check_iterations(n_iterations)
        rng = np.random.default_rng(self.seed)
        memo = _Memo(func, space)
        d = len(space)
        n = self.swarm_size

        position = rng.random((n, d))
        velocity = rng.uniform(-self.velocity_max, self.velocity_max, size=(n, d))
        fitness = np.array([memo(p) for p in position])
        pbest = position.copy()
        pbest_f = fitness.copy()
        g = int(np.argmin(fitness))
        gbest = position[g].copy()
        gbest_f = float(fitness[g])
        history: list[float] = []

        for it in range(n_iterations):
            frac = it / max(1, n_iterations - 1)
            omega = self.inertia + (self.inertia_final - self.inertia) * frac
            r1 = rng.random((n, d))
            r2 = rng.random((n, d))
            velocity = (
                omega * velocity
                + self.cognitive * r1 * (pbest - position)
                + self.social * r2 * (gbest - position)
            )
            velocity = np.clip(velocity, -self.velocity_max, self.velocity_max)
            position = np.clip(position + velocity, 0.0, 1.0)
            fitness = np.array([memo(p) for p in position])
            improved = fitness < pbest_f
            pbest[improved] = position[improved]
            pbest_f[improved] = fitness[improved]
            g = int(np.argmin(pbest_f))
            if pbest_f[g] < gbest_f:
                gbest = pbest[g].copy()
                gbest_f = float(pbest_f[g])
            history.append(gbest_f)

        return MetaheuristicResult(
            x=memo.decode(gbest),
            fun=gbest_f,
            n_evaluations=memo.n_evaluations,
            history=history,
        )

"""Simulated annealing with Metropolis acceptance and geometric cooling."""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.bayesopt.space import Dimension, Space
from repro.errors import ValidationError
from repro.metaheuristics.base import (
    MetaheuristicOptimizer,
    MetaheuristicResult,
    Objective,
    _Memo,
)

__all__ = ["SimulatedAnnealing"]


class SimulatedAnnealing(MetaheuristicOptimizer):
    """Single-trajectory SA.

    Per iteration, a Gaussian step (scaled by the current temperature, so
    moves shrink as the system cools) is accepted if it improves, or with
    probability ``exp(−Δ/T)`` otherwise; the temperature follows
    ``T ← cooling_rate · T``.
    """

    def __init__(
        self,
        *,
        initial_temperature: float = 1.0,
        cooling_rate: float = 0.95,
        step_scale: float = 0.25,
        steps_per_temperature: int = 10,
        seed: int | None = None,
    ) -> None:
        super().__init__(seed=seed)
        if initial_temperature <= 0:
            raise ValidationError("initial_temperature must be > 0")
        if not 0 < cooling_rate < 1:
            raise ValidationError("cooling_rate must be in (0, 1)")
        if step_scale <= 0:
            raise ValidationError("step_scale must be > 0")
        if steps_per_temperature < 1:
            raise ValidationError("steps_per_temperature must be >= 1")
        self.initial_temperature = float(initial_temperature)
        self.cooling_rate = float(cooling_rate)
        self.step_scale = float(step_scale)
        self.steps_per_temperature = int(steps_per_temperature)

    def minimize(
        self,
        func: Objective,
        space: Space | Sequence[Dimension],
        *,
        n_iterations: int = 50,
    ) -> MetaheuristicResult:
        space = self._as_space(space)
        n_iterations = self._check_iterations(n_iterations)
        rng = np.random.default_rng(self.seed)
        memo = _Memo(func, space)
        d = len(space)

        current = rng.random(d)
        f_current = memo(current)
        best = current.copy()
        f_best = f_current
        temperature = self.initial_temperature
        history: list[float] = []

        for _ in range(n_iterations):
            for _ in range(self.steps_per_temperature):
                scale = self.step_scale * max(temperature, 0.05)
                candidate = np.clip(current + rng.normal(0.0, scale, size=d), 0.0, 1.0)
                f_candidate = memo(candidate)
                delta = f_candidate - f_current
                if delta <= 0 or rng.random() < math.exp(-delta / max(temperature, 1e-12)):
                    current, f_current = candidate, f_candidate
                    if f_current < f_best:
                        best, f_best = current.copy(), f_current
            history.append(float(f_best))
            temperature *= self.cooling_rate

        return MetaheuristicResult(
            x=memo.decode(best),
            fun=float(f_best),
            n_evaluations=memo.n_evaluations,
            history=history,
        )

"""On-disk experiment archives (the ``prepare()``/``finalize()`` backend)."""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.errors import ValidationError
from repro.experiments.manifest import ExperimentManifest
from repro.utils.serialization import dump_json, load_json

__all__ = ["EvaluationRecord", "ExperimentArchive"]


@dataclass
class EvaluationRecord:
    """One model evaluation: configuration in, metrics out, plus context."""

    index: int
    configuration: dict[str, Any]
    metrics: dict[str, Any] = field(default_factory=dict)
    #: deployment manifest captured by ``launch()`` (nodes, constraints).
    deployment: list[dict[str, Any]] = field(default_factory=list)
    seed: int | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "configuration": self.configuration,
            "metrics": self.metrics,
            "deployment": self.deployment,
            "seed": self.seed,
        }


class ExperimentArchive:
    """Directory-per-evaluation archive with a manifest and a summary."""

    def __init__(self, root: str | Path, manifest: ExperimentManifest) -> None:
        self.root = Path(root) / manifest.name
        self.manifest = manifest
        self._eval_counter = 0
        self.root.mkdir(parents=True, exist_ok=True)
        dump_json(manifest.to_dict(), self.root / "manifest.json")

    # -- per-evaluation directories ("prepare") --------------------------------------

    def new_evaluation_dir(self) -> Path:
        """Create ``optimization-<k>/`` for the next evaluation."""
        self._eval_counter += 1
        path = self.root / f"optimization-{self._eval_counter}"
        path.mkdir(parents=True, exist_ok=False)
        return path

    @property
    def evaluation_count(self) -> int:
        return self._eval_counter

    # -- records ("finalize") ----------------------------------------------------------

    def store_evaluation(self, record: EvaluationRecord, directory: Path | None = None) -> Path:
        """Persist one evaluation record into its directory."""
        if directory is None:
            directory = self.root / f"optimization-{record.index}"
            if not directory.exists():
                raise ValidationError(
                    f"evaluation directory {directory} does not exist; "
                    "call new_evaluation_dir() first"
                )
        return dump_json(record.to_dict(), directory / "evaluation.json")

    def store_summary(self, summary: dict[str, Any]) -> Path:
        """Persist the Phase III summary at the archive root."""
        return dump_json(summary, self.root / "summary.json")

    # -- campaign checkpoints (fault-tolerant resume) ----------------------------------

    def store_checkpoint(
        self,
        records: list[dict[str, Any]],
        watchdog_state: dict[str, Any] | None = None,
        searcher_state: dict[str, Any] | None = None,
    ) -> Path:
        """Persist the finished-trial state for ``--resume``.

        The full list is rewritten each time (trial records are small JSON
        dicts) through an atomic temp-file + ``os.replace`` write, so a
        crash — even a SIGKILL — mid-checkpoint leaves either the previous
        complete state or the new one on disk, never a truncated JSON.
        When a live watchdog is armed, its control state (fired alert keys,
        counts) rides along under ``"watchdog"`` so a resumed campaign does
        not re-fire alerts the crashed one already raised. Likewise the
        searcher's internal state (surrogate refit cadence, hedge gains)
        rides along under ``"searcher"`` so a resumed campaign neither
        refit-storms nor serves a stale model.
        """
        payload: dict[str, Any] = {"trials": records}
        if watchdog_state is not None:
            payload["watchdog"] = watchdog_state
        if searcher_state is not None:
            payload["searcher"] = searcher_state
        return dump_json(payload, self.root / "checkpoint.json", atomic=True)

    def _read_checkpoint(self) -> dict[str, Any] | None:
        """The checkpoint document, or ``None`` when missing or unreadable.

        A corrupt/truncated ``checkpoint.json`` (written by a pre-atomic
        version, or mangled by the filesystem) must degrade a resume, not
        crash it — the caller warns and falls back to the trial ledger.
        """
        path = self.root / "checkpoint.json"
        if not path.exists():
            return None
        try:
            data = load_json(path)
        except (json.JSONDecodeError, UnicodeDecodeError, OSError) as exc:
            warnings.warn(
                f"checkpoint {path} is unreadable ({exc}); resuming from the "
                "trial ledger instead",
                RuntimeWarning,
                stacklevel=3,
            )
            return None
        if not isinstance(data, dict):
            warnings.warn(
                f"checkpoint {path} holds {type(data).__name__}, expected an "
                "object; resuming from the trial ledger instead",
                RuntimeWarning,
                stacklevel=3,
            )
            return None
        return data

    def load_checkpoint(self) -> list[dict[str, Any]]:
        """Finished-trial records from the last checkpoint (empty if none).

        When the checkpoint is corrupt, falls back to the per-trial JSONL
        ledger the runner appends next to the artifacts (one ``to_dict``
        line per finished trial) — a cold start only when neither exists.
        """
        data = self._read_checkpoint()
        if data is not None:
            return list(data.get("trials", []))
        if (self.root / "checkpoint.json").exists():
            return self._ledgered_trials()
        return []

    def _ledgered_trials(self) -> list[dict[str, Any]]:
        """Recover finished-trial records from ``<name>.jsonl`` (best effort).

        Torn lines are skipped; duplicate trial ids keep the latest record.
        """
        ledger = self.root / f"{self.manifest.name}.jsonl"
        if not ledger.exists():
            return []
        records: dict[str, dict[str, Any]] = {}
        for line in ledger.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail line from a crashed writer
            if isinstance(record, dict) and "trial_id" in record and "config" in record:
                records[str(record["trial_id"])] = record
        return list(records.values())

    def load_watchdog_state(self) -> dict[str, Any] | None:
        """The checkpointed watchdog control state, if any.

        Corrupt checkpoints yield ``None`` (a cold watchdog start) rather
        than raising — alert dedupe state is not worth failing a resume.
        """
        data = self._read_checkpoint()
        if data is None:
            return None
        state = data.get("watchdog")
        return dict(state) if isinstance(state, dict) else None

    def load_searcher_state(self) -> dict[str, Any] | None:
        """The checkpointed searcher state (refit cadence, hedge gains), if any.

        Corrupt or pre-upgrade checkpoints yield ``None`` — the searcher
        then recomputes its cadence from the replayed tells alone.
        """
        data = self._read_checkpoint()
        if data is None:
            return None
        state = data.get("searcher")
        return dict(state) if isinstance(state, dict) else None

    # -- packing ("E2Clab provides an archive of the generated data") ------------------

    def pack(self, destination: str | Path | None = None) -> Path:
        """Bundle the whole experiment directory into a ``.tar.gz``.

        This is the artifact the paper shares for reproducibility (its
        Sec. V-A / reference [45]); hand the file to another researcher and
        ``ExperimentArchive.unpack`` restores the exact directory tree.
        """
        import tarfile

        destination = (
            Path(destination)
            if destination is not None
            else self.root.parent / f"{self.root.name}.tar.gz"
        )
        destination.parent.mkdir(parents=True, exist_ok=True)
        with tarfile.open(destination, "w:gz") as tar:
            tar.add(self.root, arcname=self.root.name)
        return destination

    @classmethod
    def unpack(cls, archive_path: str | Path, destination: str | Path) -> "ExperimentArchive":
        """Restore a packed experiment and open it."""
        import tarfile

        destination = Path(destination)
        destination.mkdir(parents=True, exist_ok=True)
        with tarfile.open(archive_path, "r:gz") as tar:
            tar.extractall(destination)  # noqa: S202 - trusted local artifact
            names = {member.name.split("/")[0] for member in tar.getmembers()}
        if len(names) != 1:
            raise ValidationError(f"archive holds {len(names)} top-level entries, expected 1")
        return cls.open(destination, names.pop())

    # -- reading back ---------------------------------------------------------------------

    def load_summary(self) -> dict[str, Any]:
        return load_json(self.root / "summary.json")

    def load_evaluations(self) -> list[dict[str, Any]]:
        """All evaluation records, in index order."""
        records = []
        for path in sorted(
            self.root.glob("optimization-*/evaluation.json"),
            key=lambda p: int(p.parent.name.split("-")[1]),
        ):
            records.append(load_json(path))
        return records

    @classmethod
    def open(cls, root: str | Path, name: str) -> "ExperimentArchive":
        """Re-open an existing archive (e.g. for ``--repeat`` replays)."""
        path = Path(root) / name
        if not (path / "manifest.json").exists():
            raise ValidationError(f"no archive manifest under {path}")
        data = load_json(path / "manifest.json")
        manifest = ExperimentManifest(
            name=data["name"],
            description=data.get("description", ""),
            seed=data.get("seed"),
            parameters=data.get("parameters", {}),
            created_at=data.get("created_at", 0.0),
            environment=data.get("environment", {}),
        )
        archive = cls.__new__(cls)
        archive.root = path
        archive.manifest = manifest
        existing = [
            int(p.name.split("-")[1]) for p in path.glob("optimization-*") if p.is_dir()
        ]
        archive._eval_counter = max(existing, default=0)
        return archive

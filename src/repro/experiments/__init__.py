"""Experiment management: directories, manifests, provenance archives.

Phase III of the methodology ("Finalization") requires a *summary of
computations*: the optimization problem definition, the sampling method,
the search algorithm and hyperparameters, every point evaluated, and the
best configuration found — enough for an independent researcher to
reproduce the result. This package owns that on-disk structure:

    <root>/<experiment-name>/
        manifest.json             # experiment-level provenance
        optimization-1/           # one directory per model evaluation
            evaluation.json       # configuration, deployment, metrics
        optimization-2/
        ...
        summary.json              # the Phase III summary

matching the per-evaluation directories the paper's ``prepare()`` creates.
"""

from repro.experiments.manifest import ExperimentManifest, environment_info
from repro.experiments.archive import ExperimentArchive, EvaluationRecord

__all__ = [
    "ExperimentManifest",
    "environment_info",
    "ExperimentArchive",
    "EvaluationRecord",
]

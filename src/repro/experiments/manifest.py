"""Experiment manifests: who/what/how, captured once per experiment."""

from __future__ import annotations

import platform
import sys
import time
from dataclasses import dataclass, field
from typing import Any

from repro.version import __version__

__all__ = ["environment_info", "ExperimentManifest"]


def environment_info() -> dict[str, str]:
    """Software environment snapshot (Phase III provenance)."""
    import networkx
    import numpy
    import scipy

    return {
        "repro": __version__,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "numpy": numpy.__version__,
        "scipy": scipy.__version__,
        "networkx": networkx.__version__,
    }


@dataclass
class ExperimentManifest:
    """Experiment-level provenance record."""

    name: str
    description: str = ""
    seed: int | None = None
    #: free-form experiment parameters (workload, durations, bounds, ...).
    parameters: dict[str, Any] = field(default_factory=dict)
    created_at: float = field(default_factory=time.time)
    environment: dict[str, str] = field(default_factory=environment_info)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "description": self.description,
            "seed": self.seed,
            "parameters": self.parameters,
            "created_at": self.created_at,
            "environment": dict(self.environment),
        }

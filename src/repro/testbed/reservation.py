"""Reservations: the testbed analogue of Grid'5000 ``oarsub`` jobs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.errors import ReservationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.testbed.node import Node
    from repro.testbed.site import Testbed

__all__ = ["ResourceRequest", "Reservation"]


@dataclass(frozen=True)
class ResourceRequest:
    """How many nodes of which cluster an experiment wants.

    ``require_gpu`` lets a request assert the cluster's hardware (the paper
    pins the Identification Engine on *chifflot* because it needs a GPU).
    """

    cluster: str
    nodes: int
    require_gpu: bool = False

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ReservationError(f"must request >= 1 node, got {self.nodes}")


@dataclass
class Reservation:
    """A granted set of nodes, released as a unit (context manager)."""

    job_id: str
    testbed: "Testbed"
    nodes: dict[str, list["Node"]] = field(default_factory=dict)
    released: bool = False
    #: manual-lifecycle ``reservation:<job_id>`` span (set by Testbed.reserve
    #: when tracing is on); ended at release so the campaign timeline shows
    #: how long the nodes were held.
    _span: Any = field(default=None, repr=False, compare=False)
    _tracer: Any = field(default=None, repr=False, compare=False)

    @property
    def node_count(self) -> int:
        return sum(len(ns) for ns in self.nodes.values())

    def nodes_of(self, cluster: str) -> list["Node"]:
        """The reserved nodes belonging to ``cluster``."""
        try:
            return self.nodes[cluster]
        except KeyError:
            raise ReservationError(
                f"reservation {self.job_id} holds no nodes of cluster {cluster!r}"
            ) from None

    def all_nodes(self) -> list["Node"]:
        return [n for ns in self.nodes.values() for n in ns]

    def release(self) -> None:
        """Return all nodes to the testbed (idempotent)."""
        if self.released:
            return
        for ns in self.nodes.values():
            for node in ns:
                node.release()
        self.released = True
        if self._span is not None and self._tracer is not None:
            self._tracer.end_span(self._span)
            self._span = None
        from repro.observability.metrics import get_registry

        registry = get_registry()
        if registry.enabled:
            gauge = registry.gauge(
                "testbed_nodes_reserved", "nodes currently held by reservations", ("cluster",)
            )
            for cluster_name, nodes in self.nodes.items():
                gauge.dec(len(nodes), cluster=cluster_name)

    def __enter__(self) -> "Reservation":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        per = ", ".join(f"{c}:{len(ns)}" for c, ns in self.nodes.items())
        return f"<Reservation {self.job_id} [{per}]{' released' if self.released else ''}>"

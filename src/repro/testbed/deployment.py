"""Deployments: mapping services to reserved testbed nodes.

A :class:`Deployment` records which service instance landed on which node
with which resource share — the information E2Clab captures "for
reproducibility" in the paper's ``launch()`` step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.errors import DeploymentError

if TYPE_CHECKING:  # pragma: no cover
    from repro.testbed.node import Node
    from repro.testbed.reservation import Reservation

__all__ = ["Placement", "Deployment"]


@dataclass(frozen=True)
class Placement:
    """One service instance bound to one node."""

    service_name: str
    node_name: str
    cores: int
    memory_gb: float
    gpus: int
    extra: tuple[tuple[str, Any], ...] = ()

    def to_dict(self) -> dict[str, Any]:
        return {
            "service": self.service_name,
            "node": self.node_name,
            "cores": self.cores,
            "memory_gb": self.memory_gb,
            "gpus": self.gpus,
            **dict(self.extra),
        }


@dataclass
class Deployment:
    """A set of placements against one reservation."""

    reservation: "Reservation"
    placements: list[Placement] = field(default_factory=list)
    _nodes_by_name: dict[str, "Node"] = field(default_factory=dict)

    def place(
        self,
        service_name: str,
        node: "Node",
        *,
        cores: int = 0,
        memory_gb: float = 0.0,
        gpus: int = 0,
        **extra: Any,
    ) -> Placement:
        """Bind a service instance to ``node``, claiming resources on it."""
        if node.reserved_by != self.reservation.job_id:
            raise DeploymentError(
                f"node {node.name} is not part of reservation {self.reservation.job_id}"
            )
        node.allocate(cores=cores, memory_gb=memory_gb, gpus=gpus)
        placement = Placement(
            service_name=service_name,
            node_name=node.name,
            cores=cores,
            memory_gb=memory_gb,
            gpus=gpus,
            extra=tuple(sorted(extra.items())),
        )
        self.placements.append(placement)
        self._nodes_by_name[node.name] = node
        return placement

    def placements_of(self, service_name: str) -> list[Placement]:
        return [p for p in self.placements if p.service_name == service_name]

    def signature(self) -> tuple[tuple[str, str, int, float, int], ...]:
        """Structural identity: which services sit where with which claim.

        Deliberately excludes each placement's ``extra`` parameters (thread
        pools, client counts): two deployments with the same signature can
        be morphed into one another by :meth:`reconfigure` alone, without
        re-placing anything — the paper's reconfiguration phase.
        """
        return tuple(
            sorted(
                (p.service_name, p.node_name, p.cores, p.memory_gb, p.gpus)
                for p in self.placements
            )
        )

    def reconfigure(self, service_name: str, **extra: Any) -> list[Placement]:
        """Update a deployed service's tunable parameters in place.

        Merges ``extra`` into every placement of ``service_name`` without
        touching node allocations — the warm path between trials when the
        placement signature is unchanged. Returns the updated placements.
        """
        updated: list[Placement] = []
        for i, placement in enumerate(self.placements):
            if placement.service_name != service_name:
                continue
            merged = dict(placement.extra)
            merged.update(extra)
            replacement = Placement(
                service_name=placement.service_name,
                node_name=placement.node_name,
                cores=placement.cores,
                memory_gb=placement.memory_gb,
                gpus=placement.gpus,
                extra=tuple(sorted(merged.items())),
            )
            self.placements[i] = replacement
            updated.append(replacement)
        if not updated:
            raise DeploymentError(
                f"no placements of service {service_name!r} to reconfigure"
            )
        return updated

    def node_of(self, placement: Placement) -> "Node":
        return self._nodes_by_name[placement.node_name]

    def teardown(self) -> None:
        """Free all claimed resources (not the reservation itself)."""
        for placement in self.placements:
            node = self._nodes_by_name[placement.node_name]
            node.free(cores=placement.cores, memory_gb=placement.memory_gb, gpus=placement.gpus)
        self.placements.clear()

    def manifest(self) -> list[dict[str, Any]]:
        """JSON-able record of the deployment (provenance capture)."""
        return [p.to_dict() for p in self.placements]

    def __len__(self) -> int:
        return len(self.placements)

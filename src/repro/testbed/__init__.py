"""A Grid'5000-like testbed simulator.

The paper deploys Pl@ntNet on 42 nodes of Grid'5000 (clusters *chifflot*,
*chiclet*, *chetemi*, *chifflet* and *gros*). This subpackage provides the
software equivalent this reproduction runs against:

- :mod:`repro.testbed.hardware` — hardware specification dataclasses.
- :mod:`repro.testbed.catalog` — a catalog mirroring the five clusters used
  in the paper (specs approximated from the Grid'5000 reference API).
- :mod:`repro.testbed.cluster` / :mod:`repro.testbed.site` — runtime nodes,
  clusters, sites and the :class:`Testbed` facade with reservations.
- :mod:`repro.testbed.network` — network topology and emulation (latency /
  bandwidth constraints, the E2Clab "network emulation" feature).
- :mod:`repro.testbed.deployment` — mapping services onto reserved nodes.
"""

from repro.testbed.hardware import CPUSpec, GPUSpec, NICSpec, NodeSpec
from repro.testbed.node import Node
from repro.testbed.cluster import Cluster
from repro.testbed.site import Site, Testbed
from repro.testbed.reservation import Reservation, ResourceRequest
from repro.testbed.catalog import grid5000, CLUSTER_SPECS
from repro.testbed.network import Link, NetworkEmulator, NetworkPath
from repro.testbed.deployment import Deployment, Placement

__all__ = [
    "CPUSpec",
    "GPUSpec",
    "NICSpec",
    "NodeSpec",
    "Node",
    "Cluster",
    "Site",
    "Testbed",
    "Reservation",
    "ResourceRequest",
    "grid5000",
    "CLUSTER_SPECS",
    "Link",
    "NetworkEmulator",
    "NetworkPath",
    "Deployment",
    "Placement",
]

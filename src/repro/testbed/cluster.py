"""Homogeneous clusters of simulated nodes."""

from __future__ import annotations

from typing import Iterator

from repro.errors import ValidationError
from repro.testbed.hardware import NodeSpec
from repro.testbed.node import Node

__all__ = ["Cluster"]


class Cluster:
    """A named, homogeneous set of nodes inside a site (e.g. ``chifflot``)."""

    def __init__(self, name: str, site_name: str, spec: NodeSpec, node_count: int) -> None:
        if node_count < 1:
            raise ValidationError(f"cluster {name!r} needs >= 1 node, got {node_count}")
        self.name = name
        self.site_name = site_name
        self.spec = spec
        # Grid'5000 numbers nodes from 1.
        self.nodes = [Node(self, i) for i in range(1, node_count + 1)]

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self) -> Iterator[Node]:
        return iter(self.nodes)

    def __getitem__(self, index: int) -> Node:
        return self.nodes[index]

    @property
    def has_gpu(self) -> bool:
        return self.spec.gpu_count > 0

    def free_nodes(self) -> list[Node]:
        """Nodes neither reserved nor failed, in index order (deterministic)."""
        return [n for n in self.nodes if not n.reserved and not n.failed]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        free = len(self.free_nodes())
        return f"<Cluster {self.name}@{self.site_name} nodes={len(self.nodes)} free={free}>"

"""Catalog of the Grid'5000 clusters used in the paper.

The paper reserves 42 nodes across five clusters. The engine runs on
*chifflot* (the only V100 cluster, as stated in Sec. IV) and clients run on
*chiclet*, *chetemi*, *chifflet* and *gros*. Specs below approximate the
Grid'5000 reference API; the *chifflot* line reproduces the paper's own
description verbatim (Dell PowerEdge R740, Tesla V100-PCIE-32GB, Xeon Gold
6126 2×12 cores, 192 GB RAM, 480 GB SSD, 25 Gbps Ethernet).
"""

from __future__ import annotations

from repro.testbed.hardware import CPUSpec, GPUSpec, NICSpec, NodeSpec
from repro.testbed.cluster import Cluster
from repro.testbed.network import Link
from repro.testbed.site import Site, Testbed

__all__ = ["CLUSTER_SPECS", "CLUSTER_SITES", "CLUSTER_NODE_COUNTS", "grid5000"]


CLUSTER_SPECS: dict[str, NodeSpec] = {
    # Lille — the paper's engine cluster.
    "chifflot": NodeSpec(
        model="Dell PowerEdge R740",
        cpus=(
            CPUSpec("Intel Xeon Gold 6126", cores=12, threads_per_core=2, base_clock_ghz=2.6),
        ) * 2,
        memory_gb=192.0,
        storage_gb=480.0,
        nic=NICSpec("25Gbps Ethernet", rate_gbps=25.0),
        gpus=(GPUSpec("Nvidia Tesla V100-PCIE-32GB", memory_gb=32.0, max_power_w=250.0),) * 2,
    ),
    "chiclet": NodeSpec(
        model="Dell PowerEdge R7425",
        cpus=(CPUSpec("AMD EPYC 7301", cores=16, threads_per_core=2, base_clock_ghz=2.2),) * 2,
        memory_gb=128.0,
        storage_gb=480.0,
        nic=NICSpec("25Gbps Ethernet", rate_gbps=25.0),
    ),
    "chetemi": NodeSpec(
        model="Dell PowerEdge R630",
        cpus=(CPUSpec("Intel Xeon E5-2630 v4", cores=10, threads_per_core=2, base_clock_ghz=2.2),) * 2,
        memory_gb=256.0,
        storage_gb=600.0,
        nic=NICSpec("10Gbps Ethernet", rate_gbps=10.0),
    ),
    "chifflet": NodeSpec(
        model="Dell PowerEdge R730",
        cpus=(CPUSpec("Intel Xeon E5-2680 v4", cores=14, threads_per_core=2, base_clock_ghz=2.4),) * 2,
        memory_gb=768.0,
        storage_gb=600.0,
        nic=NICSpec("10Gbps Ethernet", rate_gbps=10.0),
        gpus=(GPUSpec("Nvidia GTX 1080 Ti", memory_gb=11.0, max_power_w=250.0),) * 2,
    ),
    # Nancy.
    "gros": NodeSpec(
        model="Dell PowerEdge R640",
        cpus=(CPUSpec("Intel Xeon Gold 5220", cores=18, threads_per_core=2, base_clock_ghz=2.2),),
        memory_gb=96.0,
        storage_gb=480.0,
        nic=NICSpec("25Gbps Ethernet", rate_gbps=25.0),
    ),
}

CLUSTER_SITES: dict[str, str] = {
    "chifflot": "lille",
    "chiclet": "lille",
    "chetemi": "lille",
    "chifflet": "lille",
    "gros": "nancy",
}

#: Real cluster sizes are larger; these defaults comfortably cover the
#: paper's 42-node reservation while keeping the simulated testbed small.
CLUSTER_NODE_COUNTS: dict[str, int] = {
    "chifflot": 8,
    "chiclet": 8,
    "chetemi": 15,
    "chifflet": 8,
    "gros": 124,
}


def grid5000(node_counts: dict[str, int] | None = None) -> Testbed:
    """Build the simulated Grid'5000 testbed used by the paper's experiments.

    The paper configures the client↔engine network at 10 Gb; the default
    topology therefore links every client cluster endpoint to ``chifflot``
    at 10 Gbps with sub-millisecond testbed latency, and inter-site links
    (Lille↔Nancy on the RENATER backbone) at a few milliseconds.
    """
    counts = dict(CLUSTER_NODE_COUNTS)
    if node_counts:
        counts.update(node_counts)

    sites: dict[str, Site] = {}
    for cluster_name, spec in CLUSTER_SPECS.items():
        site_name = CLUSTER_SITES[cluster_name]
        site = sites.setdefault(site_name, Site(site_name))
        site.add_cluster(Cluster(cluster_name, site_name, spec, counts[cluster_name]))

    testbed = Testbed("grid5000", sites=sites.values())

    # Cluster-level endpoints; the paper sets 10 Gb client→engine links.
    net = testbed.network
    for cluster_name in CLUSTER_SPECS:
        net.add_site(cluster_name)
    for client_cluster in ("chiclet", "chetemi", "chifflet", "gros"):
        latency = 0.1 if CLUSTER_SITES[client_cluster] == "lille" else 5.0
        net.add_link(
            Link(client_cluster, "chifflot", latency_ms=latency, bandwidth_gbps=10.0)
        )
    net.add_link(Link("lille", "nancy", latency_ms=5.0, bandwidth_gbps=100.0))
    return testbed

"""Sites and the :class:`Testbed` facade (reservation front-end)."""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator

from repro.errors import ReservationError, ValidationError
from repro.testbed.cluster import Cluster
from repro.testbed.network import NetworkEmulator
from repro.testbed.reservation import Reservation, ResourceRequest

__all__ = ["Site", "Testbed"]


class Site:
    """A geographic site grouping clusters (e.g. Lille, Nancy)."""

    def __init__(self, name: str, clusters: Iterable[Cluster] = ()) -> None:
        self.name = name
        self.clusters: dict[str, Cluster] = {}
        for cluster in clusters:
            self.add_cluster(cluster)

    def add_cluster(self, cluster: Cluster) -> None:
        if cluster.name in self.clusters:
            raise ValidationError(f"duplicate cluster {cluster.name!r} in site {self.name!r}")
        if cluster.site_name != self.name:
            raise ValidationError(
                f"cluster {cluster.name!r} belongs to site {cluster.site_name!r}, "
                f"not {self.name!r}"
            )
        self.clusters[cluster.name] = cluster

    def __iter__(self) -> Iterator[Cluster]:
        return iter(self.clusters.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Site {self.name} clusters={sorted(self.clusters)}>"


class Testbed:
    """The whole simulated testbed: sites, clusters, network, reservations.

    (``__test__ = False`` prevents pytest from collecting this class when
    it is imported into test modules.)

    The reservation API mirrors what E2Clab needs from Grid'5000: ask for N
    nodes of given clusters, get back a :class:`Reservation` whose nodes are
    yours until released.
    """

    __test__ = False

    def __init__(self, name: str, sites: Iterable[Site] = ()) -> None:
        self.name = name
        self.sites: dict[str, Site] = {}
        self.network = NetworkEmulator()
        self._job_counter = itertools.count(1)
        for site in sites:
            self.add_site(site)

    def add_site(self, site: Site) -> None:
        if site.name in self.sites:
            raise ValidationError(f"duplicate site {site.name!r}")
        self.sites[site.name] = site
        self.network.add_site(site.name)

    # -- lookup ---------------------------------------------------------------

    def cluster(self, name: str) -> Cluster:
        for site in self.sites.values():
            if name in site.clusters:
                return site.clusters[name]
        raise ReservationError(f"unknown cluster {name!r} (have: {sorted(self.cluster_names())})")

    def cluster_names(self) -> list[str]:
        return [c for site in self.sites.values() for c in site.clusters]

    @property
    def total_nodes(self) -> int:
        return sum(len(c) for site in self.sites.values() for c in site)

    def free_node_count(self, cluster: str | None = None) -> int:
        if cluster is not None:
            return len(self.cluster(cluster).free_nodes())
        return sum(len(self.cluster(c).free_nodes()) for c in self.cluster_names())

    # -- reservations ---------------------------------------------------------

    def reserve(self, requests: Iterable[ResourceRequest], job_name: str = "job") -> Reservation:
        """Atomically reserve nodes for all ``requests``.

        Either every request is satisfiable (and all nodes are reserved) or
        a :class:`~repro.errors.ReservationError` is raised and nothing is
        reserved — matching batch-scheduler semantics.
        """
        requests = list(requests)
        if not requests:
            raise ReservationError("empty reservation request")
        job_id = f"{job_name}.{next(self._job_counter)}"

        # Feasibility check first (atomicity).
        plan: list[tuple[ResourceRequest, list]] = []
        for req in requests:
            cluster = self.cluster(req.cluster)
            if req.require_gpu and not cluster.has_gpu:
                raise ReservationError(
                    f"request needs GPUs but cluster {req.cluster!r} has none"
                )
            free = cluster.free_nodes()
            if len(free) < req.nodes:
                raise ReservationError(
                    f"cluster {req.cluster!r}: requested {req.nodes} nodes, "
                    f"only {len(free)} free"
                )
            plan.append((req, free[: req.nodes]))

        reservation = Reservation(job_id=job_id, testbed=self)
        for req, nodes in plan:
            for node in nodes:
                node.reserve(job_id)
            reservation.nodes.setdefault(req.cluster, []).extend(nodes)

        from repro.observability.metrics import get_registry
        from repro.observability.trace import get_tracer

        tracer = get_tracer()
        if tracer.enabled:
            # A manual-lifecycle span spanning reserve → release, so the
            # campaign timeline shows testbed occupancy alongside the trials.
            reservation._span = tracer.start_span(
                f"reservation:{job_id}",
                nodes=reservation.node_count,
                clusters=",".join(sorted(reservation.nodes)),
            )
            reservation._tracer = tracer
        registry = get_registry()
        if registry.enabled:
            gauge = registry.gauge(
                "testbed_nodes_reserved", "nodes currently held by reservations", ("cluster",)
            )
            for cluster_name, nodes in reservation.nodes.items():
                gauge.inc(len(nodes), cluster=cluster_name)
        return reservation

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Testbed {self.name} sites={sorted(self.sites)} nodes={self.total_nodes}>"

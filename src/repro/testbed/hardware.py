"""Hardware specification records for simulated testbed nodes.

These are *descriptions*, not live resources: a :class:`NodeSpec` says what a
machine in a cluster looks like; :class:`repro.testbed.node.Node` is the
runtime object whose resources get allocated.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ValidationError

__all__ = ["CPUSpec", "GPUSpec", "NICSpec", "NodeSpec"]


@dataclass(frozen=True)
class CPUSpec:
    """A CPU package (socket) description."""

    model: str
    cores: int
    threads_per_core: int = 1
    base_clock_ghz: float = 2.0

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValidationError(f"CPU cores must be >= 1, got {self.cores}")
        if self.threads_per_core < 1:
            raise ValidationError("threads_per_core must be >= 1")

    @property
    def logical_cores(self) -> int:
        return self.cores * self.threads_per_core


@dataclass(frozen=True)
class GPUSpec:
    """A GPU accelerator description."""

    model: str
    memory_gb: float
    max_power_w: float = 250.0
    sm_count: int = 80

    def __post_init__(self) -> None:
        if self.memory_gb <= 0:
            raise ValidationError("GPU memory must be positive")


@dataclass(frozen=True)
class NICSpec:
    """A network interface description."""

    model: str
    rate_gbps: float

    def __post_init__(self) -> None:
        if self.rate_gbps <= 0:
            raise ValidationError("NIC rate must be positive")

    @property
    def rate_bytes_per_s(self) -> float:
        return self.rate_gbps * 1e9 / 8.0


@dataclass(frozen=True)
class NodeSpec:
    """Full description of one machine model (e.g. Dell PowerEdge R740)."""

    model: str
    cpus: tuple[CPUSpec, ...]
    memory_gb: float
    storage_gb: float
    nic: NICSpec
    gpus: tuple[GPUSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.cpus:
            raise ValidationError("a node needs at least one CPU")
        if self.memory_gb <= 0:
            raise ValidationError("memory must be positive")
        if self.storage_gb <= 0:
            raise ValidationError("storage must be positive")

    @property
    def total_cores(self) -> int:
        """Physical cores across sockets."""
        return sum(cpu.cores for cpu in self.cpus)

    @property
    def total_logical_cores(self) -> int:
        return sum(cpu.logical_cores for cpu in self.cpus)

    @property
    def gpu_count(self) -> int:
        return len(self.gpus)

    @property
    def total_gpu_memory_gb(self) -> float:
        return sum(g.memory_gb for g in self.gpus)

    def describe(self) -> str:
        """One-line human description (for reservation logs)."""
        gpu = f", {self.gpu_count}x {self.gpus[0].model}" if self.gpus else ""
        return (
            f"{self.model}: {len(self.cpus)}x {self.cpus[0].model} "
            f"({self.total_cores} cores), {self.memory_gb:.0f} GB RAM, "
            f"{self.nic.rate_gbps:g} Gbps{gpu}"
        )

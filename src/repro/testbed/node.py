"""Runtime testbed nodes with allocatable resources."""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import ReservationError
from repro.testbed.hardware import NodeSpec

if TYPE_CHECKING:  # pragma: no cover
    from repro.testbed.cluster import Cluster

__all__ = ["Node"]


class Node:
    """One machine instance in a cluster.

    Tracks coarse-grained allocation (cores, memory, GPUs) by deployed
    services. Fine-grained time-sharing behaviour (CPU contention between
    threads) is modelled inside the application simulators, not here — the
    node only guarantees that reservations do not oversubscribe hardware.
    """

    def __init__(self, cluster: "Cluster", index: int) -> None:
        self.cluster = cluster
        self.index = index
        self.allocated_cores = 0
        self.allocated_memory_gb = 0.0
        self.allocated_gpus = 0
        self._reserved_by: Optional[str] = None
        self._failed = False

    @property
    def name(self) -> str:
        """Grid'5000-style node name, e.g. ``chifflot-3.lille``."""
        return f"{self.cluster.name}-{self.index}.{self.cluster.site_name}"

    @property
    def spec(self) -> NodeSpec:
        return self.cluster.spec

    @property
    def reserved(self) -> bool:
        return self._reserved_by is not None

    @property
    def reserved_by(self) -> Optional[str]:
        return self._reserved_by

    @property
    def failed(self) -> bool:
        return self._failed

    def fail(self) -> None:
        """Mark the node crashed: it keeps its state but accepts no jobs.

        Fault injection uses this to model a Grid'5000 node dying mid-
        campaign; any reservation holding the node sees it via
        :attr:`failed`, and the node is excluded from future scheduling
        until :meth:`repair`.
        """
        self._failed = True

    def repair(self) -> None:
        """Bring a failed node back into the schedulable pool."""
        self._failed = False

    def reserve(self, job_id: str) -> None:
        if self._failed:
            raise ReservationError(f"{self.name} has failed and cannot be reserved")
        if self._reserved_by is not None:
            raise ReservationError(f"{self.name} already reserved by job {self._reserved_by}")
        self._reserved_by = job_id

    def release(self) -> None:
        self._reserved_by = None
        self.allocated_cores = 0
        self.allocated_memory_gb = 0.0
        self.allocated_gpus = 0

    # -- resource allocation (used by deployments) ----------------------------

    def allocate(self, cores: int = 0, memory_gb: float = 0.0, gpus: int = 0) -> None:
        """Claim resources on this node; raises if oversubscribed."""
        if cores < 0 or memory_gb < 0 or gpus < 0:
            raise ValueError("allocation amounts must be non-negative")
        if self.allocated_cores + cores > self.spec.total_logical_cores:
            raise ReservationError(
                f"{self.name}: requested {cores} cores but only "
                f"{self.available_cores} of {self.spec.total_logical_cores} free"
            )
        if self.allocated_memory_gb + memory_gb > self.spec.memory_gb:
            raise ReservationError(
                f"{self.name}: requested {memory_gb} GB but only "
                f"{self.available_memory_gb:.1f} GB free"
            )
        if self.allocated_gpus + gpus > self.spec.gpu_count:
            raise ReservationError(
                f"{self.name}: requested {gpus} GPUs but only "
                f"{self.available_gpus} of {self.spec.gpu_count} free"
            )
        self.allocated_cores += cores
        self.allocated_memory_gb += memory_gb
        self.allocated_gpus += gpus

    def free(self, cores: int = 0, memory_gb: float = 0.0, gpus: int = 0) -> None:
        """Return previously allocated resources."""
        self.allocated_cores = max(0, self.allocated_cores - cores)
        self.allocated_memory_gb = max(0.0, self.allocated_memory_gb - memory_gb)
        self.allocated_gpus = max(0, self.allocated_gpus - gpus)

    @property
    def available_cores(self) -> int:
        return self.spec.total_logical_cores - self.allocated_cores

    @property
    def available_memory_gb(self) -> float:
        return self.spec.memory_gb - self.allocated_memory_gb

    @property
    def available_gpus(self) -> int:
        return self.spec.gpu_count - self.allocated_gpus

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = f"job={self._reserved_by}" if self.reserved else "free"
        return f"<Node {self.name} {state}>"

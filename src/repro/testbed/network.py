"""Network topology and emulation.

E2Clab's network manager applies ``tc``-style latency/bandwidth constraints
between layers of the continuum. Here the topology is a graph (networkx) of
*endpoints* — sites, clusters or logical layers (``edge``/``fog``/``cloud``)
— whose edges carry latency and bandwidth. Transfer time for a payload is::

    one_way_latency + payload_bytes / bottleneck_bandwidth

along the shortest-latency path, which is the first-order model used by the
Edge-to-Cloud emulation literature the paper builds on.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.errors import ValidationError

__all__ = ["Link", "NetworkPath", "NetworkEmulator"]


@dataclass(frozen=True)
class Link:
    """A bidirectional network link with symmetric characteristics."""

    a: str
    b: str
    latency_ms: float
    bandwidth_gbps: float
    jitter_ms: float = 0.0
    loss: float = 0.0

    def __post_init__(self) -> None:
        if self.latency_ms < 0:
            raise ValidationError("latency must be >= 0")
        if self.bandwidth_gbps <= 0:
            raise ValidationError("bandwidth must be > 0")
        if self.jitter_ms < 0:
            raise ValidationError("jitter must be >= 0")
        if not 0 <= self.loss < 1:
            raise ValidationError("loss must be in [0, 1)")

    @property
    def bandwidth_bytes_per_s(self) -> float:
        return self.bandwidth_gbps * 1e9 / 8.0


@dataclass(frozen=True)
class NetworkPath:
    """Resolved end-to-end characteristics between two endpoints."""

    hops: tuple[str, ...]
    latency_ms: float
    bandwidth_gbps: float
    loss: float

    @property
    def bandwidth_bytes_per_s(self) -> float:
        return self.bandwidth_gbps * 1e9 / 8.0

    def transfer_time(self, payload_bytes: float) -> float:
        """Seconds to move ``payload_bytes`` one-way over this path.

        Loss is folded in as goodput reduction (TCP-like first-order model);
        the latency term is one propagation delay.
        """
        goodput = self.bandwidth_bytes_per_s * (1.0 - self.loss)
        return self.latency_ms / 1e3 + payload_bytes / goodput

    def round_trip_time(self) -> float:
        """Seconds for one RTT."""
        return 2.0 * self.latency_ms / 1e3


class NetworkEmulator:
    """Graph of endpoints and constrained links; path resolution with cache."""

    #: Default characteristics when two endpoints share no explicit path —
    #: treated as co-located on the testbed LAN.
    DEFAULT_LATENCY_MS = 0.05
    DEFAULT_BANDWIDTH_GBPS = 10.0

    def __init__(self) -> None:
        self._graph = nx.Graph()
        self._cache: dict[tuple[str, str], NetworkPath] = {}

    def add_site(self, name: str) -> None:
        self._graph.add_node(name)

    def endpoints(self) -> list[str]:
        return sorted(self._graph.nodes)

    def add_link(self, link: Link) -> None:
        """Install (or replace) the link between ``link.a`` and ``link.b``."""
        self._graph.add_edge(
            link.a,
            link.b,
            latency_ms=link.latency_ms,
            bandwidth_gbps=link.bandwidth_gbps,
            loss=link.loss,
        )
        self._cache.clear()

    def constrain(
        self,
        a: str,
        b: str,
        *,
        latency_ms: float,
        bandwidth_gbps: float,
        loss: float = 0.0,
    ) -> None:
        """E2Clab-style shorthand for :meth:`add_link`."""
        self.add_link(Link(a, b, latency_ms=latency_ms, bandwidth_gbps=bandwidth_gbps, loss=loss))

    def path(self, a: str, b: str) -> NetworkPath:
        """Resolve the shortest-latency path between two endpoints.

        Unknown or disconnected endpoint pairs fall back to LAN defaults —
        the emulator only *constrains* traffic that the experiment declared,
        exactly like ``tc`` rules on a flat testbed network.
        """
        if a == b:
            return NetworkPath(hops=(a,), latency_ms=0.0, bandwidth_gbps=float("inf"), loss=0.0)
        key = (a, b) if a <= b else (b, a)
        cached = self._cache.get(key)
        if cached is not None:
            return cached

        path = self._resolve(a, b)
        self._cache[key] = path
        return path

    def _resolve(self, a: str, b: str) -> NetworkPath:
        if a in self._graph and b in self._graph:
            try:
                hops = nx.shortest_path(self._graph, a, b, weight="latency_ms")
            except nx.NetworkXNoPath:
                hops = None
            if hops is not None:
                latency = 0.0
                bandwidth = float("inf")
                success = 1.0
                for u, v in zip(hops, hops[1:]):
                    edge = self._graph.edges[u, v]
                    latency += edge["latency_ms"]
                    bandwidth = min(bandwidth, edge["bandwidth_gbps"])
                    success *= 1.0 - edge["loss"]
                return NetworkPath(
                    hops=tuple(hops),
                    latency_ms=latency,
                    bandwidth_gbps=bandwidth,
                    loss=1.0 - success,
                )
        return NetworkPath(
            hops=(a, b),
            latency_ms=self.DEFAULT_LATENCY_MS,
            bandwidth_gbps=self.DEFAULT_BANDWIDTH_GBPS,
            loss=0.0,
        )

    def transfer_time(self, a: str, b: str, payload_bytes: float) -> float:
        """Seconds to transfer ``payload_bytes`` from ``a`` to ``b``."""
        return self.path(a, b).transfer_time(payload_bytes)

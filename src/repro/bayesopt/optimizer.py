"""The ask/tell sequential model-based optimizer (skopt's ``Optimizer``).

Supports the exact knobs of the paper's Listing 1 (base estimator alias,
initial point count and generator, ``gp_hedge`` acquisition portfolio) plus
**constant-liar** pending-point handling so several configurations can be
evaluated in parallel — the heart of the paper's asynchronous optimization
cycle.

gp_hedge follows the Hedge bandit of Hoffman et al. (2011), as adopted by
scikit-optimize: each base acquisition (EI, PI, LCB) proposes a candidate,
one proposal is drawn with probability ``softmax(η · gains)``, and after the
objective value arrives the chosen strategy's gain is updated with the
realized improvement.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from repro.bayesopt.acquisition import (
    expected_improvement,
    lower_confidence_bound,
    probability_of_improvement,
)
from repro.bayesopt.space import Dimension, Space
from repro.errors import OptimizationError, ValidationError
from repro.sampling import get_sampler
from repro.surrogate import SurrogateModel, get_surrogate

__all__ = ["Optimizer", "OptimizeResult"]

_HEDGE_ACQS = ("EI", "PI", "LCB")


@dataclass
class OptimizeResult:
    """Best-so-far view over everything the optimizer was told."""

    x: list[Any]
    fun: float
    x_iters: list[list[Any]] = field(default_factory=list)
    func_vals: list[float] = field(default_factory=list)
    space: Space | None = None
    n_initial_points: int = 0

    @property
    def n_evaluations(self) -> int:
        return len(self.func_vals)

    def best_after(self, n: int) -> float:
        """Best objective among the first ``n`` evaluations."""
        if n < 1 or n > len(self.func_vals):
            raise ValidationError(f"n must be in [1, {len(self.func_vals)}]")
        return float(np.min(self.func_vals[:n]))

    def to_dict(self) -> dict[str, Any]:
        return {
            "x": self.x,
            "fun": self.fun,
            "x_iters": self.x_iters,
            "func_vals": list(self.func_vals),
            "n_initial_points": self.n_initial_points,
        }


class Optimizer:
    """Sequential model-based minimizer with ask/tell interface.

    Parameters mirror scikit-optimize:

    - ``base_estimator``: surrogate alias (``"ET"``, ``"RF"``, ``"GBRT"``,
      ``"GP"``, ...) or a :class:`~repro.surrogate.base.SurrogateModel`
      factory.
    - ``n_initial_points``: evaluations taken from the initial design
      before the surrogate drives the search.
    - ``initial_point_generator``: sampler name (``"lhs"``, ``"sobol"``,
      ``"halton"``, ``"random"``, ``"grid"``).
    - ``acq_func``: ``"EI"``, ``"PI"``, ``"LCB"`` or ``"gp_hedge"``.
    - ``lie_strategy``: fantasy value for pending points — ``"cl_min"``
      (optimistic), ``"cl_mean"``, or ``"cl_max"`` (pessimistic).
    """

    def __init__(
        self,
        dimensions: Space | Sequence[Dimension],
        *,
        base_estimator: str | Callable[[], SurrogateModel] = "ET",
        n_initial_points: int = 10,
        initial_point_generator: str = "lhs",
        acq_func: str = "gp_hedge",
        acq_n_candidates: int = 2000,
        xi: float = 0.01,
        kappa: float = 1.96,
        lie_strategy: str = "cl_min",
        hedge_eta: float = 1.0,
        random_state: int | None = None,
    ) -> None:
        self.space = dimensions if isinstance(dimensions, Space) else Space(dimensions)
        if n_initial_points < 1:
            raise ValidationError("n_initial_points must be >= 1")
        if acq_func not in ("EI", "PI", "LCB", "gp_hedge"):
            raise ValidationError(f"unknown acq_func {acq_func!r}")
        if lie_strategy not in ("cl_min", "cl_mean", "cl_max"):
            raise ValidationError(f"unknown lie_strategy {lie_strategy!r}")
        self.base_estimator = base_estimator
        self.n_initial_points = int(n_initial_points)
        self.acq_func = acq_func
        self.acq_n_candidates = int(acq_n_candidates)
        self.xi = float(xi)
        self.kappa = float(kappa)
        self.lie_strategy = lie_strategy
        self.hedge_eta = float(hedge_eta)
        self.rng = np.random.default_rng(random_state)

        sampler = get_sampler(initial_point_generator)
        self._initial_points = sampler.generate(
            self.n_initial_points, len(self.space), self.rng
        )
        self._initial_cursor = 0

        self.Xi_unit: list[np.ndarray] = []
        self.yi: list[float] = []
        #: pending = (unit point, decoded point, hedge acq). Matching in
        #: tell() uses the *decoded* point: integer/categorical dimensions
        #: collapse many unit coordinates onto one native value, so the
        #: caller's x would not reproduce the asked unit coordinate.
        self._pending: list[tuple[np.ndarray, list[Any], str | None]] = []
        self._gains = np.zeros(len(_HEDGE_ACQS))
        self.models: list[SurrogateModel] = []

    # -- surrogate construction -----------------------------------------------------

    def _new_model(self) -> SurrogateModel:
        if callable(self.base_estimator):
            return self.base_estimator()
        seed = int(self.rng.integers(0, 2**31))
        try:
            return get_surrogate(self.base_estimator, random_state=seed)
        except TypeError:
            return get_surrogate(self.base_estimator)

    # -- ask -----------------------------------------------------------------------

    def ask(self) -> list[Any]:
        """Next point to evaluate (registers it as pending)."""
        unit, acq_name = self._ask_unit()
        point = self.space.inverse_transform(unit[None, :])[0]
        self._pending.append((unit, point, acq_name))
        return point

    def _ask_unit(self) -> tuple[np.ndarray, str | None]:
        if self._initial_cursor < self.n_initial_points or len(self.yi) == 0:
            idx = self._initial_cursor % self.n_initial_points
            self._initial_cursor += 1
            if self._initial_cursor > self.n_initial_points:
                # Initial design exhausted while nothing was told yet:
                # fall back to uniform random to keep asks distinct.
                return self.rng.random(len(self.space)), None
            return self._initial_points[idx].copy(), None

        X, y = self._augmented_data()
        model = self._new_model()
        model.fit(X, y)
        self.models.append(model)

        candidates = self.rng.random((self.acq_n_candidates, len(self.space)))
        mu, std = model.predict(candidates, return_std=True)
        y_best = float(np.min(y))

        if self.acq_func == "gp_hedge":
            probs = self._hedge_probabilities()
            choice = int(self.rng.choice(len(_HEDGE_ACQS), p=probs))
            acq_name = _HEDGE_ACQS[choice]
        else:
            acq_name = self.acq_func

        scores = self._acquisition(acq_name, mu, std, y_best)
        order = np.argsort(scores)[::-1]
        taken = {tuple(np.round(u, 6)) for u, _, _ in self._pending}
        taken.update(tuple(np.round(u, 6)) for u in self.Xi_unit)
        for idx in order:
            key = tuple(np.round(candidates[idx], 6))
            if key not in taken:
                return candidates[idx], acq_name if self.acq_func == "gp_hedge" else None
        # Every candidate collides (tiny spaces): random fallback.
        return self.rng.random(len(self.space)), None

    def _acquisition(
        self, name: str, mu: np.ndarray, std: np.ndarray, y_best: float
    ) -> np.ndarray:
        if name == "EI":
            return expected_improvement(mu, std, y_best, self.xi)
        if name == "PI":
            return probability_of_improvement(mu, std, y_best, self.xi)
        if name == "LCB":
            return lower_confidence_bound(mu, std, self.kappa)
        raise ValidationError(f"unknown acquisition {name!r}")  # pragma: no cover

    def _hedge_probabilities(self) -> np.ndarray:
        scaled = self.hedge_eta * (self._gains - self._gains.max())
        exp = np.exp(scaled)
        return exp / exp.sum()

    def _augmented_data(self) -> tuple[np.ndarray, np.ndarray]:
        """Observed data plus constant-liar fantasies for pending points."""
        X = list(self.Xi_unit)
        y = list(self.yi)
        if self._pending and y:
            if self.lie_strategy == "cl_min":
                lie = float(np.min(y))
            elif self.lie_strategy == "cl_mean":
                lie = float(np.mean(y))
            else:
                lie = float(np.max(y))
            for unit, _, _ in self._pending:
                X.append(unit)
                y.append(lie)
        return np.asarray(X), np.asarray(y)

    # -- tell ----------------------------------------------------------------------

    def tell(self, x: Sequence[Any], y: float) -> OptimizeResult:
        """Report an observed objective value for ``x``."""
        if not math.isfinite(y):
            raise ValidationError(f"objective value must be finite, got {y}")
        unit = self.space.transform([list(x)])[0]
        acq_name = self._pop_pending(unit, list(x))
        if acq_name is not None:
            improvement = max(0.0, (min(self.yi) if self.yi else y) - y)
            self._gains[_HEDGE_ACQS.index(acq_name)] += improvement
        self.Xi_unit.append(unit)
        self.yi.append(float(y))
        return self.result()

    def _pop_pending(self, unit: np.ndarray, x: list[Any]) -> str | None:
        for i, (pending_unit, pending_point, acq_name) in enumerate(self._pending):
            if pending_point == x or np.allclose(pending_unit, unit, atol=1e-6):
                self._pending.pop(i)
                return acq_name
        return None

    # -- results ---------------------------------------------------------------------

    def result(self) -> OptimizeResult:
        if not self.yi:
            raise OptimizationError("no evaluations told yet")
        best = int(np.argmin(self.yi))
        x_iters = [self.space.inverse_transform(u[None, :])[0] for u in self.Xi_unit]
        return OptimizeResult(
            x=x_iters[best],
            fun=float(self.yi[best]),
            x_iters=x_iters,
            func_vals=list(self.yi),
            space=self.space,
            n_initial_points=self.n_initial_points,
        )

    def run(self, func: Callable[[list[Any]], float], n_calls: int) -> OptimizeResult:
        """Sequential convenience loop: ask → evaluate → tell, n times."""
        if n_calls < 1:
            raise ValidationError("n_calls must be >= 1")
        for _ in range(n_calls):
            x = self.ask()
            self.tell(x, float(func(x)))
        return self.result()

"""The ask/tell sequential model-based optimizer (skopt's ``Optimizer``).

Supports the exact knobs of the paper's Listing 1 (base estimator alias,
initial point count and generator, ``gp_hedge`` acquisition portfolio) plus
**constant-liar** pending-point handling so several configurations can be
evaluated in parallel — the heart of the paper's asynchronous optimization
cycle.

gp_hedge follows the Hedge bandit of Hoffman et al. (2011), as adopted by
scikit-optimize: each base acquisition (EI, PI, LCB) proposes a candidate,
one proposal is drawn with probability ``softmax(η · gains)``, and after the
objective value arrives the chosen strategy's gain is updated with the
realized improvement.

Hot-path design
---------------
``ask``/``tell`` are the per-trial costs of the optimization cycle, so both
are kept off the campaign's critical path:

- ``ask(n)`` fits the surrogate at most once and draws a whole batch of
  distinct points from it; every batched point is registered as a pending
  constant-liar fantasy so the *next* refit accounts for in-flight trials.
- surrogate refits are throttled (``refit_every`` fresh observations, with
  a data-doubling staleness override) and the fitted-model history is a
  capped opt-in record (``keep_models``) instead of an unbounded list.
- ``tell`` is O(1): it caches the decoded point and the running best, and
  ``result()`` assembles the :class:`OptimizeResult` lazily from those
  caches instead of inverse-transforming the full history per call.
- with ``incremental=True`` each tell folds the fresh observation into the
  published surrogate via ``partial_fit`` (frozen-structure leaf updates),
  so full from-scratch refits only fire on dataset doubling — log-many over
  a campaign instead of every ``refit_every`` trials.
- with ``background_refit=True`` those full refits move off the ask path:
  a daemon worker fits a *second* model instance while ``ask`` keeps
  reading the last published one, and a single attribute assignment under
  the optimizer lock swaps the fresh model in (double buffering). The
  deterministic single-thread behaviour of ``background_refit=False`` is
  bit-for-bit identical to previous releases.

All public methods are thread-safe: ``ask``/``tell``/``result`` serialize
on one re-entrant lock, which is also what makes the background publish an
atomic swap from the caller's point of view.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from repro.bayesopt.acquisition import (
    expected_improvement,
    lower_confidence_bound,
    probability_of_improvement,
)
from repro.bayesopt.space import Dimension, Space
from repro.errors import OptimizationError, ValidationError
from repro.observability.digest import get_perf
from repro.observability.trace import get_tracer
from repro.sampling import get_sampler
from repro.surrogate import SurrogateModel, get_surrogate
from repro.utils.serialization import canonical_config

__all__ = ["Optimizer", "OptimizeResult"]

_HEDGE_ACQS = ("EI", "PI", "LCB")


@dataclass
class OptimizeResult:
    """Best-so-far view over everything the optimizer was told."""

    x: list[Any]
    fun: float
    x_iters: list[list[Any]] = field(default_factory=list)
    func_vals: list[float] = field(default_factory=list)
    space: Space | None = None
    n_initial_points: int = 0

    @property
    def n_evaluations(self) -> int:
        return len(self.func_vals)

    def best_after(self, n: int) -> float:
        """Best objective among the first ``n`` evaluations.

        Quarantined non-finite evaluations are ignored; ``inf`` is returned
        if the prefix holds none that are finite.
        """
        if n < 1 or n > len(self.func_vals):
            raise ValidationError(f"n must be in [1, {len(self.func_vals)}]")
        prefix = np.asarray(self.func_vals[:n], dtype=float)
        finite = prefix[np.isfinite(prefix)]
        return float(np.min(finite)) if len(finite) else math.inf

    def to_dict(self) -> dict[str, Any]:
        return {
            "x": self.x,
            "fun": self.fun,
            "x_iters": self.x_iters,
            "func_vals": list(self.func_vals),
            "n_initial_points": self.n_initial_points,
        }


def _points_equal(a: Sequence[Any], b: Sequence[Any]) -> bool:
    """Element-wise point equality tolerant of list/tuple and numeric drift.

    Both points go through the same canonicalization as the evaluation
    cache key (:func:`repro.utils.serialization.canonical_config`), so
    checkpoint replay matching and cache identity cannot drift apart —
    ``5`` matches ``5.0``, tuples match lists, numpy scalars match both.
    """
    return canonical_config(list(a)) == canonical_config(list(b))


class Optimizer:
    """Sequential model-based minimizer with ask/tell interface.

    Parameters mirror scikit-optimize:

    - ``base_estimator``: surrogate alias (``"ET"``, ``"RF"``, ``"GBRT"``,
      ``"GP"``, ...) or a :class:`~repro.surrogate.base.SurrogateModel`
      factory.
    - ``n_initial_points``: evaluations taken from the initial design
      before the surrogate drives the search.
    - ``initial_point_generator``: sampler name (``"lhs"``, ``"sobol"``,
      ``"halton"``, ``"random"``, ``"grid"``).
    - ``acq_func``: ``"EI"``, ``"PI"``, ``"LCB"`` or ``"gp_hedge"``.
    - ``lie_strategy``: fantasy value for pending points — ``"cl_min"``
      (optimistic), ``"cl_mean"``, or ``"cl_max"`` (pessimistic).
    - ``refit_every``: fresh observations (tells plus pending-set changes)
      tolerated before the cached surrogate is refitted. The default of 1
      preserves the refit-per-ask behaviour; larger values amortize fits
      across many asks, with a staleness override forcing a refit once the
      observation set has doubled since the cached fit.
    - ``keep_models``: size of the fitted-surrogate history exposed through
      :attr:`models`. 0 (default) keeps none — campaign memory stays flat.
    - ``incremental``: fold each finite tell into the published surrogate
      via ``partial_fit`` (frozen-structure leaf updates) instead of
      counting it towards the refit throttle; full refits then only fire on
      dataset doubling. Slightly changes which model serves each ask, so it
      is off by default for reproducibility.
    - ``background_refit``: run full refits on a daemon worker thread and
      double-buffer the model — ``ask`` always reads the last published
      fit and a lock-protected attribute swap publishes the new one. Off by
      default: the single-thread path is bit-for-bit reproducible.
    - ``fit_jobs``: thread count for parallel tree construction inside one
      forest fit (``None`` = serial, ``-1`` = cores-1). Byte-identical
      output regardless of the worker count.
    """

    def __init__(
        self,
        dimensions: Space | Sequence[Dimension],
        *,
        base_estimator: str | Callable[[], SurrogateModel] = "ET",
        n_initial_points: int = 10,
        initial_point_generator: str = "lhs",
        acq_func: str = "gp_hedge",
        acq_n_candidates: int = 2000,
        xi: float = 0.01,
        kappa: float = 1.96,
        lie_strategy: str = "cl_min",
        hedge_eta: float = 1.0,
        refit_every: int = 1,
        keep_models: int = 0,
        incremental: bool = False,
        background_refit: bool = False,
        fit_jobs: int | None = None,
        random_state: int | None = None,
    ) -> None:
        self.space = dimensions if isinstance(dimensions, Space) else Space(dimensions)
        if n_initial_points < 1:
            raise ValidationError("n_initial_points must be >= 1")
        if acq_func not in ("EI", "PI", "LCB", "gp_hedge"):
            raise ValidationError(f"unknown acq_func {acq_func!r}")
        if lie_strategy not in ("cl_min", "cl_mean", "cl_max"):
            raise ValidationError(f"unknown lie_strategy {lie_strategy!r}")
        if refit_every < 1:
            raise ValidationError("refit_every must be >= 1")
        if keep_models < 0:
            raise ValidationError("keep_models must be >= 0")
        if fit_jobs is not None and fit_jobs != -1 and fit_jobs < 1:
            raise ValidationError("fit_jobs must be >= 1, -1, or None")
        self.base_estimator = base_estimator
        self.n_initial_points = int(n_initial_points)
        self.acq_func = acq_func
        self.acq_n_candidates = int(acq_n_candidates)
        self.xi = float(xi)
        self.kappa = float(kappa)
        self.lie_strategy = lie_strategy
        self.hedge_eta = float(hedge_eta)
        self.refit_every = int(refit_every)
        self.keep_models = int(keep_models)
        self.incremental = bool(incremental)
        self.background_refit = bool(background_refit)
        self.fit_jobs = fit_jobs
        self.rng = np.random.default_rng(random_state)

        sampler = get_sampler(initial_point_generator)
        self._initial_points = sampler.generate(
            self.n_initial_points, len(self.space), self.rng
        )
        self._initial_cursor = 0

        self.Xi_unit: list[np.ndarray] = []
        self.yi: list[float] = []
        #: decoded points, cached at tell time so ``result()`` never has to
        #: inverse-transform the history.
        self.Xi: list[list[Any]] = []
        #: pending = (unit point, decoded point, hedge acq). Matching in
        #: tell() uses the *decoded* point: integer/categorical dimensions
        #: collapse many unit coordinates onto one native value, so the
        #: caller's x would not reproduce the asked unit coordinate.
        self._pending: list[tuple[np.ndarray, list[Any], str | None]] = []
        self._gains = np.zeros(len(_HEDGE_ACQS))
        self._model: SurrogateModel | None = None
        self._fit_told = 0
        self._fit_pending = 0
        #: observation count at the last FULL fit — drives the doubling
        #: override. Without incremental updates it tracks ``_fit_told``
        #: exactly, preserving the historical staleness behaviour.
        self._full_fit_size = 0
        self._model_history: deque[SurrogateModel] = deque(maxlen=self.keep_models)
        self._best_idx = -1
        self._best_y = math.inf
        #: finite tells only — NaN/inf objectives are recorded in the
        #: history but quarantined from fitting and incumbent tracking.
        self._n_finite = 0

        #: counters for tests/benchmarks: inline (blocking) full fits vs
        #: fits published by the background worker.
        self.n_fits = 0
        self.n_background_fits = 0

        # One re-entrant lock serializes all public-state mutation; the
        # condition hands full-refit jobs to the lazily started worker.
        # Lock order is always _lock → _refit_cond, never the reverse.
        self._lock = threading.RLock()
        self._refit_cond = threading.Condition()
        self._refit_job: tuple[SurrogateModel, np.ndarray, np.ndarray, int, int] | None = None
        self._refit_inflight = False
        self._refit_thread: threading.Thread | None = None
        self._closed = False

    @property
    def models(self) -> list[SurrogateModel]:
        """Capped record of fitted surrogates (opt-in via ``keep_models``)."""
        return list(self._model_history)

    # -- surrogate construction -----------------------------------------------------

    def _new_model(self) -> SurrogateModel:
        if callable(self.base_estimator):
            return self.base_estimator()
        seed = int(self.rng.integers(0, 2**31))
        if self.fit_jobs is not None:
            try:
                return get_surrogate(
                    self.base_estimator, random_state=seed, n_jobs=self.fit_jobs
                )
            except TypeError:
                pass  # surrogate without parallel fitting: fall through
        try:
            return get_surrogate(self.base_estimator, random_state=seed)
        except TypeError:
            return get_surrogate(self.base_estimator)

    def _fit_model(self, model: SurrogateModel, X: np.ndarray, y: np.ndarray) -> None:
        """Fit + observability: ``refit`` latency digest and tracer span."""
        tracer = get_tracer()
        start = time.perf_counter()
        try:
            model.fit(X, y)
        finally:
            elapsed = time.perf_counter() - start
            get_perf().record("refit", elapsed)
            if tracer.enabled:
                span = tracer.start_span(
                    "refit", start=tracer.clock() - elapsed, n_obs=len(y)
                )
                tracer.end_span(span)

    def _surrogate(self) -> SurrogateModel:
        """The published surrogate, refitted only when stale enough.

        A full refit is due when ``refit_every`` fresh observations
        accumulated (new tells plus changes of the pending set, so the
        default of 1 also refreshes constant-liar fantasies between asks)
        or when the observation set has doubled since the last full fit
        regardless of the throttle. With ``incremental=True`` per-tell
        ``partial_fit`` absorbs freshness, so only the doubling override
        reaches here. With ``background_refit=True`` a due refit is handed
        to the worker and the *current* model keeps serving asks until the
        new one is published — only the very first fit blocks.
        """
        told, pend = len(self.yi), len(self._pending)
        if self._model is not None:
            fresh = (told - self._fit_told) + abs(pend - self._fit_pending)
            doubled = told >= 2 * max(self._full_fit_size, 1)
            if fresh < self.refit_every and not doubled:
                return self._model
            if self.background_refit:
                self._schedule_refit()
                return self._model
        X, y = self._augmented_data()
        model = self._new_model()
        self._fit_model(model, X, y)
        self._model = model
        self._fit_told = told
        self._fit_pending = pend
        self._full_fit_size = told
        self.n_fits += 1
        if self._model_history.maxlen:
            self._model_history.append(model)
        return model

    def _schedule_refit(self) -> None:
        """Queue a background full refit (caller holds ``self._lock``).

        The training snapshot and the unfitted model instance — including
        its rng draw for the surrogate seed — are both produced on the
        *caller* thread, so the optimizer rng is never touched off-thread
        and the background path consumes the same rng stream as the inline
        one. At most one refit is in flight; while it runs, later asks keep
        reading the current model instead of piling up jobs.
        """
        if self._refit_inflight or self._closed:
            return
        X, y = self._augmented_data()
        model = self._new_model()
        told, pend = len(self.yi), len(self._pending)
        self._refit_inflight = True
        if self._refit_thread is None or not self._refit_thread.is_alive():
            self._refit_thread = threading.Thread(
                target=self._refit_worker, name="surrogate-refit", daemon=True
            )
            self._refit_thread.start()
        with self._refit_cond:
            self._refit_job = (model, X, y, told, pend)
            self._refit_cond.notify()

    def _refit_worker(self) -> None:
        while True:
            with self._refit_cond:
                while self._refit_job is None and not self._closed:
                    self._refit_cond.wait()
                if self._refit_job is None:
                    return  # closed with nothing queued
                job, self._refit_job = self._refit_job, None
            model, X, y, told, pend = job
            try:
                self._fit_model(model, X, y)
            except Exception:
                with self._lock:
                    self._refit_inflight = False
                continue
            with self._lock:
                # Double-buffer publish: one attribute swap under the lock;
                # concurrent asks read either the old or the new model.
                self._model = model
                self._fit_told = told
                self._fit_pending = pend
                self._full_fit_size = told
                self.n_background_fits += 1
                if self._model_history.maxlen:
                    self._model_history.append(model)
                self._refit_inflight = False

    def close(self) -> None:
        """Stop the background refit worker (idempotent).

        Pending jobs are dropped; the last published model stays readable.
        Only needed with ``background_refit=True`` — and even then the
        worker is a daemon, so skipping ``close`` never hangs interpreter
        shutdown.
        """
        with self._refit_cond:
            self._closed = True
            self._refit_job = None
            self._refit_cond.notify_all()
        thread = self._refit_thread
        if thread is not None and thread.is_alive():
            thread.join(timeout=10.0)

    # -- ask -----------------------------------------------------------------------

    def ask(self, n: int | None = None) -> list[Any]:
        """Next point(s) to evaluate (registered as pending).

        Without ``n`` returns a single point, as before. With ``n`` returns
        a batch of ``n`` distinct points generated from a *single* surrogate
        fit: each pick is drawn from the acquisition ranking (gp_hedge draws
        a portfolio member per point), deduplicated against everything asked
        or told, and registered as a pending constant-liar fantasy so later
        refits see the in-flight batch.
        """
        if n is not None and n < 1:
            raise ValidationError("batch size n must be >= 1")
        with self._lock:
            units, acqs = self._ask_units(1 if n is None else int(n))
            points = self.space.inverse_transform(np.asarray(units))
            for unit, point, acq_name in zip(units, points, acqs):
                self._pending.append((unit, point, acq_name))
        return points[0] if n is None else points

    def _ask_units(self, n: int) -> tuple[list[np.ndarray], list[str | None]]:
        taken = self._taken_keys()
        units: list[np.ndarray] = []
        acqs: list[str | None] = []
        candidates: np.ndarray | None = None
        mu = std = None
        y_best = 0.0
        order_cache: dict[str, np.ndarray] = {}
        for _ in range(n):
            if self._initial_cursor < self.n_initial_points or not self._n_finite:
                unit, acq_name = self._cold_unit(taken), None
            else:
                if candidates is None:
                    model = self._surrogate()
                    candidates = self.rng.random((self.acq_n_candidates, len(self.space)))
                    mu, std = model.predict(candidates, return_std=True)
                    y_best = self._best_y
                if self.acq_func == "gp_hedge":
                    probs = self._hedge_probabilities()
                    acq_name = _HEDGE_ACQS[int(self.rng.choice(len(_HEDGE_ACQS), p=probs))]
                else:
                    acq_name = self.acq_func
                order = order_cache.get(acq_name)
                if order is None:
                    scores = self._acquisition(acq_name, mu, std, y_best)
                    order = np.argsort(scores)[::-1]
                    order_cache[acq_name] = order
                unit = None
                for idx in order:
                    if tuple(np.round(candidates[idx], 6)) not in taken:
                        unit = candidates[idx]
                        break
                if unit is None:
                    # Every candidate collides (tiny spaces): random fallback.
                    unit, acq_name = self._random_untaken(taken), None
                elif self.acq_func != "gp_hedge":
                    acq_name = None
            taken.add(tuple(np.round(unit, 6)))
            units.append(np.asarray(unit, dtype=float))
            acqs.append(acq_name)
        return units, acqs

    def _taken_keys(self) -> set[tuple[float, ...]]:
        taken = {tuple(np.round(u, 6)) for u, _, _ in self._pending}
        taken.update(tuple(np.round(u, 6)) for u in self.Xi_unit)
        return taken

    def _cold_unit(self, taken: set[tuple[float, ...]]) -> np.ndarray:
        """Next initial-design point not asked/told yet, else uniform random.

        Skipping design points already in ``taken`` matters on resume
        replay, where the campaign's early tells collide with the design.
        """
        while self._initial_cursor < self.n_initial_points:
            unit = self._initial_points[self._initial_cursor].copy()
            self._initial_cursor += 1
            if tuple(np.round(unit, 6)) not in taken:
                return unit
        return self._random_untaken(taken)

    def _random_untaken(self, taken: set[tuple[float, ...]]) -> np.ndarray:
        """Uniform random point, rejection-sampled away from ``taken``."""
        for _ in range(32):
            unit = self.rng.random(len(self.space))
            if tuple(np.round(unit, 6)) not in taken:
                return unit
        # Space effectively exhausted at key resolution: give up on dedup.
        return self.rng.random(len(self.space))

    def _acquisition(
        self, name: str, mu: np.ndarray, std: np.ndarray, y_best: float
    ) -> np.ndarray:
        if name == "EI":
            return expected_improvement(mu, std, y_best, self.xi)
        if name == "PI":
            return probability_of_improvement(mu, std, y_best, self.xi)
        if name == "LCB":
            return lower_confidence_bound(mu, std, self.kappa)
        raise ValidationError(f"unknown acquisition {name!r}")  # pragma: no cover

    def _hedge_probabilities(self) -> np.ndarray:
        scaled = self.hedge_eta * (self._gains - self._gains.max())
        exp = np.exp(scaled)
        return exp / exp.sum()

    def _augmented_data(self) -> tuple[np.ndarray, np.ndarray]:
        """Observed data plus constant-liar fantasies for pending points.

        Non-finite objectives (quarantined tells) are excluded — both from
        the training rows and from the lie statistics, which would otherwise
        be NaN-poisoned.
        """
        if self._n_finite == len(self.yi):
            X = list(self.Xi_unit)
            y = list(self.yi)
        else:
            keep = [i for i, v in enumerate(self.yi) if math.isfinite(v)]
            X = [self.Xi_unit[i] for i in keep]
            y = [self.yi[i] for i in keep]
        if self._pending and y:
            if self.lie_strategy == "cl_min":
                lie = float(np.min(y))
            elif self.lie_strategy == "cl_mean":
                lie = float(np.mean(y))
            else:
                lie = float(np.max(y))
            for unit, _, _ in self._pending:
                X.append(unit)
                y.append(lie)
        return np.asarray(X), np.asarray(y)

    # -- tell ----------------------------------------------------------------------

    def tell(self, x: Sequence[Any], y: float) -> None:
        """Report an observed objective value for ``x``.

        O(1) in the campaign length: the decoded point and the running best
        are cached here; build the full view with :meth:`result`.

        A non-finite ``y`` (crashed trial, diverged measurement) is
        *quarantined*, not rejected: the point is recorded in the history so
        it is never re-suggested, but it contributes to neither the
        incumbent, the hedge gains, nor any surrogate fit.
        """
        y = float(y)
        x = list(x)
        with self._lock:
            unit = self.space.transform([x])[0]
            popped = self._pop_pending(unit, x)
            if popped is not None:
                _, point, acq_name = popped
            else:
                point = self.space.inverse_transform(unit[None, :])[0]
                acq_name = None
            finite = math.isfinite(y)
            if acq_name is not None and finite:
                best_before = self._best_y if self._n_finite else y
                self._gains[_HEDGE_ACQS.index(acq_name)] += max(0.0, best_before - y)
            self.Xi_unit.append(unit)
            self.yi.append(y)
            self.Xi.append(point)
            if finite:
                self._n_finite += 1
                if y < self._best_y:
                    self._best_y = y
                    self._best_idx = len(self.yi) - 1
                self._absorb_incremental(unit, y)

    def _absorb_incremental(self, unit: np.ndarray, y: float) -> None:
        """Fold one finite tell into the published model via ``partial_fit``.

        On success the model is marked current (``_fit_told``/``_fit_pending``
        resynced), so full refits only fire at dataset doubling. Constant-liar
        fantasy refreshes between full fits are sacrificed — the stale lies
        remain baked into the frozen structure, which is the documented
        approximation of incremental mode. No-op unless ``incremental`` is on
        and the surrogate supports partial fits.
        """
        if not self.incremental or self._model is None:
            return
        if not getattr(self._model, "supports_partial_fit", False):
            return
        self._model.partial_fit(unit.reshape(1, -1), [y])
        self._fit_told = len(self.yi)
        self._fit_pending = len(self._pending)

    def _pop_pending(
        self, unit: np.ndarray, x: list[Any]
    ) -> tuple[np.ndarray, list[Any], str | None] | None:
        """Resolve a told point against the pending suggestions.

        Exact decoded-point matches win (robust to list/tuple and int/float
        representation drift, e.g. on ``--resume`` replay); otherwise the
        *nearest* pending unit point within tolerance is taken, so two close
        asked points cannot steal each other's hedge attribution.
        """
        if not self._pending:
            return None
        for i, entry in enumerate(self._pending):
            if _points_equal(entry[1], x):
                return self._pending.pop(i)
        dists = np.array(
            [float(np.max(np.abs(pending_unit - unit))) for pending_unit, _, _ in self._pending]
        )
        nearest = int(np.argmin(dists))
        if dists[nearest] <= 1e-6:
            return self._pending.pop(nearest)
        return None

    # -- results ---------------------------------------------------------------------

    def result(self) -> OptimizeResult:
        """Best-so-far view, assembled lazily from the tell-time caches."""
        with self._lock:
            if not self.yi:
                raise OptimizationError("no evaluations told yet")
            if not self._n_finite:
                raise OptimizationError("no finite evaluations told yet")
            return OptimizeResult(
                x=list(self.Xi[self._best_idx]),
                fun=self._best_y,
                x_iters=[list(p) for p in self.Xi],
                func_vals=list(self.yi),
                space=self.space,
                n_initial_points=self.n_initial_points,
            )

    # -- checkpoint state -------------------------------------------------------------

    def export_state(self) -> dict[str, Any]:
        """Checkpointable optimizer internals that tells cannot reconstruct.

        Covers the refit-cadence counters (so ``--resume`` neither triggers
        a refit storm nor serves a stale model), the hedge gains (replayed
        tells carry no pending entries, so gains would otherwise reset to
        zero), and the initial-design cursor. Observation history itself is
        rebuilt by the caller replaying ``tell``.
        """
        with self._lock:
            return {
                "fit_told": int(self._fit_told),
                "fit_pending": int(self._fit_pending),
                "full_fit_size": int(self._full_fit_size),
                "gains": [float(g) for g in self._gains],
                "initial_cursor": int(self._initial_cursor),
            }

    def restore_state(self, state: dict[str, Any]) -> None:
        """Restore :meth:`export_state` output after replaying the tells.

        Counters are clamped to the replayed history length so a truncated
        checkpoint can never make the optimizer think it is fresher than
        the data it actually holds.
        """
        if not isinstance(state, dict):
            raise ValidationError("optimizer state must be a mapping")
        with self._lock:
            told = len(self.yi)
            self._fit_told = min(int(state.get("fit_told", 0)), told)
            self._fit_pending = max(int(state.get("fit_pending", 0)), 0)
            self._full_fit_size = min(int(state.get("full_fit_size", 0)), told)
            gains = state.get("gains")
            if gains is not None and len(gains) == len(_HEDGE_ACQS):
                self._gains = np.asarray(gains, dtype=float)
            cursor = int(state.get("initial_cursor", self._initial_cursor))
            self._initial_cursor = min(max(cursor, 0), self.n_initial_points)

    def run(self, func: Callable[[list[Any]], float], n_calls: int) -> OptimizeResult:
        """Sequential convenience loop: ask → evaluate → tell, n times."""
        if n_calls < 1:
            raise ValidationError("n_calls must be >= 1")
        for _ in range(n_calls):
            x = self.ask()
            self.tell(x, float(func(x)))
        return self.result()

"""Sequential model-based (Bayesian) optimization, scikit-optimize style.

This package provides the optimizer the paper configures in Listing 1::

    Optimizer(
        base_estimator="ET",
        n_initial_points=45,
        initial_point_generator="lhs",
        acq_func="gp_hedge",
    )

- :mod:`repro.bayesopt.space` — search-space dimensions (Real / Integer /
  Categorical) with unit-cube transforms.
- :mod:`repro.bayesopt.acquisition` — EI / PI / LCB and the gp_hedge
  portfolio.
- :mod:`repro.bayesopt.optimizer` — the ask/tell loop with constant-liar
  support for asynchronous parallel evaluation (the paper's optimization
  cycle evaluates several configurations simultaneously).
"""

from repro.bayesopt.space import Categorical, Dimension, Integer, Real, Space
from repro.bayesopt.acquisition import (
    expected_improvement,
    lower_confidence_bound,
    probability_of_improvement,
)
from repro.bayesopt.optimizer import Optimizer, OptimizeResult

__all__ = [
    "Space",
    "Dimension",
    "Real",
    "Integer",
    "Categorical",
    "expected_improvement",
    "probability_of_improvement",
    "lower_confidence_bound",
    "Optimizer",
    "OptimizeResult",
]

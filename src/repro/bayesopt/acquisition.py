"""Acquisition functions for sequential model-based optimization.

All functions follow the *minimization* convention (the paper minimizes
user response time) and return values where **larger is better** for the
acquisition maximizer.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.errors import ValidationError

__all__ = [
    "expected_improvement",
    "probability_of_improvement",
    "lower_confidence_bound",
    "ACQUISITION_FUNCTIONS",
]


def _validate(mu: np.ndarray, std: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    mu = np.asarray(mu, dtype=float)
    std = np.asarray(std, dtype=float)
    if mu.shape != std.shape:
        raise ValidationError(f"mu/std shape mismatch: {mu.shape} vs {std.shape}")
    return mu, np.maximum(std, 1e-12)


def expected_improvement(
    mu: np.ndarray, std: np.ndarray, y_best: float, xi: float = 0.01
) -> np.ndarray:
    """EI(x) = E[max(y_best − ξ − Y(x), 0)] under Gaussian posterior."""
    mu, std = _validate(mu, std)
    improvement = y_best - xi - mu
    z = improvement / std
    return improvement * stats.norm.cdf(z) + std * stats.norm.pdf(z)


def probability_of_improvement(
    mu: np.ndarray, std: np.ndarray, y_best: float, xi: float = 0.01
) -> np.ndarray:
    """PI(x) = P[Y(x) < y_best − ξ]."""
    mu, std = _validate(mu, std)
    return stats.norm.cdf((y_best - xi - mu) / std)


def lower_confidence_bound(
    mu: np.ndarray, std: np.ndarray, kappa: float = 1.96
) -> np.ndarray:
    """−LCB(x) = −(μ − κσ); negated so larger is better."""
    mu, std = _validate(mu, std)
    return -(mu - kappa * std)


#: names accepted by ``acq_func=`` (gp_hedge is handled by the Optimizer).
ACQUISITION_FUNCTIONS = ("EI", "PI", "LCB", "gp_hedge")

"""Search-space dimensions and the unit-cube transform.

Surrogates and samplers operate in the normalized cube ``[0, 1]^d``; the
:class:`Space` maps between that cube and native values (floats, ints,
categories). Integer dimensions round symmetrically so every integer in the
range owns an equal slice of the unit interval.
"""

from __future__ import annotations

import abc
import math
from typing import Any, Iterable, Sequence

import numpy as np

from repro.errors import ValidationError

__all__ = ["Dimension", "Real", "Integer", "Categorical", "Space"]


class Dimension(abc.ABC):
    """One search-space axis."""

    name: str = ""

    @abc.abstractmethod
    def to_unit(self, value: Any) -> float:
        """Map a native value into [0, 1]."""

    @abc.abstractmethod
    def from_unit(self, u: float) -> Any:
        """Map a unit-cube coordinate to a native value."""

    @abc.abstractmethod
    def contains(self, value: Any) -> bool:
        """Whether a native value lies within the dimension."""

    # Vectorized variants; built-in dimensions override with numpy-column
    # implementations, external subclasses inherit the scalar fallback.

    def to_unit_array(self, values: Sequence[Any]) -> np.ndarray:
        """Map a column of native values into [0, 1]."""
        return np.fromiter((self.to_unit(v) for v in values), dtype=float, count=len(values))

    def from_unit_array(self, u: np.ndarray) -> list[Any]:
        """Map a column of unit-cube coordinates to native values."""
        return [self.from_unit(v) for v in u]


class Real(Dimension):
    """A continuous dimension, optionally log-uniform."""

    def __init__(self, low: float, high: float, *, prior: str = "uniform", name: str = "") -> None:
        if not low < high:
            raise ValidationError(f"need low < high, got [{low}, {high}]")
        if prior not in ("uniform", "log-uniform"):
            raise ValidationError(f"unknown prior {prior!r}")
        if prior == "log-uniform" and low <= 0:
            raise ValidationError("log-uniform needs low > 0")
        self.low = float(low)
        self.high = float(high)
        self.prior = prior
        self.name = name

    def to_unit(self, value: Any) -> float:
        v = float(value)
        if self.prior == "log-uniform":
            return (math.log(v) - math.log(self.low)) / (
                math.log(self.high) - math.log(self.low)
            )
        return (v - self.low) / (self.high - self.low)

    def from_unit(self, u: float) -> float:
        u = min(max(float(u), 0.0), 1.0)
        if self.prior == "log-uniform":
            return math.exp(
                math.log(self.low) + u * (math.log(self.high) - math.log(self.low))
            )
        return self.low + u * (self.high - self.low)

    def to_unit_array(self, values: Sequence[Any]) -> np.ndarray:
        v = np.asarray(values, dtype=float)
        if self.prior == "log-uniform":
            return (np.log(v) - math.log(self.low)) / (
                math.log(self.high) - math.log(self.low)
            )
        return (v - self.low) / (self.high - self.low)

    def from_unit_array(self, u: np.ndarray) -> list[float]:
        u = np.clip(np.asarray(u, dtype=float), 0.0, 1.0)
        if self.prior == "log-uniform":
            out = np.exp(
                math.log(self.low) + u * (math.log(self.high) - math.log(self.low))
            )
        else:
            out = self.low + u * (self.high - self.low)
        return out.tolist()

    def contains(self, value: Any) -> bool:
        return self.low <= float(value) <= self.high

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Real({self.low}, {self.high}, name={self.name!r})"


class Integer(Dimension):
    """An integer dimension with inclusive bounds (``tune.randint``-like,
    but inclusive on both ends as in the paper's Eq. 2)."""

    def __init__(self, low: int, high: int, *, name: str = "") -> None:
        if not int(low) <= int(high):
            raise ValidationError(f"need low <= high, got [{low}, {high}]")
        self.low = int(low)
        self.high = int(high)
        self.name = name

    @property
    def count(self) -> int:
        return self.high - self.low + 1

    def to_unit(self, value: Any) -> float:
        v = int(value)
        # Centre of the value's slice of the unit interval.
        return (v - self.low + 0.5) / self.count

    def from_unit(self, u: float) -> int:
        u = min(max(float(u), 0.0), np.nextafter(1.0, 0.0))
        return self.low + int(u * self.count)

    def to_unit_array(self, values: Sequence[Any]) -> np.ndarray:
        v = np.asarray([int(value) for value in values], dtype=float)
        return (v - self.low + 0.5) / self.count

    def from_unit_array(self, u: np.ndarray) -> list[int]:
        u = np.clip(np.asarray(u, dtype=float), 0.0, np.nextafter(1.0, 0.0))
        return (self.low + (u * self.count).astype(np.int64)).tolist()

    def contains(self, value: Any) -> bool:
        return float(value).is_integer() and self.low <= int(value) <= self.high

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Integer({self.low}, {self.high}, name={self.name!r})"


class Categorical(Dimension):
    """An unordered categorical dimension (ordinal-encoded in the cube)."""

    def __init__(self, categories: Sequence[Any], *, name: str = "") -> None:
        cats = list(categories)
        if len(cats) < 2:
            raise ValidationError("need at least two categories")
        if len(set(map(repr, cats))) != len(cats):
            raise ValidationError("categories must be distinct")
        self.categories = cats
        self.name = name

    def to_unit(self, value: Any) -> float:
        try:
            index = self.categories.index(value)
        except ValueError:
            raise ValidationError(f"{value!r} not among categories") from None
        return (index + 0.5) / len(self.categories)

    def from_unit(self, u: float) -> Any:
        u = min(max(float(u), 0.0), np.nextafter(1.0, 0.0))
        return self.categories[int(u * len(self.categories))]

    def from_unit_array(self, u: np.ndarray) -> list[Any]:
        u = np.clip(np.asarray(u, dtype=float), 0.0, np.nextafter(1.0, 0.0))
        indices = (u * len(self.categories)).astype(np.int64)
        return [self.categories[i] for i in indices]

    def contains(self, value: Any) -> bool:
        return any(value == c for c in self.categories)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Categorical({self.categories!r}, name={self.name!r})"


class Space:
    """An ordered collection of dimensions with cube transforms."""

    def __init__(self, dimensions: Iterable[Dimension]) -> None:
        self.dimensions = list(dimensions)
        if not self.dimensions:
            raise ValidationError("space needs at least one dimension")
        for i, dim in enumerate(self.dimensions):
            if not dim.name:
                dim.name = f"x{i}"
        names = [d.name for d in self.dimensions]
        if len(set(names)) != len(names):
            raise ValidationError(f"duplicate dimension names: {names}")

    def __len__(self) -> int:
        return len(self.dimensions)

    def __iter__(self):
        return iter(self.dimensions)

    @property
    def names(self) -> list[str]:
        return [d.name for d in self.dimensions]

    def transform(self, points: Sequence[Sequence[Any]]) -> np.ndarray:
        """Native points → unit-cube array (n, d), one vectorized column per
        dimension rather than one Python call per coordinate."""
        for point in points:
            if len(point) != len(self.dimensions):
                raise ValidationError(
                    f"point has {len(point)} values, space has {len(self.dimensions)}"
                )
        out = np.empty((len(points), len(self.dimensions)))
        for j, dim in enumerate(self.dimensions):
            out[:, j] = dim.to_unit_array([point[j] for point in points])
        return out

    def inverse_transform(self, unit_points: np.ndarray) -> list[list[Any]]:
        """Unit-cube array → native points (vectorized per dimension)."""
        unit_points = np.atleast_2d(np.asarray(unit_points, dtype=float))
        if unit_points.shape[1] != len(self.dimensions):
            raise ValidationError(
                f"unit points have {unit_points.shape[1]} columns, "
                f"space has {len(self.dimensions)}"
            )
        columns = [
            dim.from_unit_array(unit_points[:, j])
            for j, dim in enumerate(self.dimensions)
        ]
        return [list(row) for row in zip(*columns)]

    def contains(self, point: Sequence[Any]) -> bool:
        return len(point) == len(self.dimensions) and all(
            dim.contains(v) for dim, v in zip(self.dimensions, point)
        )

    def to_dict(self, point: Sequence[Any]) -> dict[str, Any]:
        """Zip a point with dimension names."""
        return dict(zip(self.names, point))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Space({self.dimensions!r})"

"""The Service base class users override to support their applications."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.errors import DeploymentError

if TYPE_CHECKING:  # pragma: no cover
    from repro.testbed.deployment import Deployment
    from repro.testbed.node import Node
    from repro.testbed.site import Testbed

__all__ = ["Service", "ServiceContext"]


@dataclass
class ServiceContext:
    """Everything a service's ``deploy()`` needs: nodes, testbed, options."""

    testbed: "Testbed"
    deployment: "Deployment"
    nodes: list["Node"]
    options: dict[str, Any] = field(default_factory=dict)

    def option(self, key: str, default: Any = None) -> Any:
        return self.options.get(key, default)


class Service(abc.ABC):
    """Base class for user-defined services (paper Sec. V-C).

    Subclasses override :meth:`deploy` with the distribution of the service
    to physical machines and the software installation logic. The framework
    calls :meth:`deploy` during the experiment's ``launch()`` phase and
    :meth:`destroy` during teardown.

    Class attribute ``name`` identifies the service in configuration files;
    it defaults to the lowercased class name.
    """

    #: configuration identifier; override in subclasses if needed.
    name: str = ""

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        if not cls.name:
            cls.name = cls.__name__.lower()

    def __init__(self) -> None:
        self.deployed = False
        self.placements: list[Any] = []

    @abc.abstractmethod
    def deploy(self, context: ServiceContext) -> None:
        """Place and install the service on ``context.nodes``.

        Implementations should call ``context.deployment.place(...)`` for
        every instance so the placement is captured for reproducibility.
        """

    def destroy(self) -> None:
        """Tear the service down (default: mark undeployed)."""
        self.deployed = False

    # -- helpers for subclasses ---------------------------------------------------

    def require_nodes(self, context: ServiceContext, count: int) -> list["Node"]:
        """Return the first ``count`` nodes, failing with a clear error."""
        if len(context.nodes) < count:
            raise DeploymentError(
                f"service {self.name!r} needs {count} nodes, got {len(context.nodes)}"
            )
        return context.nodes[:count]

    def mark_deployed(self) -> None:
        self.deployed = True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Service {self.name} {'deployed' if self.deployed else 'pending'}>"

"""Layers and scenario definitions: the ``layers_services`` configuration.

E2Clab describes an experiment scenario as *layers* (edge / fog / cloud),
each hosting services mapped onto testbed clusters. A
:class:`ScenarioDefinition` is the in-memory form of that configuration; its
:meth:`ScenarioDefinition.deploy` reserves the nodes, instantiates every
service through the registry, applies the declared network constraints, and
returns the live deployment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.errors import DeploymentError, ValidationError
from repro.services.base import Service, ServiceContext
from repro.services.registry import ServiceRegistry, get_default_registry
from repro.testbed.deployment import Deployment
from repro.testbed.network import Link
from repro.testbed.reservation import ResourceRequest

if TYPE_CHECKING:  # pragma: no cover
    from repro.testbed.site import Testbed

__all__ = ["Layer", "LayerMapping", "ScenarioDefinition", "DeployedScenario"]

#: Conventional layer names of the continuum.
KNOWN_LAYERS = ("edge", "fog", "cloud")


@dataclass(frozen=True)
class LayerMapping:
    """One service placed in a layer, mapped to testbed resources."""

    service: str
    cluster: str
    nodes: int = 1
    require_gpu: bool = False
    options: dict[str, Any] = field(default_factory=dict, hash=False)

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValidationError(f"service {self.service!r} needs >= 1 node")


@dataclass(frozen=True)
class Layer:
    """A named layer grouping service mappings."""

    name: str
    services: tuple[LayerMapping, ...]

    def __post_init__(self) -> None:
        if not self.services:
            raise ValidationError(f"layer {self.name!r} declares no services")


@dataclass
class DeployedScenario:
    """The live result of deploying a scenario."""

    deployment: Deployment
    services: dict[str, Service]
    layer_of_service: dict[str, str]

    def service(self, name: str) -> Service:
        try:
            return self.services[name]
        except KeyError:
            raise DeploymentError(f"service {name!r} not part of this scenario") from None

    def teardown(self) -> None:
        for service in self.services.values():
            service.destroy()
        self.deployment.teardown()
        self.deployment.reservation.release()


@dataclass
class ScenarioDefinition:
    """The experiment scenario: layers, services, network constraints."""

    layers: list[Layer]
    #: (layer_a, layer_b, latency_ms, bandwidth_gbps, loss) network rules.
    network_constraints: list[tuple[str, str, float, float, float]] = field(
        default_factory=list
    )

    def __post_init__(self) -> None:
        names = [layer.name for layer in self.layers]
        if len(set(names)) != len(names):
            raise ValidationError(f"duplicate layer names: {names}")

    def constrain(
        self,
        layer_a: str,
        layer_b: str,
        *,
        latency_ms: float,
        bandwidth_gbps: float,
        loss: float = 0.0,
    ) -> None:
        """Declare an E2Clab-style network constraint between two layers."""
        self.network_constraints.append((layer_a, layer_b, latency_ms, bandwidth_gbps, loss))

    def resource_requests(self) -> list[ResourceRequest]:
        """The reservation this scenario needs (one request per mapping)."""
        return [
            ResourceRequest(cluster=m.cluster, nodes=m.nodes, require_gpu=m.require_gpu)
            for layer in self.layers
            for m in layer.services
        ]

    def deploy(
        self,
        testbed: "Testbed",
        *,
        registry: ServiceRegistry | None = None,
        job_name: str = "scenario",
    ) -> DeployedScenario:
        """Reserve nodes, apply network constraints, deploy every service."""
        registry = registry or get_default_registry()
        reservation = testbed.reserve(self.resource_requests(), job_name=job_name)
        deployment = Deployment(reservation=reservation)

        for layer_a, layer_b, latency, bandwidth, loss in self.network_constraints:
            testbed.network.add_link(
                Link(layer_a, layer_b, latency_ms=latency, bandwidth_gbps=bandwidth, loss=loss)
            )

        services: dict[str, Service] = {}
        layer_of: dict[str, str] = {}
        cursor: dict[str, int] = {}
        try:
            for layer in self.layers:
                for mapping in layer.services:
                    start = cursor.get(mapping.cluster, 0)
                    nodes = reservation.nodes_of(mapping.cluster)[start : start + mapping.nodes]
                    cursor[mapping.cluster] = start + mapping.nodes
                    service = registry.create(mapping.service)
                    context = ServiceContext(
                        testbed=testbed,
                        deployment=deployment,
                        nodes=nodes,
                        options=dict(mapping.options),
                    )
                    service.deploy(context)
                    service.mark_deployed()
                    # A service may be instantiated several times (e.g. a
                    # client fleet per cluster); number the duplicates.
                    key = mapping.service
                    counter = 2
                    while key in services:
                        key = f"{mapping.service}.{counter}"
                        counter += 1
                    services[key] = service
                    layer_of[key] = layer.name
        except Exception:
            deployment.teardown()
            reservation.release()
            raise
        return DeployedScenario(
            deployment=deployment, services=services, layer_of_service=layer_of
        )

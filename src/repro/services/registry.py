"""Service registry: name → Service class resolution for configurations."""

from __future__ import annotations

from typing import Iterator, Type

from repro.errors import ValidationError
from repro.services.base import Service

__all__ = ["ServiceRegistry", "register_service", "get_default_registry"]


class ServiceRegistry:
    """Maps service names to :class:`Service` subclasses."""

    def __init__(self) -> None:
        self._services: dict[str, Type[Service]] = {}

    def register(self, service_cls: Type[Service]) -> Type[Service]:
        """Register a class (usable as a decorator)."""
        if not (isinstance(service_cls, type) and issubclass(service_cls, Service)):
            raise ValidationError(f"{service_cls!r} is not a Service subclass")
        name = service_cls.name
        existing = self._services.get(name)
        if existing is not None and existing is not service_cls:
            raise ValidationError(
                f"service name {name!r} already registered by {existing.__name__}"
            )
        self._services[name] = service_cls
        return service_cls

    def resolve(self, name: str) -> Type[Service]:
        try:
            return self._services[name]
        except KeyError:
            raise ValidationError(
                f"unknown service {name!r}; registered: {sorted(self._services)}"
            ) from None

    def create(self, name: str) -> Service:
        return self.resolve(name)()

    def __contains__(self, name: str) -> bool:
        return name in self._services

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._services))

    def __len__(self) -> int:
        return len(self._services)


_default_registry = ServiceRegistry()


def get_default_registry() -> ServiceRegistry:
    """The process-wide registry used by configuration loading."""
    return _default_registry


def register_service(service_cls: Type[Service]) -> Type[Service]:
    """Decorator registering a service in the default registry.

    Example::

        @register_service
        class FlinkCluster(Service):
            def deploy(self, context): ...
    """
    return _default_registry.register(service_cls)

"""E2Clab *Services* abstraction (paper Sec. V-C).

A *Service* represents any system providing a functionality in the scenario
workflow (a Flink cluster, a Kafka broker, the Pl@ntNet engine, a client
fleet). Users support new applications by subclassing :class:`Service`,
overriding :meth:`Service.deploy` with their placement/installation logic,
and registering the class so E2Clab managers can instantiate it from the
``layers_services`` configuration.

Layers (edge / fog / cloud) group services and map them to testbed
resources; network constraints between layers are applied by the testbed's
:class:`~repro.testbed.network.NetworkEmulator`.
"""

from repro.services.base import Service, ServiceContext
from repro.services.registry import ServiceRegistry, get_default_registry, register_service
from repro.services.layers import Layer, LayerMapping, ScenarioDefinition

__all__ = [
    "Service",
    "ServiceContext",
    "ServiceRegistry",
    "register_service",
    "get_default_registry",
    "Layer",
    "LayerMapping",
    "ScenarioDefinition",
]

"""repro — reproduction of the CLUSTER 2021 E2Clab optimization paper.

This package reproduces *"Reproducible Performance Optimization of Complex
Applications on the Edge-to-Cloud Continuum"* (Rosendo et al., CLUSTER 2021)
as a self-contained Python library:

- :mod:`repro.simcore` — a discrete-event simulation kernel (SimPy-like).
- :mod:`repro.testbed` — a Grid'5000-like testbed simulator (clusters, nodes,
  GPUs, network emulation, reservations, deployments).
- :mod:`repro.engine` — a calibrated simulation of the Pl@ntNet
  Identification Engine (thread pools, task pipeline, CPU/GPU contention).
- :mod:`repro.optimizer` — the paper's contribution: the three-phase
  optimization methodology and the E2Clab *Optimization Manager*.
- :mod:`repro.bayesopt`, :mod:`repro.surrogate`, :mod:`repro.sampling` — a
  scikit-optimize-like Bayesian optimization stack built from scratch.
- :mod:`repro.search` — a Ray-Tune-like asynchronous parallel trial runner.
- :mod:`repro.metaheuristics` — GA / DE / SA / PSO for short-running apps.
- :mod:`repro.sensitivity` — one-at-a-time and Morris sensitivity analysis.
- :mod:`repro.plantnet` — the Pl@ntNet application layer with the paper's
  baseline / preliminary-optimum / refined-optimum configurations.

Quickstart::

    from repro.plantnet import PlantNetScenario, BASELINE
    scenario = PlantNetScenario(config=BASELINE, simultaneous_requests=80)
    result = scenario.run(seed=0)
    print(result.user_response_time.mean)
"""

from repro.version import __version__

__all__ = ["__version__"]

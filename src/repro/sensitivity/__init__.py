"""Sensitivity analysis (paper Sec. IV-C).

The paper refines the preliminary optimum with *One-at-a-time* (OAT)
analysis — vary a single parameter while holding the rest, observe the
output (Hamby 1995, the paper's [43]). :mod:`repro.sensitivity.oat`
implements that workflow generically; :mod:`repro.sensitivity.morris` adds
Morris elementary-effects screening as the natural next step the paper
cites OAT literature from.
"""

from repro.sensitivity.oat import OATAnalysis, OATResult, ParameterSweep
from repro.sensitivity.morris import MorrisAnalysis, MorrisResult

__all__ = [
    "OATAnalysis",
    "OATResult",
    "ParameterSweep",
    "MorrisAnalysis",
    "MorrisResult",
]

"""Morris elementary-effects screening (the multi-start OAT generalization).

For each of ``n_trajectories`` random walks through a ``p``-level grid of
the unit cube, every dimension is perturbed once by ``Δ = p / (2(p−1))``;
the resulting *elementary effects* yield, per dimension,

- ``mu`` — mean effect (signed influence),
- ``mu_star`` — mean absolute effect (overall importance),
- ``sigma`` — standard deviation (non-linearity / interactions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.bayesopt.space import Dimension, Space
from repro.errors import ValidationError

__all__ = ["MorrisResult", "MorrisAnalysis"]


@dataclass(frozen=True)
class MorrisResult:
    """Per-dimension elementary-effect statistics."""

    names: tuple[str, ...]
    mu: tuple[float, ...]
    mu_star: tuple[float, ...]
    sigma: tuple[float, ...]
    n_trajectories: int

    def ranking(self) -> list[str]:
        """Dimension names ordered by decreasing importance (mu_star)."""
        order = np.argsort(self.mu_star)[::-1]
        return [self.names[i] for i in order]

    def to_dict(self) -> dict[str, Any]:
        return {
            name: {"mu": m, "mu_star": ms, "sigma": s}
            for name, m, ms, s in zip(self.names, self.mu, self.mu_star, self.sigma)
        }


class MorrisAnalysis:
    """Computes elementary effects of ``func`` over a space."""

    def __init__(
        self,
        func: Callable[[list[Any]], float],
        space: Space | Sequence[Dimension],
        *,
        n_levels: int = 4,
        seed: int | None = None,
    ) -> None:
        if n_levels < 2 or n_levels % 2:
            raise ValidationError("n_levels must be an even integer >= 2")
        self.func = func
        self.space = space if isinstance(space, Space) else Space(space)
        self.n_levels = int(n_levels)
        self.rng = np.random.default_rng(seed)

    def run(self, n_trajectories: int = 10) -> MorrisResult:
        if n_trajectories < 2:
            raise ValidationError("n_trajectories must be >= 2")
        d = len(self.space)
        p = self.n_levels
        delta = p / (2.0 * (p - 1.0))
        grid = np.arange(p // 2) / (p - 1.0)  # start levels that allow +Δ

        effects: list[list[float]] = [[] for _ in range(d)]
        for _ in range(n_trajectories):
            base = self.rng.choice(grid, size=d)
            current = base.copy()
            f_current = self._evaluate(current)
            for dim in self.rng.permutation(d):
                nxt = current.copy()
                # Step up if room, otherwise step down.
                if nxt[dim] + delta <= 1.0:
                    nxt[dim] += delta
                    sign = 1.0
                else:
                    nxt[dim] -= delta
                    sign = -1.0
                f_next = self._evaluate(nxt)
                effects[dim].append(sign * (f_next - f_current) / delta)
                current, f_current = nxt, f_next

        mu = tuple(float(np.mean(e)) for e in effects)
        mu_star = tuple(float(np.mean(np.abs(e))) for e in effects)
        sigma = tuple(float(np.std(e)) for e in effects)
        return MorrisResult(
            names=tuple(self.space.names),
            mu=mu,
            mu_star=mu_star,
            sigma=sigma,
            n_trajectories=n_trajectories,
        )

    def _evaluate(self, unit: np.ndarray) -> float:
        point = self.space.inverse_transform(unit[None, :])[0]
        return float(self.func(point))

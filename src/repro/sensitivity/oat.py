"""One-at-a-time sensitivity analysis.

The exact procedure of the paper's Sec. IV-C: starting from a reference
configuration (the preliminary optimum), vary one parameter through a list
of values while every other parameter stays fixed, evaluate each variant,
and report the effect on the output metric(s). ``extract ± 2`` and
``simsearch ± 3`` in the paper become two :class:`ParameterSweep` entries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.errors import ValidationError

__all__ = ["ParameterSweep", "OATResult", "OATAnalysis"]

Evaluator = Callable[[dict[str, Any]], Mapping[str, float]]


@dataclass(frozen=True)
class ParameterSweep:
    """One parameter and the values it sweeps through."""

    parameter: str
    values: tuple[Any, ...]

    def __post_init__(self) -> None:
        if len(self.values) < 2:
            raise ValidationError(
                f"sweep for {self.parameter!r} needs >= 2 values, got {self.values}"
            )

    @classmethod
    def around(cls, parameter: str, center: int, delta: int, *, minimum: int = 1) -> "ParameterSweep":
        """The paper's ``center ± delta`` integer sweep (clipped at minimum)."""
        values = tuple(
            v for v in range(center - delta, center + delta + 1) if v >= minimum
        )
        return cls(parameter, values)


@dataclass
class OATResult:
    """All evaluations of one OAT campaign."""

    base_config: dict[str, Any]
    #: parameter -> [(value, metrics dict)] in sweep order.
    sweeps: dict[str, list[tuple[Any, dict[str, float]]]] = field(default_factory=dict)

    def metric_curve(self, parameter: str, metric: str) -> list[tuple[Any, float]]:
        """(value, metric) pairs for one parameter."""
        try:
            entries = self.sweeps[parameter]
        except KeyError:
            raise ValidationError(f"no sweep for parameter {parameter!r}") from None
        return [(value, metrics[metric]) for value, metrics in entries]

    def best(self, parameter: str, metric: str, *, mode: str = "min") -> tuple[Any, float]:
        """The sweep value optimizing ``metric``."""
        curve = self.metric_curve(parameter, metric)
        chooser = min if mode == "min" else max
        return chooser(curve, key=lambda pair: pair[1])

    def refined_config(self, metric: str, *, mode: str = "min") -> dict[str, Any]:
        """Base config with every swept parameter set to its OAT best.

        This is how the paper derives the *refined optimum* from the
        preliminary one (it adopted the extract=6 improvement).
        """
        config = dict(self.base_config)
        for parameter in self.sweeps:
            best_value, _ = self.best(parameter, metric, mode=mode)
            config[parameter] = best_value
        return config

    def effect_size(self, parameter: str, metric: str) -> float:
        """Relative spread of the metric across the sweep (max−min)/mid."""
        values = [v for _, v in self.metric_curve(parameter, metric)]
        lo, hi = min(values), max(values)
        mid = (lo + hi) / 2.0
        return (hi - lo) / mid if mid else 0.0


class OATAnalysis:
    """Runs OAT sweeps against an evaluator.

    ``evaluator`` maps a full configuration dict to a metrics mapping
    (e.g. deploy the engine with that thread-pool configuration and return
    ``{"user_resp_time": ..., "cpu_usage": ...}``).
    """

    def __init__(self, evaluator: Evaluator, base_config: Mapping[str, Any]) -> None:
        self.evaluator = evaluator
        self.base_config = dict(base_config)

    def run(self, sweeps: Sequence[ParameterSweep]) -> OATResult:
        if not sweeps:
            raise ValidationError("no sweeps given")
        result = OATResult(base_config=dict(self.base_config))
        for sweep in sweeps:
            if sweep.parameter not in self.base_config:
                raise ValidationError(
                    f"swept parameter {sweep.parameter!r} not in base config "
                    f"{sorted(self.base_config)}"
                )
            entries: list[tuple[Any, dict[str, float]]] = []
            for value in sweep.values:
                config = dict(self.base_config)
                config[sweep.parameter] = value
                metrics = dict(self.evaluator(config))
                entries.append((value, metrics))
            result.sweeps[sweep.parameter] = entries
        return result

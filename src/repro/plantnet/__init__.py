"""The Pl@ntNet application layer (paper Secs. II-A and IV).

Glues the substrates together for the paper's experiments:

- :mod:`repro.plantnet.configs` — the three configurations of Table IV
  (baseline / preliminary optimum / refined optimum) and Eq. 2's search
  space.
- :mod:`repro.plantnet.service` — the Pl@ntNet engine and client-fleet
  services (the *User-Defined Services* the paper had to implement,
  Sec. V-C).
- :mod:`repro.plantnet.scenario` — the Grid'5000 scenario: 42 nodes,
  10 Gb client links, engine pinned to the V100 cluster; runs repeated
  engine simulations and aggregates them per the measurement protocol.
- :mod:`repro.plantnet.optimization` — the Listing 1 optimization
  (``PlantNetOptimization``) against the scenario.
- :mod:`repro.plantnet.growth` — the synthetic seasonal user-growth
  generator behind Fig. 2.
- :mod:`repro.plantnet.paper` — the paper's published numbers, used by
  the benchmark harness for side-by-side reporting.
"""

from repro.plantnet.configs import (
    BASELINE,
    PRELIMINARY_OPTIMUM,
    REFINED_OPTIMUM,
    paper_search_space,
    paper_problem,
)
from repro.plantnet.scenario import PlantNetScenario, ScenarioResult
from repro.plantnet.optimization import PlantNetOptimization
from repro.plantnet.service import PlantNetEngineService, ClientFleetService
from repro.plantnet.growth import UserGrowthModel
from repro.plantnet.scaleout import ScaleOutScenario, ScaleOutResult

__all__ = [
    "BASELINE",
    "PRELIMINARY_OPTIMUM",
    "REFINED_OPTIMUM",
    "paper_search_space",
    "paper_problem",
    "PlantNetScenario",
    "ScenarioResult",
    "PlantNetOptimization",
    "PlantNetEngineService",
    "ClientFleetService",
    "UserGrowthModel",
    "ScaleOutScenario",
    "ScaleOutResult",
]

"""Pl@ntNet configurations and the Eq. 2 optimization problem."""

from __future__ import annotations

from repro.bayesopt.space import Integer, Space
from repro.engine.calibration import PRELIMINARY_OPTIMUM, REFINED_OPTIMUM
from repro.engine.config import BASELINE_CONFIG as BASELINE
from repro.engine.config import PAPER_SPACE_BOUNDS
from repro.optimizer.problem import MetricConstraint, Objective, OptimizationProblem

__all__ = [
    "BASELINE",
    "PRELIMINARY_OPTIMUM",
    "REFINED_OPTIMUM",
    "paper_search_space",
    "paper_problem",
    "USER_RESPONSE_METRIC",
    "MAX_TOLERATED_RESPONSE_TIME",
]

#: metric name used throughout (Listing 1: ``metric="user_resp_time"``).
USER_RESPONSE_METRIC = "user_resp_time"

#: "to achieve a 4 seconds response time (the maximum tolerated by users)".
MAX_TOLERATED_RESPONSE_TIME = 4.0


def paper_search_space() -> Space:
    """The Eq. 2 search space: http/download/simsearch ∈ [20,60], extract ∈ [3,9]."""
    return Space(
        [
            Integer(*PAPER_SPACE_BOUNDS["http"], name="http"),
            Integer(*PAPER_SPACE_BOUNDS["download"], name="download"),
            Integer(*PAPER_SPACE_BOUNDS["simsearch"], name="simsearch"),
            Integer(*PAPER_SPACE_BOUNDS["extract"], name="extract"),
        ]
    )


def paper_problem(*, with_tolerance_constraint: bool = False) -> OptimizationProblem:
    """Eq. 2: minimize UserResponseTime subject to the pool-size bounds.

    ``with_tolerance_constraint`` adds the 4-second response-time ceiling
    as an explicit metric constraint (the paper discusses it as the user
    tolerance; Eq. 2 itself carries only the bounds).
    """
    constraints = (
        [MetricConstraint(USER_RESPONSE_METRIC, MAX_TOLERATED_RESPONSE_TIME, "<=")]
        if with_tolerance_constraint
        else []
    )
    return OptimizationProblem(
        paper_search_space(),
        Objective(metric=USER_RESPONSE_METRIC, mode="min"),
        constraints=constraints,
    )

"""The Grid'5000 Pl@ntNet scenario (paper Sec. IV experimental setup).

Reproduces the paper's deployment: 42 nodes — the Identification Engine on
*chifflot* (Tesla V100), clients on *chiclet*, *chetemi*, *chifflet* and
*gros* — with the client↔engine network configured at 10 Gb. A scenario run

1. reserves and deploys the services on the simulated testbed (capturing
   the deployment manifest for provenance),
2. executes the engine DES for the requested duration, once per
   repetition with independent seeds (the paper: 7 repetitions × 23 min,
   metrics every 10 s),
3. aggregates the repetitions into the paper's ``mean (± std)`` over all
   samples.

The client fleet's closed-loop behaviour is folded into the engine DES as
its client population; the deployed :class:`ClientFleetService` carries the
placement provenance, and the network path between the client clusters and
*chifflot* contributes the round-trip latency to every response.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any

from repro.engine.config import EngineModelParams, ThreadPoolConfig, WorkloadSpec
from repro.engine.engine import IdentificationEngine
from repro.engine.hybrid import HybridEngine, HybridKnobs
from repro.engine.metrics import EngineRunResult
from repro.engine.schedule import ArrivalSchedule
from repro.errors import ValidationError
from repro.monitoring.aggregate import RepetitionAggregate, aggregate_runs
from repro.services.layers import Layer, LayerMapping, ScenarioDefinition
from repro.testbed.catalog import grid5000
from repro.utils.seeding import derive_seed

__all__ = ["PlantNetScenario", "ScenarioResult"]

#: node split of the paper's 42-node reservation (1 engine + 41 clients).
CLIENT_NODES: dict[str, int] = {"chiclet": 8, "chetemi": 13, "chifflet": 8, "gros": 12}


@dataclass
class ScenarioResult:
    """Aggregated outcome of one scenario campaign (all repetitions)."""

    config: ThreadPoolConfig
    simultaneous_requests: int
    aggregate: RepetitionAggregate
    runs: list[EngineRunResult] = field(default_factory=list)
    deployment_manifest: list[dict[str, Any]] = field(default_factory=list)

    @property
    def user_response_time(self):  # -> Summary
        return self.aggregate.user_response_time

    def metrics(self) -> dict[str, float]:
        """Flat metrics mapping for the optimization layer."""
        agg = self.aggregate
        out: dict[str, float] = {
            "user_resp_time": agg.user_response_time.mean,
            "user_resp_time_std": agg.user_response_time.std,
            "throughput": agg.throughput.mean,
            "cpu_usage": agg.cpu_usage.mean,
            "gpu_utilization": agg.gpu_utilization.mean,
            "gpu_memory_gb": agg.gpu_memory_gb,
            "system_memory_gb": agg.system_memory_gb,
        }
        for name, summary in agg.task_times.items():
            out[f"task_{name}"] = summary.mean
        for name, summary in agg.pool_busy.items():
            out[f"busy_{name}"] = summary.mean
        # tail latency and energy (extensions beyond the paper's means)
        p95 = [r.response_percentiles.get("p95") for r in self.runs if r.response_percentiles]
        if p95:
            out["user_resp_time_p95"] = float(sum(p95) / len(p95))
        energy = [r.node_energy_wh + r.gpu_energy_wh for r in self.runs]
        if energy:
            out["energy_wh"] = float(sum(energy) / len(energy))
        return out


class PlantNetScenario:
    """Deploys and runs the Pl@ntNet workflow on the simulated testbed."""

    def __init__(
        self,
        *,
        params: EngineModelParams | None = None,
        duration: float = 1380.0,
        warmup: float = 60.0,
        sample_interval: float = 10.0,
        repetitions: int = 1,
        base_seed: int = 0,
        use_testbed: bool = True,
        warm_reuse: bool = True,
        fast_lane: bool = True,
        arrival_schedule: ArrivalSchedule | None = None,
        engine_mode: str = "des",
        hybrid_knobs: HybridKnobs | None = None,
    ) -> None:
        self.params = params or EngineModelParams()
        self.duration = float(duration)
        self.warmup = float(warmup)
        self.sample_interval = float(sample_interval)
        self.repetitions = int(max(1, repetitions))
        self.base_seed = int(base_seed)
        self.use_testbed = use_testbed
        #: keep the deployment alive between runs and morph it via
        #: Deployment.reconfigure() instead of re-placing every trial
        #: (the paper's reconfiguration phase; see DESIGN.md).
        self.warm_reuse = bool(warm_reuse)
        #: forwarded to the engine DES (plain-delay fast lane).
        self.fast_lane = bool(fast_lane)
        #: open-loop demand curve: when set, runs replace the paper's
        #: closed-loop population with this schedule (e.g. from
        #: :meth:`repro.plantnet.growth.UserGrowthModel.arrival_schedule`).
        self.arrival_schedule = arrival_schedule
        #: ``"des"`` (exact, every request simulated) or ``"hybrid"``
        #: (fluid fast-forwarding with DES sampling windows; open-loop
        #: schedules only).
        if engine_mode not in ("des", "hybrid"):
            raise ValidationError(
                f"engine_mode must be 'des' or 'hybrid', got {engine_mode!r}"
            )
        if engine_mode == "hybrid" and arrival_schedule is None:
            raise ValidationError("engine_mode='hybrid' needs an arrival_schedule")
        self.engine_mode = engine_mode
        self.hybrid_knobs = hybrid_knobs
        self._warm: dict[int, dict[str, Any]] = {}
        self._warm_lock = threading.Lock()

    # -- scenario definition -----------------------------------------------------------

    def definition(
        self, config: ThreadPoolConfig, simultaneous_requests: int
    ) -> ScenarioDefinition:
        """The layers/services configuration for this run."""
        cloud = Layer(
            name="cloud",
            services=(
                LayerMapping(
                    service="plantnet-engine",
                    cluster="chifflot",
                    nodes=1,
                    require_gpu=True,
                    options={"config": config, "cores": 40},
                ),
            ),
        )
        clusters = list(CLIENT_NODES)
        base_share, extra = divmod(simultaneous_requests, len(clusters))
        shares = {
            cluster: base_share + (1 if i < extra else 0)
            for i, cluster in enumerate(clusters)
        }
        edge = Layer(
            name="edge",
            services=tuple(
                LayerMapping(
                    service="plantnet-clients",
                    cluster=cluster,
                    nodes=count,
                    options={"simultaneous_requests": max(1, shares[cluster])},
                )
                for cluster, count in CLIENT_NODES.items()
            ),
        )
        definition = ScenarioDefinition(layers=[cloud, edge])
        # The paper: "The network connection is configured with 10Gb."
        definition.constrain("edge", "cloud", latency_ms=0.5, bandwidth_gbps=10.0)
        return definition

    # -- deployment ----------------------------------------------------------------------

    def _place(
        self, config: ThreadPoolConfig, simultaneous_requests: int
    ) -> dict[str, Any]:
        """Reserve nodes and deploy all services (the cold path)."""
        testbed = grid5000()
        # Unique service instances per cluster would collide in the
        # registry by name; deploy the cloud layer plus one aggregated
        # client mapping per cluster manually for provenance.
        reservation = testbed.reserve(
            self.definition(config, simultaneous_requests).resource_requests(),
            job_name="plantnet",
        )
        from repro.plantnet.service import ClientFleetService, PlantNetEngineService
        from repro.services.base import ServiceContext
        from repro.testbed.deployment import Deployment

        deployment = Deployment(reservation=reservation)
        engine_service = PlantNetEngineService()
        engine_service.deploy(
            ServiceContext(
                testbed=testbed,
                deployment=deployment,
                nodes=reservation.nodes_of("chifflot"),
                options={"config": config, "cores": 40},
            )
        )
        remaining = simultaneous_requests
        clusters = list(CLIENT_NODES)
        per_cluster = max(1, simultaneous_requests // len(clusters))
        for i, cluster in enumerate(clusters):
            share = remaining if i == len(clusters) - 1 else min(per_cluster, remaining)
            if share <= 0:
                continue
            fleet = ClientFleetService()
            fleet.deploy(
                ServiceContext(
                    testbed=testbed,
                    deployment=deployment,
                    nodes=reservation.nodes_of(cluster),
                    options={"simultaneous_requests": share},
                )
            )
            remaining -= share
        return {
            "testbed": testbed,
            "reservation": reservation,
            "deployment": deployment,
            "client_path": testbed.network.path("gros", "chifflot"),
        }

    def _deploy(
        self, config: ThreadPoolConfig, simultaneous_requests: int
    ) -> tuple[list[dict[str, Any]], Any]:
        """Deploy (or warm-reuse) the scenario; return (manifest, client path).

        With :attr:`warm_reuse` the first run per client population places
        everything and keeps the reservation; subsequent runs only
        ``reconfigure()`` the engine's thread pools on the live deployment
        — the placement signature is per-construction identical, so no
        node is re-placed and nothing is torn down between trials.
        """
        if not self.warm_reuse:
            entry = self._place(config, simultaneous_requests)
            deployment = entry["deployment"]
            manifest = deployment.manifest()
            deployment.teardown()
            entry["reservation"].release()
            return manifest, entry["client_path"]

        with self._warm_lock:
            entry = self._warm.get(simultaneous_requests)
            if entry is None:
                entry = self._place(config, simultaneous_requests)
                self._warm[simultaneous_requests] = entry
            else:
                entry["deployment"].reconfigure(
                    "plantnet-engine", thread_pools=config.to_dict()
                )
            return entry["deployment"].manifest(), entry["client_path"]

    def fingerprint(self) -> dict[str, Any]:
        """Everything besides the configuration that determines a result.

        Feeds the :class:`~repro.search.evalcache.EvalCache` key, so two
        scenarios differing in seeds, durations, or model parameters never
        share cache entries. Execution knobs (``warm_reuse``,
        ``use_testbed``, ``fast_lane``) are deliberately excluded — they
        change *how* a trial runs, not *what* it measures (the fast lane
        is byte-identical by construction).
        """
        out: dict[str, Any] = {
            "params": self.params.to_dict(),
            "duration": self.duration,
            "warmup": self.warmup,
            "sample_interval": self.sample_interval,
            "repetitions": self.repetitions,
            "base_seed": self.base_seed,
        }
        # Open-loop/hybrid runs measure something different from the
        # closed-loop default (and the hybrid is an approximation), so
        # both must split the cache key.
        if self.arrival_schedule is not None:
            out["arrival_schedule"] = self.arrival_schedule.to_dict()
        if self.engine_mode != "des":
            out["engine_mode"] = self.engine_mode
            knobs = self.hybrid_knobs or HybridKnobs()
            out["hybrid_knobs"] = {
                "epoch": knobs.epoch,
                "sample_every": knobs.sample_every,
                "window": knobs.window,
                "error_bound": knobs.error_bound,
            }
        return out

    def close(self) -> None:
        """Tear down any warm deployments and release their reservations."""
        with self._warm_lock:
            for entry in self._warm.values():
                entry["deployment"].teardown()
                entry["reservation"].release()
            self._warm.clear()

    def __enter__(self) -> "PlantNetScenario":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- execution ----------------------------------------------------------------------

    def run(
        self,
        config: ThreadPoolConfig,
        simultaneous_requests: int = 80,
        *,
        repetitions: int | None = None,
        duration: float | None = None,
        seed: int | None = None,
    ) -> ScenarioResult:
        """Deploy (for provenance) and simulate all repetitions."""
        reps = self.repetitions if repetitions is None else max(1, int(repetitions))
        duration = self.duration if duration is None else float(duration)
        base_seed = self.base_seed if seed is None else int(seed)

        manifest: list[dict[str, Any]] = []
        client_path = None
        if self.use_testbed:
            manifest, client_path = self._deploy(config, simultaneous_requests)

        runs: list[EngineRunResult] = []
        for repetition in range(reps):
            seed_rep = derive_seed(base_seed, "plantnet", repetition)
            if self.arrival_schedule is not None:
                workload = WorkloadSpec(
                    arrival_schedule=self.arrival_schedule,
                    duration=duration,
                    sample_interval=self.sample_interval,
                    warmup=self.warmup,
                )
            else:
                workload = WorkloadSpec(
                    simultaneous_requests=simultaneous_requests,
                    duration=duration,
                    sample_interval=self.sample_interval,
                    warmup=self.warmup,
                )
            if self.engine_mode == "hybrid":
                runs.append(
                    HybridEngine(
                        config,
                        workload,
                        self.params,
                        knobs=self.hybrid_knobs,
                        seed=seed_rep,
                        fast_lane=self.fast_lane,
                    ).run()
                )
            else:
                engine = IdentificationEngine(
                    config,
                    workload,
                    self.params,
                    seed=seed_rep,
                    client_path=client_path,
                    fast_lane=self.fast_lane,
                )
                runs.append(engine.run())

        return ScenarioResult(
            config=config,
            simultaneous_requests=simultaneous_requests,
            aggregate=aggregate_runs(runs),
            runs=runs,
            deployment_manifest=manifest,
        )

    def evaluate(
        self,
        config_dict: dict[str, Any],
        simultaneous_requests: int = 80,
        *,
        seed: int | None = None,
        duration: float | None = None,
        repetitions: int | None = None,
    ) -> dict[str, float]:
        """Objective-style entry point: config dict in, metrics out."""
        config = ThreadPoolConfig.from_dict(config_dict)
        result = self.run(
            config,
            simultaneous_requests,
            seed=seed,
            duration=duration,
            repetitions=repetitions,
        )
        return result.metrics()

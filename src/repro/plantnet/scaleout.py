"""Scale-out of the Identification Engine (paper Sec. V-B outlook).

The paper's discussion: "The parallel evaluation of the application
configuration has the potential to scale to hundreds of machines" — and
Pl@ntNet's own capacity question (the spring peak) is ultimately answered
by *adding engine nodes*. This module models the horizontal scale-out: N
engine replicas behind an ideal least-loaded balancer, each replica an
independent engine node on its own chifflot machine.

With a closed population of R clients and N identical replicas, an ideal
balancer pins R/N clients per replica; replicas are independent (no shared
state — Pl@ntNet's engine is stateless per request), so the system is N
parallel closed networks. Response time is pooled over replicas,
throughput summed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.config import EngineModelParams, ThreadPoolConfig, WorkloadSpec
from repro.engine.engine import IdentificationEngine
from repro.engine.metrics import EngineRunResult
from repro.errors import ValidationError
from repro.utils.seeding import derive_seed
from repro.utils.stats import RunningStats, Summary

__all__ = ["ScaleOutResult", "ScaleOutScenario"]


@dataclass
class ScaleOutResult:
    """Pooled outcome of one scale-out run."""

    config: ThreadPoolConfig
    replicas: int
    simultaneous_requests: int
    user_response_time: Summary
    total_throughput: float
    gpu_memory_gb_per_node: float
    total_gpu_memory_gb: float
    per_replica: list[EngineRunResult] = field(default_factory=list)

    def meets_tolerance(self, tolerance_s: float = 4.0) -> bool:
        return self.user_response_time.mean <= tolerance_s


class ScaleOutScenario:
    """Run one configuration on N engine replicas with split population."""

    def __init__(
        self,
        *,
        params: EngineModelParams | None = None,
        duration: float = 345.0,
        warmup: float = 60.0,
        base_seed: int = 0,
        max_replicas: int = 8,
    ) -> None:
        self.params = params or EngineModelParams()
        self.duration = float(duration)
        self.warmup = float(warmup)
        self.base_seed = int(base_seed)
        #: the simulated chifflot cluster has 8 GPU nodes.
        self.max_replicas = int(max_replicas)

    def run(
        self,
        config: ThreadPoolConfig,
        simultaneous_requests: int,
        replicas: int = 1,
        *,
        seed: int | None = None,
    ) -> ScaleOutResult:
        if replicas < 1:
            raise ValidationError("replicas must be >= 1")
        if replicas > self.max_replicas:
            raise ValidationError(
                f"chifflot offers {self.max_replicas} GPU nodes; requested {replicas}"
            )
        if simultaneous_requests < replicas:
            raise ValidationError("need at least one client per replica")
        base_seed = self.base_seed if seed is None else int(seed)

        base, extra = divmod(simultaneous_requests, replicas)
        runs: list[EngineRunResult] = []
        pooled = RunningStats()
        throughput = 0.0
        for replica in range(replicas):
            population = base + (1 if replica < extra else 0)
            workload = WorkloadSpec(
                simultaneous_requests=population,
                duration=self.duration,
                warmup=self.warmup,
            )
            engine = IdentificationEngine(
                config,
                workload,
                self.params,
                seed=derive_seed(base_seed, "replica", replica),
            )
            result = engine.run()
            runs.append(result)
            pooled.extend(result.series.user_response_time.values)
            throughput += result.throughput

        gpu_per_node = runs[0].gpu_memory_gb
        return ScaleOutResult(
            config=config,
            replicas=replicas,
            simultaneous_requests=simultaneous_requests,
            user_response_time=pooled.summary(),
            total_throughput=throughput,
            gpu_memory_gb_per_node=gpu_per_node,
            total_gpu_memory_gb=gpu_per_node * replicas,
            per_replica=runs,
        )

    def replicas_needed(
        self,
        config: ThreadPoolConfig,
        simultaneous_requests: int,
        *,
        tolerance_s: float = 4.0,
        seed: int | None = None,
    ) -> tuple[int, ScaleOutResult]:
        """Smallest replica count meeting the response-time tolerance.

        The capacity-planning primitive: "how many engine nodes do we need
        for the spring peak?"
        """
        last: ScaleOutResult | None = None
        for replicas in range(1, self.max_replicas + 1):
            result = self.run(config, simultaneous_requests, replicas, seed=seed)
            last = result
            if result.meets_tolerance(tolerance_s):
                return replicas, result
        raise ValidationError(
            f"even {self.max_replicas} replicas cannot serve "
            f"{simultaneous_requests} requests within {tolerance_s}s "
            f"(best: {last.user_response_time.mean:.2f}s)"  # type: ignore[union-attr]
        )

"""The paper's published numbers, for side-by-side benchmark reporting.

Every value here is transcribed from the paper (tables, figures, or the
prose); the benchmark harness prints *paper vs measured* rows and asserts
only the qualitative shape, never exact equality — our substrate is a
calibrated simulator, not the authors' Grid'5000 testbed.
"""

from __future__ import annotations

from repro.plantnet.configs import BASELINE, PRELIMINARY_OPTIMUM, REFINED_OPTIMUM

__all__ = [
    "TABLE_III",
    "TABLE_IV",
    "FIG3_BASELINE_120",
    "FIG8_GAINS_PRELIMINARY",
    "FIG11_GAINS_REFINED",
    "FIG9_EXTRACT_SWEEP",
    "FIG10_SIMSEARCH_SWEEP",
    "GPU_MEMORY_CLAIM",
    "WORKLOADS",
]

#: the three workloads of Sec. IV (simultaneous requests).
WORKLOADS = (80, 120, 140)

#: Table III: baseline vs preliminary optimum at 80 simultaneous requests.
TABLE_III = {
    "baseline": {"config": BASELINE, "user_resp_time": 2.657, "std": 0.0914},
    "preliminary": {
        "config": PRELIMINARY_OPTIMUM,
        "user_resp_time": 2.484,
        "std": 0.0912,
    },
    "convergence_evaluations": 9,
}

#: Table IV adds the refined optimum (extract 6).
TABLE_IV = {
    "baseline": {"config": BASELINE, "user_resp_time": 2.657, "std": 0.0914},
    "preliminary": {
        "config": PRELIMINARY_OPTIMUM,
        "user_resp_time": 2.484,
        "std": 0.0912,
    },
    "refined": {"config": REFINED_OPTIMUM, "user_resp_time": 2.476, "std": 0.0826},
}

#: Fig. 3: the baseline serves at most 120 simultaneous requests within the
#: 4-second tolerance (3.86 ± 0.13 s at 120).
FIG3_BASELINE_120 = {"user_resp_time": 3.86, "std": 0.13, "tolerance_s": 4.0}

#: Fig. 8: preliminary-vs-baseline response-time gain per workload.
FIG8_GAINS_PRELIMINARY = {80: 0.069, 120: 0.022, 140: 0.067}

#: Fig. 11 / Sec. IV-C: refined-vs-baseline gain per workload.
FIG11_GAINS_REFINED = {80: 0.072, 120: 0.063, 140: 0.098}

#: Fig. 9 qualitative facts for the extract OAT (pool sizes 5..9 around the
#: preliminary optimum).
FIG9_EXTRACT_SWEEP = {
    "values": (5, 6, 7, 8, 9),
    "best": 6,
    #: Fig. 9a: extract=6 cuts response time by ~8.5 % vs 7 (Table IV says
    #: 0.3 % for the same change — the paper's own campaigns disagree; we
    #: assert only the ordering).
    "gain_6_vs_7_fig9a": 0.085,
    "gain_6_vs_7_table4": 0.003,
    "extract_busy_100_at": (5, 6, 7),
    "extract_busy_80_100_at": (8, 9),
    "cpu_saturated_at": (8, 9),
    "simsearch_busy_at_567": (0.50, 0.55, 0.60),
    "simsearch_busy_at_89_min": 0.8,
}

#: Fig. 10 qualitative facts for the simsearch OAT (52..56).
FIG10_SIMSEARCH_SWEEP = {
    "values": (52, 53, 54, 55, 56),
    "best": 55,
    "gain_55_vs_53": 0.04,
    #: the paper nonetheless keeps simsearch=53 in the refined optimum
    #: (Table IV), implying the dip is within run-to-run variance.
    "adopted_in_refined": 53,
}

#: Sec. IV-C summary / conclusions: ~30 % less GPU memory (7 GB vs 10 GB).
GPU_MEMORY_CLAIM = {"refined_gb": 7.0, "baseline_gb": 10.0, "reduction": 0.30}

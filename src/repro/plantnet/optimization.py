"""The Pl@ntNet optimization — the reproduction of paper Listing 1.

``PlantNetOptimization`` inherits the framework's :class:`Optimization`
and wires the Eq. 2 problem to the Grid'5000 scenario. Its :meth:`run`
mirrors Listing 1: Extra-Trees surrogate, LHS initial design, gp_hedge
acquisition, a concurrency limiter of 2, the AsyncHyperBand scheduler, and
``metric="user_resp_time", mode="min"``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Mapping

from repro.engine.config import EngineModelParams
from repro.optimizer.optimization import Optimization
from repro.optimizer.summary import ReproducibilitySummary
from repro.plantnet.configs import paper_problem
from repro.plantnet.scenario import PlantNetScenario
from repro.search.algos import ConcurrencyLimiter, SurrogateSearch
from repro.search.evalcache import EvalCache
from repro.search.schedulers import AsyncHyperBandScheduler

__all__ = ["PlantNetOptimization"]


class PlantNetOptimization(Optimization):
    """Find the thread-pool configuration minimizing user response time.

    Parameters
    ----------
    simultaneous_requests:
        The workload; the paper uses 80 for the search (it must exceed the
        HTTP upper bound of 60, since the HTTP pool is the number of
        requests being processed).
    duration / repetitions:
        Per-evaluation simulation length and repetition count. The paper
        runs 23-minute experiments; the default here is shorter so a
        search of tens of evaluations stays interactive — pass
        ``duration=1380`` for the full protocol.
    """

    def __init__(
        self,
        *,
        simultaneous_requests: int = 80,
        duration: float = 300.0,
        warmup: float = 60.0,
        repetitions: int = 1,
        n_initial_points: int = 10,
        num_samples: int = 25,
        max_concurrent: int = 2,
        executor: str = "sync",
        params: EngineModelParams | None = None,
        workdir: str | Path = ".repro-optimizations",
        seed: int = 0,
        warm_reuse: bool = True,
        fast_lane: bool = True,
        eval_cache: bool = True,
    ) -> None:
        super().__init__(
            paper_problem(),
            name="plantnet_engine",
            workdir=workdir,
            seed=seed,
            description=(
                "Reproduction of paper Listing 1: minimize user_resp_time over "
                "the Eq. 2 thread-pool space"
            ),
        )
        self.simultaneous_requests = int(simultaneous_requests)
        self.n_initial_points = int(n_initial_points)
        self.num_samples = int(num_samples)
        self.max_concurrent = int(max_concurrent)
        self.executor = executor
        self.scenario = PlantNetScenario(
            params=params,
            duration=duration,
            warmup=warmup,
            repetitions=repetitions,
            base_seed=seed,
            use_testbed=True,
            warm_reuse=warm_reuse,
            fast_lane=fast_lane,
        )
        self.use_eval_cache = bool(eval_cache)

    # -- Listing 1 line 31: deploy the configs on the testbed ------------------------

    def launch(self, config: Mapping[str, Any], **kwargs: Any) -> dict[str, float]:
        return self.scenario.evaluate(
            dict(config),
            self.simultaneous_requests,
            seed=kwargs.get("seed"),
            duration=kwargs.get("duration"),
            repetitions=kwargs.get("repetitions"),
        )

    # -- Listing 1 lines 5-26: the search definition ----------------------------------

    def run(self) -> ReproducibilitySummary:
        algo = SurrogateSearch(
            self.problem.space,
            mode="min",
            base_estimator="ET",
            n_initial_points=self.n_initial_points,
            initial_point_generator="lhs",
            acq_func="gp_hedge",
            random_state=self.seed,
        )
        limited = ConcurrencyLimiter(algo, max_concurrent=self.max_concurrent)
        scheduler = AsyncHyperBandScheduler(mode="min")
        cache = None
        if self.use_eval_cache:
            # Key = canonical thread-pool config + the scenario fingerprint
            # (seeds, durations, model params) + the workload intensity.
            cache = EvalCache(
                path=self.archive.root / "evalcache.jsonl",
                fingerprint={
                    "scenario": self.scenario.fingerprint(),
                    "simultaneous_requests": self.simultaneous_requests,
                },
            )
        try:
            return self.execute(
                num_samples=self.num_samples,
                search_alg=limited,
                scheduler=scheduler,
                executor=self.executor,
                max_workers=self.max_concurrent,
                algorithm_info={
                    "search": "SurrogateSearch (SkOptSearch analogue)",
                    "base_estimator": "ET",
                    "n_initial_points": self.n_initial_points,
                    "initial_point_generator": "lhs",
                    "acq_func": "gp_hedge",
                    "max_concurrent": self.max_concurrent,
                    "scheduler": "AsyncHyperBandScheduler",
                },
                sampling_info={"generator": "lhs", "n_points": self.n_initial_points},
                eval_cache=cache,
            )
        finally:
            # Warm deployments outlive individual trials by design; the
            # campaign end is where they are finally torn down.
            self.scenario.close()

"""Synthetic Pl@ntNet user-growth model (paper Fig. 2).

Fig. 2 shows "exponential growth of new users every spring (peaks in
May–June)". The real registration data is not public, so this model
generates the same shape: an exponential baseline modulated by an annual
seasonal peak centred on late May, with multiplicative noise. It drives the
capacity-planning example (how many simultaneous requests to expect next
spring) that motivates the paper's optimization question.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.utils.seeding import spawn_rng
from repro.utils.timeseries import TimeSeries

__all__ = ["UserGrowthModel"]

_DAYS_PER_YEAR = 365.25
#: fraction of the year where the seasonal peak is centred (~May 25).
_PEAK_PHASE = 0.40


@dataclass(frozen=True)
class UserGrowthModel:
    """New-users-per-day generator with spring peaks.

    ``rate(t) = base · exp(growth·t) · (1 + amplitude · bump(season(t)))``
    where ``bump`` is a narrow Gaussian around the spring peak.
    """

    #: new users/day at t=0.
    base_rate: float = 2000.0
    #: yearly exponential growth factor (0.35 ≈ +42 %/year).
    yearly_growth: float = 0.35
    #: relative height of the spring peak over the baseline.
    peak_amplitude: float = 2.5
    #: width of the spring peak as a fraction of the year.
    peak_width: float = 0.06
    noise_cv: float = 0.08

    def __post_init__(self) -> None:
        if self.base_rate <= 0:
            raise ValidationError("base_rate must be positive")
        if self.peak_width <= 0:
            raise ValidationError("peak_width must be positive")
        if self.noise_cv < 0:
            raise ValidationError("noise_cv must be >= 0")

    def expected_rate(self, day: float) -> float:
        """Deterministic new-users/day at ``day`` (days since t=0)."""
        years = day / _DAYS_PER_YEAR
        trend = self.base_rate * math.exp(self.yearly_growth * years)
        season = (years - _PEAK_PHASE) % 1.0
        # distance to the peak on the circular year
        dist = min(season, 1.0 - season)
        bump = math.exp(-0.5 * (dist / self.peak_width) ** 2)
        return trend * (1.0 + self.peak_amplitude * bump)

    def generate(self, days: int, *, seed: int | None = 0) -> TimeSeries:
        """Daily new-user counts for ``days`` days (Fig. 2's series)."""
        if days < 1:
            raise ValidationError("days must be >= 1")
        rng = spawn_rng(seed)
        series = TimeSeries("new_users_per_day")
        for day in range(days):
            rate = self.expected_rate(float(day))
            noisy = rate * float(rng.lognormal(0.0, self.noise_cv)) if self.noise_cv else rate
            series.append(float(day), noisy)
        return series

    def spring_peak_ratio(self, year: int = 0) -> float:
        """Peak-to-trough ratio within one year (Fig. 2's 'peaks')."""
        days = np.arange(int(year * _DAYS_PER_YEAR), int((year + 1) * _DAYS_PER_YEAR))
        rates = np.array([self.expected_rate(float(d)) for d in days])
        return float(rates.max() / rates.min())

    def cumulative_users(self, day: float) -> float:
        """Total registered users by ``day`` (integral of the growth curve)."""
        # integrate expected_rate from 0..day (trapezoid, coarse 1-day grid)
        days = np.arange(0.0, max(day, 1.0))
        if len(days) < 2:
            return 0.0
        return float(np.trapezoid([self.expected_rate(d) for d in days], days))

    def expected_simultaneous_requests(
        self, day: float, *, requests_per_user_per_day: float = 0.04, mean_response_s: float = 3.0
    ) -> float:
        """Translate user growth into engine load (capacity planning).

        A crude Little's-law bridge: cumulative users × daily request rate
        spread over the day gives arrivals/s; times the mean response time
        gives the expected simultaneous requests in the engine.
        """
        arrivals_per_s = self.cumulative_users(day) * requests_per_user_per_day / 86400.0
        return arrivals_per_s * mean_response_s

    def arrival_schedule(
        self,
        day: float | None = None,
        *,
        users: float | None = None,
        requests_per_user_per_day: float = 0.04,
        diurnal_ratio: float = 3.0,
        period: float = 86400.0,
        steps: int = 96,
    ):
        """One day of open-loop demand as an arrival-rate schedule.

        The growth model gives the *user base* (either at growth day
        ``day``, or an explicit ``users`` count — exactly one of the two);
        the bridge to engine load is the same daily request rate used by
        :meth:`expected_simultaneous_requests`, but distributed over the
        day as a diurnal curve whose peak-to-trough ratio is
        ``diurnal_ratio`` and whose *mean* matches the user base — the
        open-loop counterpart of the closed-loop capacity-planning number.
        """
        from repro.engine.schedule import ArrivalSchedule

        if (day is None) == (users is None):
            raise ValidationError("pass exactly one of day/users")
        if users is None:
            assert day is not None
            users = self.cumulative_users(day)
        if users <= 0:
            raise ValidationError(f"user base must be positive, got {users}")
        if diurnal_ratio < 1.0:
            raise ValidationError(f"diurnal_ratio must be >= 1, got {diurnal_ratio}")
        mean_rate = users * requests_per_user_per_day / 86400.0
        # diurnal mean is (base + peak) / 2; preserve it under the ratio.
        base = 2.0 * mean_rate / (1.0 + diurnal_ratio)
        return ArrivalSchedule.diurnal(
            base, base * diurnal_ratio, period=period, steps=steps
        )

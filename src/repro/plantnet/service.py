"""User-defined services for the Pl@ntNet scenario (paper Sec. V-C).

The paper states: *"in the work described in this paper, we had to
implement the Pl@ntNet service"*. These are those services for the
simulated testbed: the Identification Engine (GPU node, Docker-like
resource claim) and the client fleet that submits requests.
"""

from __future__ import annotations


from repro.errors import DeploymentError
from repro.engine.config import ThreadPoolConfig
from repro.services.base import Service, ServiceContext
from repro.services.registry import register_service

__all__ = ["PlantNetEngineService", "ClientFleetService"]


@register_service
class PlantNetEngineService(Service):
    """The Identification Engine: one GPU node, pinned thread pools.

    Options:

    - ``config`` — a :class:`ThreadPoolConfig` or its dict form (required).
    - ``cores`` — CPU cores claimed by the engine container (default 40,
      paper Sec. II-A).
    - ``memory_gb`` — container memory claim (default 64).
    """

    name = "plantnet-engine"

    def __init__(self) -> None:
        super().__init__()
        self.config: ThreadPoolConfig | None = None
        self.node_name: str | None = None

    def deploy(self, context: ServiceContext) -> None:
        raw = context.option("config")
        if raw is None:
            raise DeploymentError("plantnet-engine needs a 'config' option")
        self.config = (
            raw if isinstance(raw, ThreadPoolConfig) else ThreadPoolConfig.from_dict(raw)
        )
        node = self.require_nodes(context, 1)[0]
        if node.spec.gpu_count == 0:
            raise DeploymentError(
                f"engine needs a GPU node, got {node.name} ({node.spec.model})"
            )
        cores = int(context.option("cores", 40))
        memory = float(context.option("memory_gb", 64.0))
        context.deployment.place(
            self.name,
            node,
            cores=min(cores, node.spec.total_logical_cores),
            memory_gb=memory,
            gpus=1,
            thread_pools=self.config.to_dict(),
        )
        self.node_name = node.name


@register_service
class ClientFleetService(Service):
    """The request-submitting clients spread over the CPU clusters.

    Options:

    - ``simultaneous_requests`` — closed-loop population size (required).
    - ``cores_per_node`` — client process footprint (default 4).
    """

    name = "plantnet-clients"

    def __init__(self) -> None:
        super().__init__()
        self.simultaneous_requests: int = 0
        self.clients_per_node: dict[str, int] = {}

    def deploy(self, context: ServiceContext) -> None:
        requests = int(context.option("simultaneous_requests", 0))
        if requests < 1:
            raise DeploymentError("plantnet-clients needs simultaneous_requests >= 1")
        if not context.nodes:
            raise DeploymentError("plantnet-clients got no nodes")
        self.simultaneous_requests = requests
        # Spread clients as evenly as possible over the fleet nodes.
        base, extra = divmod(requests, len(context.nodes))
        cores = int(context.option("cores_per_node", 4))
        for i, node in enumerate(context.nodes):
            count = base + (1 if i < extra else 0)
            if count == 0:
                continue
            context.deployment.place(
                self.name,
                node,
                cores=min(cores, node.spec.total_logical_cores),
                memory_gb=2.0,
                clients=count,
            )
            self.clients_per_node[node.name] = count

    def total_clients(self) -> int:
        return sum(self.clients_per_node.values())

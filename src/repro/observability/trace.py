"""Span tracing across the optimization cycle.

The methodology's reproducibility story (Phase III) records *what* was
evaluated; the tracer records *where the time went*. A
:class:`RecordingTracer` collects nested :class:`Span` records carrying two
clocks:

- **wall clock** — seconds relative to the tracer's epoch (monotonic), so a
  run report can lay spans out on a timeline;
- **simulated clock** — optional, filled in by components that live inside a
  :class:`~repro.simcore.core.Environment` (pass ``sim_clock=env_now``
  callables), so DES work can be attributed in virtual time too.

The default tracer is a process-global :class:`NoopTracer` whose ``span()``
returns a shared null context manager: instrumented code pays one attribute
check and no allocation when tracing is off, keeping the tier-1 benchmarks
untouched. Enable tracing explicitly::

    from repro.observability import RecordingTracer, set_tracer

    tracer = RecordingTracer()
    set_tracer(tracer)          # or: with tracing() as tracer: ...
    ... run the campaign ...
    tracer.export_jsonl(run_dir / "spans.jsonl")

Spans nest per-thread (a thread-local stack, not contextvars, so worker
threads of a :class:`~concurrent.futures.ThreadPoolExecutor` start clean);
cross-thread parentage is passed explicitly via ``parent=``.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator, Optional

__all__ = [
    "Span",
    "Tracer",
    "NoopTracer",
    "RecordingTracer",
    "get_tracer",
    "set_tracer",
    "tracing",
    "load_spans",
]

SimClock = Callable[[], float]


@dataclass
class Span:
    """One timed operation; ``end_s`` is ``None`` while it is open."""

    name: str
    span_id: int
    parent_id: Optional[int] = None
    #: seconds since the owning tracer's epoch (monotonic clock).
    start_s: float = 0.0
    end_s: Optional[float] = None
    #: simulated-time counterparts when a ``sim_clock`` was supplied.
    sim_start: Optional[float] = None
    sim_end: Optional[float] = None
    attributes: dict[str, Any] = field(default_factory=dict)
    status: str = "ok"
    error: Optional[str] = None

    @property
    def duration_s(self) -> float:
        return (self.end_s - self.start_s) if self.end_s is not None else 0.0

    @property
    def sim_duration(self) -> Optional[float]:
        if self.sim_start is None or self.sim_end is None:
            return None
        return self.sim_end - self.sim_start

    def set(self, key: str, value: Any) -> "Span":
        """Attach one attribute (chainable)."""
        self.attributes[key] = value
        return self

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "sim_start": self.sim_start,
            "sim_end": self.sim_end,
            "attributes": dict(self.attributes),
            "status": self.status,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Span":
        return cls(
            name=data["name"],
            span_id=int(data["span_id"]),
            parent_id=data.get("parent_id"),
            start_s=float(data.get("start_s", 0.0)),
            end_s=data.get("end_s"),
            sim_start=data.get("sim_start"),
            sim_end=data.get("sim_end"),
            attributes=dict(data.get("attributes", {})),
            status=data.get("status", "ok"),
            error=data.get("error"),
        )


class _NoopSpan:
    """Absorbs every span operation; a process-wide singleton."""

    __slots__ = ()

    name = "noop"
    span_id = -1
    parent_id = None
    attributes: dict[str, Any] = {}
    status = "ok"
    duration_s = 0.0

    def set(self, key: str, value: Any) -> "_NoopSpan":
        return self


class _NoopSpanContext:
    __slots__ = ()

    def __enter__(self) -> _NoopSpan:
        return NOOP_SPAN

    def __exit__(self, *exc: Any) -> bool:
        return False


NOOP_SPAN = _NoopSpan()
_NOOP_CONTEXT = _NoopSpanContext()


class Tracer:
    """Tracer interface. The base class is inert (see :class:`NoopTracer`)."""

    #: instrumentation sites branch on this to skip work entirely.
    enabled: bool = False

    def span(
        self,
        name: str,
        *,
        parent: Any = None,
        sim_clock: SimClock | None = None,
        **attributes: Any,
    ) -> Any:
        """Context manager timing one operation."""
        return _NOOP_CONTEXT

    def start_span(
        self,
        name: str,
        *,
        parent: Any = None,
        start: float | None = None,
        sim_clock: SimClock | None = None,
        **attributes: Any,
    ) -> Any:
        """Begin a span manually (for cross-thread lifecycles)."""
        return NOOP_SPAN

    def end_span(
        self, span: Any, *, error: str | None = None, end: float | None = None
    ) -> None:
        """Finish a span started with :meth:`start_span`."""

    def current(self) -> Any:
        """Innermost open span on this thread, or ``None``."""
        return None

    def clock(self) -> float:
        """Seconds since the tracer's epoch."""
        return 0.0

    def subscribe(self, callback: Callable[[Any], None]) -> None:
        """Register a live span consumer (no-op on the inert tracer)."""

    def unsubscribe(self, callback: Callable[[Any], None]) -> None:
        """Remove a live span consumer (no-op on the inert tracer)."""


class NoopTracer(Tracer):
    """The default: records nothing, allocates nothing."""


class RecordingTracer(Tracer):
    """Collects finished spans in memory; thread-safe."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._epoch = time.perf_counter()
        #: wall-clock timestamp of the epoch, for report headers and for
        #: rebasing spans merged from other processes (the telemetry fabric).
        self.started_at = time.time()
        self._next_id = 0
        self._finished: list[Span] = []
        self._stack = threading.local()
        self._subscribers: list[Callable[[Span], None]] = []
        #: self-metrics: spans finished (own + ingested) and subscriber
        #: callbacks that raised — observability overhead made observable.
        self.spans_recorded = 0
        self.subscriber_errors = 0

    # -- clocks and ids -------------------------------------------------------

    def clock(self) -> float:
        return time.perf_counter() - self._epoch

    def _new_id(self) -> int:
        with self._lock:
            self._next_id += 1
            return self._next_id

    def _thread_stack(self) -> list[Span]:
        stack = getattr(self._stack, "spans", None)
        if stack is None:
            stack = []
            self._stack.spans = stack
        return stack

    def current(self) -> Optional[Span]:
        stack = self._thread_stack()
        return stack[-1] if stack else None

    # -- span lifecycle -------------------------------------------------------

    def start_span(
        self,
        name: str,
        *,
        parent: Span | None = None,
        start: float | None = None,
        sim_clock: SimClock | None = None,
        **attributes: Any,
    ) -> Span:
        if parent is None:
            parent = self.current()
        span = Span(
            name=name,
            span_id=self._new_id(),
            parent_id=parent.span_id if parent is not None else None,
            start_s=self.clock() if start is None else start,
            attributes=dict(attributes),
        )
        if sim_clock is not None:
            span.sim_start = float(sim_clock())
            span.attributes["_sim_clock"] = sim_clock  # popped at end_span
        return span

    def end_span(
        self, span: Span, *, error: str | None = None, end: float | None = None
    ) -> None:
        sim_clock = span.attributes.pop("_sim_clock", None)
        if sim_clock is not None:
            span.sim_end = float(sim_clock())
        span.end_s = self.clock() if end is None else end
        if error is not None:
            span.status = "error"
            span.error = error
        with self._lock:
            self._finished.append(span)
            self.spans_recorded += 1
            subscribers = list(self._subscribers) if self._subscribers else None
        if subscribers is not None:
            self._notify(span, subscribers)

    def _notify(self, span: Span, subscribers: list[Callable[[Span], None]]) -> None:
        for callback in subscribers:
            try:
                callback(span)
            except Exception:
                # A broken consumer (e.g. a watchdog rule) must never take
                # down the instrumented campaign.
                with self._lock:
                    self.subscriber_errors += 1

    def subscribe(self, callback: Callable[[Span], None]) -> None:
        """Stream every finished span to ``callback`` as it completes."""
        with self._lock:
            if callback not in self._subscribers:
                self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[Span], None]) -> None:
        with self._lock:
            if callback in self._subscribers:
                self._subscribers.remove(callback)

    @contextmanager
    def span(
        self,
        name: str,
        *,
        parent: Span | None = None,
        sim_clock: SimClock | None = None,
        **attributes: Any,
    ) -> Iterator[Span]:
        span = self.start_span(name, parent=parent, sim_clock=sim_clock, **attributes)
        stack = self._thread_stack()
        stack.append(span)
        try:
            yield span
        except BaseException as exc:
            self.end_span(span, error=f"{type(exc).__name__}: {exc}")
            raise
        finally:
            stack.pop()
            if span.end_s is None:
                self.end_span(span)

    # -- the cross-process telemetry fabric ----------------------------------

    def drain(self) -> list[Span]:
        """Remove and return every finished span (the worker-side drain).

        Workers drain after each trial so the payload shipped back to the
        parent never double counts a span across trials.
        """
        with self._lock:
            spans = self._finished
            self._finished = []
            return spans

    def ingest(
        self,
        spans: list[dict[str, Any]],
        *,
        parent: Span | None = None,
        epoch_unix: float | None = None,
        attributes: dict[str, Any] | None = None,
    ) -> tuple[int, int]:
        """Merge foreign span dicts (another process's tracer) into this one.

        Span ids are remapped into this tracer's id space with intra-payload
        parentage preserved; spans whose parent is not in the payload attach
        to ``parent`` (typically the trial span). ``epoch_unix`` — the
        foreign tracer's ``started_at`` — rebases the foreign clock onto
        this tracer's timeline. ``attributes`` (``runner_id``/``pid``/...)
        are stamped onto every merged span. Subscribers (the live watchdog)
        see each merged span exactly as if it finished locally.

        Returns ``(merged, dropped)``; malformed entries are dropped, never
        fatal.
        """
        parsed: list[tuple[int, Span]] = []
        dropped = 0
        for data in spans:
            try:
                span = Span.from_dict(data)
                if span.end_s is None:
                    raise ValueError("open span cannot be ingested")
            except (TypeError, ValueError, KeyError):
                dropped += 1
                continue
            parsed.append((span.span_id, span))
        offset = 0.0
        if epoch_unix is not None:
            offset = float(epoch_unix) - self.started_at
        # two passes: ids first, then parents, so a child whose parent
        # finishes later in the payload still remaps correctly.
        id_map = {old_id: self._new_id() for old_id, _ in parsed}
        fallback_parent = parent.span_id if parent is not None else None
        default_attrs = dict(attributes or {})
        accepted: list[Span] = []
        for old_id, span in parsed:
            span.span_id = id_map[old_id]
            span.parent_id = id_map.get(span.parent_id, fallback_parent)
            span.start_s += offset
            span.end_s = (span.end_s or 0.0) + offset
            if default_attrs:
                span.attributes.update(default_attrs)
            accepted.append(span)
        with self._lock:
            self._finished.extend(accepted)
            self.spans_recorded += len(accepted)
            subscribers = list(self._subscribers) if self._subscribers else None
        if subscribers is not None:
            for span in accepted:
                self._notify(span, subscribers)
        return len(accepted), dropped

    # -- results --------------------------------------------------------------

    def finished(self) -> list[Span]:
        """Finished spans in completion order (a snapshot)."""
        with self._lock:
            return list(self._finished)

    def export_jsonl(self, path: str | Path) -> Path:
        """One span per line; the run report's primary artifact."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with self._lock:
            lines = [json.dumps(span.to_dict()) for span in self._finished]
        path.write_text("\n".join(lines) + ("\n" if lines else ""))
        return path


def load_spans(path: str | Path) -> list[Span]:
    """Read back a ``spans.jsonl`` artifact."""
    spans = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if line:
            spans.append(Span.from_dict(json.loads(line)))
    return spans


_default_tracer: Tracer = NoopTracer()
_default_lock = threading.Lock()


def get_tracer() -> Tracer:
    """The process-global tracer (a no-op unless explicitly enabled)."""
    return _default_tracer


def set_tracer(tracer: Tracer | None) -> Tracer:
    """Install ``tracer`` globally (``None`` restores the no-op); returns it."""
    global _default_tracer
    with _default_lock:
        _default_tracer = tracer if tracer is not None else NoopTracer()
        return _default_tracer


@contextmanager
def tracing(tracer: RecordingTracer | None = None) -> Iterator[RecordingTracer]:
    """Scoped tracing: install a recording tracer, restore the old on exit."""
    tracer = tracer or RecordingTracer()
    previous = get_tracer()
    set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)

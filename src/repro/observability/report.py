"""The run report: render exported observability artifacts for humans.

``python -m repro report <run-dir>`` reads whatever artifacts a campaign
exported into its experiment directory —

- ``spans.jsonl`` — finished tracer spans,
- ``metrics.json`` — the metrics-registry snapshot,
- ``summary.json`` — the Phase III reproducibility summary,
- ``manifest.json`` — provenance (seed, environment),
- ``alerts.jsonl`` — the live watchdog's structured alerts,
- ``<name>.jsonl`` — the trial runner's one-line-per-trial log,

and renders a phase timeline, the trial table, a critical-path latency
attribution, watchdog alerts, the top-k slowest spans and metric rollups.
Every section is optional: the report degrades gracefully when a run
exported only some artifacts.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional

from repro.errors import ValidationError
from repro.observability.digest import PERF_PROFILE_FILE
from repro.observability.trace import Span, load_spans
from repro.observability.watchdog import ALERTS_FILE, load_alerts
from repro.utils.tables import Table

__all__ = ["RunArtifacts", "load_run", "render_report", "render_report_json"]

#: artifact names with fixed meaning inside a run directory.
SPANS_FILE = "spans.jsonl"
METRICS_FILE = "metrics.json"
PROMETHEUS_FILE = "metrics.prom"
SUMMARY_FILE = "summary.json"
MANIFEST_FILE = "manifest.json"


@dataclass
class RunArtifacts:
    """Everything found inside one run directory."""

    root: Path
    spans: list[Span] = field(default_factory=list)
    metrics: dict[str, Any] = field(default_factory=dict)
    summary: dict[str, Any] = field(default_factory=dict)
    manifest: dict[str, Any] = field(default_factory=dict)
    trials: list[dict[str, Any]] = field(default_factory=list)
    alerts: list[dict[str, Any]] = field(default_factory=list)
    #: the exported latency-digest profile (``perf_profile.json``).
    perf: dict[str, Any] = field(default_factory=dict)


def _load_json(path: Path) -> dict[str, Any]:
    return json.loads(path.read_text())


def _load_trials(root: Path) -> list[dict[str, Any]]:
    # alerts.jsonl records carry a trial_id inside their details and would
    # otherwise be misread as trial-log lines.
    reserved = {SPANS_FILE, ALERTS_FILE}
    trials: list[dict[str, Any]] = []
    for path in sorted(root.glob("*.jsonl")):
        if path.name in reserved:
            continue
        for line in path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if isinstance(record, dict) and "trial_id" in record:
                trials.append(record)
    return trials


def load_run(run_dir: str | Path) -> RunArtifacts:
    """Collect artifacts from ``run_dir`` (missing pieces stay empty)."""
    root = Path(run_dir)
    if not root.is_dir():
        raise ValidationError(f"run directory {root} does not exist")
    artifacts = RunArtifacts(root=root)
    if (root / SPANS_FILE).exists():
        artifacts.spans = load_spans(root / SPANS_FILE)
    if (root / METRICS_FILE).exists():
        artifacts.metrics = _load_json(root / METRICS_FILE)
    if (root / SUMMARY_FILE).exists():
        artifacts.summary = _load_json(root / SUMMARY_FILE)
    if (root / MANIFEST_FILE).exists():
        artifacts.manifest = _load_json(root / MANIFEST_FILE)
    artifacts.trials = _load_trials(root)
    if (root / ALERTS_FILE).exists():
        artifacts.alerts = [alert.to_dict() for alert in load_alerts(root / ALERTS_FILE)]
    if (root / PERF_PROFILE_FILE).exists():
        artifacts.perf = _load_json(root / PERF_PROFILE_FILE)
    # A degenerate run (zero trials, an aborted export) may leave only empty
    # artifact files behind; report what exists rather than refusing. Only a
    # directory with no known artifact *files* at all is an error.
    known = [SPANS_FILE, METRICS_FILE, SUMMARY_FILE, MANIFEST_FILE, PERF_PROFILE_FILE, ALERTS_FILE]
    if not any((root / name).exists() for name in known) and not list(root.glob("*.jsonl")):
        raise ValidationError(
            f"{root} holds no observability artifacts "
            f"({SPANS_FILE}, {METRICS_FILE}, {SUMMARY_FILE} or a trial log)"
        )
    return artifacts


# -- rendering ----------------------------------------------------------------------


def _bar(offset: float, duration: float, total: float, width: int = 40) -> str:
    if total <= 0:
        return ""
    lead = int(round(width * offset / total))
    body = max(1, int(round(width * duration / total)))
    lead = min(lead, width - 1)
    body = min(body, width - lead)
    return "." * lead + "#" * body + "." * (width - lead - body)


def _render_timeline(spans: list[Span]) -> str:
    roots = sorted((s for s in spans if s.parent_id is None), key=lambda s: s.start_s)
    if not roots:
        return ""
    children: dict[Optional[int], list[Span]] = {}
    for span in spans:
        children.setdefault(span.parent_id, []).append(span)
    horizon = max((s.end_s or s.start_s) for s in spans)
    lines = ["--- phase timeline ---"]
    for root in roots:
        lines.append(
            f"{root.name:<28s} {_bar(root.start_s, root.duration_s, horizon)} "
            f"{root.duration_s:8.3f}s"
        )
        for child in sorted(children.get(root.span_id, []), key=lambda s: s.start_s):
            lines.append(
                f"  {child.name:<26s} {_bar(child.start_s, child.duration_s, horizon)} "
                f"{child.duration_s:8.3f}s"
            )
    return "\n".join(lines)


def _render_slowest(spans: list[Span], top_k: int) -> str:
    closed = [s for s in spans if s.end_s is not None]
    if not closed:
        return ""
    slowest = sorted(closed, key=lambda s: s.duration_s, reverse=True)[:top_k]
    table = Table(
        ["span", "duration_s", "sim_s", "status"], title=f"--- top {len(slowest)} slowest spans ---"
    )
    for span in slowest:
        sim = span.sim_duration
        table.add_row(
            [
                span.name,
                f"{span.duration_s:.4f}",
                "-" if sim is None else f"{sim:.1f}",
                span.status,
            ]
        )
    return table.render()


def _trial_records(artifacts: RunArtifacts) -> list[dict[str, Any]]:
    if artifacts.trials:
        return artifacts.trials
    # fall back to the Phase III evaluations (no status/runtime detail).
    return [
        {
            "trial_id": f"eval-{i + 1}",
            "status": "terminated",
            "result": {"objective": ev.get("value")},
            "config": ev.get("configuration", {}),
            "runtime_s": float("nan"),
        }
        for i, ev in enumerate(artifacts.summary.get("evaluations", []))
    ]


def _render_trials(artifacts: RunArtifacts) -> str:
    records = _trial_records(artifacts)
    if not records:
        return ""
    table = Table(
        ["trial", "status", "objective", "runtime_s", "suggest_s", "tell_s"],
        title=f"--- trials ({len(records)}) ---",
    )
    for record in records:
        result = record.get("result", {}) or {}
        objective = result.get("objective")
        if objective is None and result:
            objective = next(iter(result.values()))
        cost = record.get("cost", {}) or {}
        table.add_row(
            [
                record.get("trial_id", "?"),
                record.get("status", "?"),
                "-" if objective is None or objective != objective else f"{objective:.4g}",
                f"{float(record.get('runtime_s', float('nan'))):.3f}",
                f"{cost['suggest_s']:.4f}" if "suggest_s" in cost else "-",
                f"{cost['tell_s']:.4f}" if "tell_s" in cost else "-",
            ]
        )
    return table.render()


def _render_metrics(metrics: dict[str, Any]) -> str:
    families = metrics.get("metrics", [])
    if not families:
        return ""
    table = Table(["metric", "kind", "labels", "value"], title="--- metric rollups ---")
    for family in families:
        labelnames = family.get("labelnames", [])
        for sample in family.get("series", []):
            labels = sample.get("labels", {})
            label_text = ",".join(f"{k}={labels[k]}" for k in labelnames) or "-"
            value = sample.get("value")
            if isinstance(value, dict):  # histogram snapshot
                mean = value.get("mean")
                mean_text = (
                    f"{mean:.4g}" if isinstance(mean, (int, float)) and mean == mean else "nan"
                )
                text = f"count={value.get('count', 0)} mean={mean_text}"
            elif isinstance(value, (int, float)):
                text = f"{value:.6g}"
            else:
                text = str(value)
            table.add_row([family.get("name", "?"), family.get("kind", "?"), label_text, text])
    return table.render()


def _render_summary(summary: dict[str, Any]) -> str:
    if not summary:
        return ""
    lines = ["--- campaign ---"]
    best = summary.get("best_value")
    if isinstance(best, (int, float)) and not math.isnan(best):
        lines.append(f"best value:    {best:.6g}  at {summary.get('best_configuration')}")
    lines.append(f"evaluations:   {len(summary.get('evaluations', []))}")
    wall = summary.get("wall_clock_s")
    if isinstance(wall, (int, float)):
        lines.append(f"wall clock:    {wall:.2f} s")
    cost = summary.get("cost_profile") or {}
    if cost:
        fractions = cost.get("fractions", {})
        lines.append(
            "cost profile:  "
            f"suggest {cost.get('suggest_s', 0.0):.3f}s "
            f"({fractions.get('suggest_s', 0.0):.0%}) | "
            f"evaluate {cost.get('evaluate_s', 0.0):.3f}s "
            f"({fractions.get('evaluate_s', 0.0):.0%}) | "
            f"tell {cost.get('tell_s', 0.0):.3f}s "
            f"({fractions.get('tell_s', 0.0):.0%})"
        )
    return "\n".join(lines)


def _render_critical_path(spans: list[Span]) -> str:
    if not spans:
        return ""
    from repro.observability.analysis import analyze_spans

    analysis = analyze_spans(spans)
    if not analysis.trials:
        return ""
    critical = analysis.critical_path
    lines = ["--- critical path (latency attribution) ---"]
    horizon = critical.horizon_s
    for segment, seconds in critical.segments.items():
        if seconds <= 0:
            continue
        share = seconds / horizon if horizon > 0 else 0.0
        lines.append(f"{segment + ':':<14s}{seconds:8.3f} s  ({share:.0%})")
    idle_share = critical.idle_fraction
    lines.append(f"{'idle:':<14s}{critical.idle_s:8.3f} s  ({idle_share:.0%})")
    lines.append(
        f"slots:        {analysis.lane_count} concurrent "
        f"({analysis.slot_idle_fraction:.0%} slot-idle over {horizon:.3f} s)"
    )
    return "\n".join(lines)


def _render_perf(perf: dict[str, Any]) -> str:
    ops = perf.get("ops") or {}
    if not ops:
        return ""
    table = Table(
        ["op", "count", "mean", "p50", "p90", "p99"],
        title="--- latency percentiles ---",
    )

    def _cell(entry: dict[str, Any], key: str) -> str:
        value = entry.get(key)
        if not isinstance(value, (int, float)) or value != value:
            return "-"
        if value < 1e-3:
            return f"{value * 1e6:.1f}us"
        if value < 1.0:
            return f"{value * 1e3:.2f}ms"
        return f"{value:.3f}s"

    for op in sorted(ops):
        entry = ops[op] if isinstance(ops[op], dict) else {}
        table.add_row(
            [
                op,
                f"{int(entry.get('count', 0))}",
                _cell(entry, "mean"),
                _cell(entry, "p50"),
                _cell(entry, "p90"),
                _cell(entry, "p99"),
            ]
        )
    return table.render()


def _render_alerts(artifacts: RunArtifacts) -> str:
    alerts = artifacts.alerts or artifacts.summary.get("alerts", {}).get("alerts", [])
    if not alerts:
        return ""
    table = Table(
        ["severity", "kind", "t_s", "message"],
        title=f"--- watchdog alerts ({len(alerts)}) ---",
    )
    for alert in alerts:
        table.add_row(
            [
                alert.get("severity", "?"),
                alert.get("kind", "?"),
                f"{float(alert.get('time_s', float('nan'))):.3f}",
                alert.get("message", ""),
            ]
        )
    return table.render()


def render_report(artifacts: RunArtifacts, *, top_k: int = 10) -> str:
    """The full human-readable run report."""
    header = [f"=== run report: {artifacts.root} ==="]
    manifest = artifacts.manifest
    if manifest:
        header.append(
            f"experiment {manifest.get('name', '?')!r}  seed={manifest.get('seed')}  "
            f"repro={manifest.get('environment', {}).get('repro', '?')}"
        )
    sections = [
        "\n".join(header),
        _render_summary(artifacts.summary),
        _render_timeline(artifacts.spans),
        _render_critical_path(artifacts.spans),
        _render_perf(artifacts.perf),
        _render_alerts(artifacts),
        _render_trials(artifacts),
        _render_slowest(artifacts.spans, top_k),
        _render_metrics(artifacts.metrics),
    ]
    return "\n\n".join(section for section in sections if section)


def render_report_json(artifacts: RunArtifacts, *, top_k: int = 10) -> dict[str, Any]:
    """The run report as one machine-readable document (``--format json``).

    Consumed by the ``monitor`` CLI and CI jobs; the same sources as
    :func:`render_report`, minus the purely visual sections (timeline
    bars), plus raw span counts.
    """

    def _clean(value: Any) -> Any:
        # NaN is not valid JSON; normalize to null for strict consumers.
        if isinstance(value, float) and value != value:
            return None
        if isinstance(value, dict):
            return {k: _clean(v) for k, v in value.items()}
        if isinstance(value, list):
            return [_clean(v) for v in value]
        return value

    closed = [s for s in artifacts.spans if s.end_s is not None]
    slowest = sorted(closed, key=lambda s: s.duration_s, reverse=True)[:top_k]
    return _clean(
        {
            "schema": "repro.report/1",
            "root": str(artifacts.root),
            "manifest": artifacts.manifest,
            "summary": artifacts.summary,
            "trials": _trial_records(artifacts),
            "alerts": artifacts.alerts,
            "perf": artifacts.perf,
            "metrics": artifacts.metrics,
            "spans": {
                "total": len(artifacts.spans),
                "slowest": [
                    {
                        "name": s.name,
                        "duration_s": s.duration_s,
                        "sim_duration": s.sim_duration,
                        "status": s.status,
                        "attributes": dict(s.attributes),
                    }
                    for s in slowest
                ],
            },
        }
    )

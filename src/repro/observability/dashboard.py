"""The self-contained HTML campaign dashboard (``python -m repro dashboard``).

Renders one recorded campaign — slot timelines, the critical-path
breakdown, watchdog alerts and the trial table — into a single HTML file
with zero external dependencies (inline CSS/SVG/JS, data embedded as JSON),
so the artifact can be archived next to ``spans.jsonl`` and opened years
later without a toolchain.

Color discipline: the five cycle segments wear the first five categorical
slots in fixed order (validated for adjacent-pair CVD separation in both
light and dark modes); alert severities wear the reserved status palette
and always ship an icon + label, never color alone. The trial table doubles
as the accessible view of the chart.
"""

from __future__ import annotations

import html
import json
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.observability.analysis import CampaignAnalysis

__all__ = ["render_dashboard", "write_dashboard", "TIMELINE_FILE"]

#: artifact name of the dashboard inside a run directory.
TIMELINE_FILE = "timeline.html"

_TEMPLATE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>__TITLE__</title>
<style>
.viz-root {
  color-scheme: light;
  --surface-1: #fcfcfb; --page: #f9f9f7;
  --text-primary: #0b0b0b; --text-secondary: #52514e; --text-muted: #898781;
  --grid: #e1e0d9; --baseline: #c3c2b7; --border: rgba(11,11,11,0.10);
  --seg-suggest: #2a78d6; --seg-queue_wait: #eb6834; --seg-deploy: #1baf7a;
  --seg-evaluate: #eda100; --seg-tell: #e87ba4;
  --status-warning: #fab219; --status-critical: #d03b3b; --status-good: #0ca30c;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .viz-root {
    color-scheme: dark;
    --surface-1: #1a1a19; --page: #0d0d0d;
    --text-primary: #ffffff; --text-secondary: #c3c2b7; --text-muted: #898781;
    --grid: #2c2c2a; --baseline: #383835; --border: rgba(255,255,255,0.10);
    --seg-suggest: #3987e5; --seg-queue_wait: #d95926; --seg-deploy: #199e70;
    --seg-evaluate: #c98500; --seg-tell: #d55181;
  }
}
:root[data-theme="dark"] .viz-root {
  color-scheme: dark;
  --surface-1: #1a1a19; --page: #0d0d0d;
  --text-primary: #ffffff; --text-secondary: #c3c2b7; --text-muted: #898781;
  --grid: #2c2c2a; --baseline: #383835; --border: rgba(255,255,255,0.10);
  --seg-suggest: #3987e5; --seg-queue_wait: #d95926; --seg-deploy: #199e70;
  --seg-evaluate: #c98500; --seg-tell: #d55181;
}
.viz-root {
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  background: var(--page); color: var(--text-primary);
  margin: 0; padding: 24px; min-height: 100vh; box-sizing: border-box;
}
.viz-root h1 { font-size: 20px; margin: 0 0 4px; }
.viz-root .subtitle { color: var(--text-secondary); font-size: 13px; margin-bottom: 20px; }
.card { background: var(--surface-1); border: 1px solid var(--border);
        border-radius: 8px; padding: 16px; margin-bottom: 16px; }
.card h2 { font-size: 14px; margin: 0 0 12px; color: var(--text-secondary);
           font-weight: 600; }
.tiles { display: flex; gap: 16px; flex-wrap: wrap; margin-bottom: 16px; }
.tile { background: var(--surface-1); border: 1px solid var(--border);
        border-radius: 8px; padding: 12px 18px; min-width: 110px; }
.tile .v { font-size: 24px; font-weight: 600; }
.tile .k { font-size: 12px; color: var(--text-muted); margin-top: 2px; }
.legend { display: flex; gap: 14px; flex-wrap: wrap; font-size: 12px;
          color: var(--text-secondary); margin-bottom: 10px; }
.legend .sw { display: inline-block; width: 10px; height: 10px;
              border-radius: 2px; margin-right: 5px; vertical-align: -1px; }
svg text { fill: var(--text-muted); font-size: 11px;
           font-family: system-ui, -apple-system, "Segoe UI", sans-serif; }
svg .lane-label { fill: var(--text-secondary); }
#tooltip { position: fixed; display: none; pointer-events: none; z-index: 10;
           background: var(--surface-1); border: 1px solid var(--border);
           border-radius: 6px; padding: 8px 10px; font-size: 12px;
           color: var(--text-primary); box-shadow: 0 2px 8px rgba(0,0,0,0.18);
           max-width: 320px; }
#tooltip .tt-title { font-weight: 600; margin-bottom: 4px; }
#tooltip .tt-row { color: var(--text-secondary); }
table { border-collapse: collapse; width: 100%; font-size: 12px; }
th, td { text-align: left; padding: 5px 10px; border-bottom: 1px solid var(--grid); }
th { color: var(--text-muted); font-weight: 600; }
td.num { font-variant-numeric: tabular-nums; }
.sev { font-weight: 600; }
.sev-warning { color: var(--status-warning); }
.sev-critical { color: var(--status-critical); }
.empty { color: var(--text-muted); font-size: 13px; }
</style>
</head>
<body class="viz-root">
<h1>__TITLE__</h1>
<div class="subtitle" id="subtitle"></div>
<div class="tiles" id="tiles"></div>
<div class="card"><h2>Executor-slot timeline</h2>
  <div class="legend" id="legend"></div>
  <div id="timeline"></div></div>
<div class="card"><h2>Critical path</h2><div id="critpath"></div></div>
<div class="card"><h2>Latency percentiles</h2><div id="perf"></div></div>
<div class="card"><h2>Watchdog alerts</h2><div id="alerts"></div></div>
<div class="card"><h2>Trials</h2><div id="trials"></div></div>
<div id="tooltip"></div>
<script id="campaign-data" type="application/json">__DATA__</script>
<script>
"use strict";
const DATA = JSON.parse(document.getElementById("campaign-data").textContent);
const A = DATA.analysis;
const SEGMENTS = ["suggest", "queue_wait", "deploy", "evaluate", "tell"];
const SEG_LABEL = {suggest: "suggest", queue_wait: "queue wait", deploy: "deploy",
                   evaluate: "evaluate", tell: "tell", idle: "idle"};
const css = name => getComputedStyle(document.body).getPropertyValue(name).trim();
const segColor = seg => seg === "idle" ? css("--grid") : css("--seg-" + seg);
const fmt = (s, d = 3) => Number(s).toFixed(d);

function tiles() {
  const el = document.getElementById("tiles");
  const items = [
    [A.trials.length, "trials"],
    [fmt(A.horizon_s, 2) + " s", "campaign horizon"],
    [A.lane_count, "executor slots"],
    [(100 * A.slot_idle_fraction).toFixed(0) + " %", "slot idle"],
    [(100 * A.critical_path.idle_fraction).toFixed(0) + " %", "critical-path idle"],
    [DATA.alerts.length, "alerts"],
  ];
  el.innerHTML = items.map(([v, k]) =>
    `<div class="tile"><div class="v">${v}</div><div class="k">${k}</div></div>`).join("");
  document.getElementById("subtitle").textContent = DATA.subtitle;
}

function legend() {
  document.getElementById("legend").innerHTML = SEGMENTS.map(s =>
    `<span><span class="sw" style="background:${segColor(s)}"></span>${SEG_LABEL[s]}</span>`
  ).join("");
}

const tip = document.getElementById("tooltip");
function showTip(evt, htmlText) {
  tip.innerHTML = htmlText;
  tip.style.display = "block";
  const x = Math.min(evt.clientX + 14, window.innerWidth - tip.offsetWidth - 8);
  const y = Math.min(evt.clientY + 14, window.innerHeight - tip.offsetHeight - 8);
  tip.style.left = x + "px"; tip.style.top = y + "px";
}
function hideTip() { tip.style.display = "none"; }

function timeline() {
  const host = document.getElementById("timeline");
  if (!A.trials.length) { host.innerHTML = "<div class='empty'>no trial spans recorded</div>"; return; }
  const poolRows = [], seen = new Set();
  for (const p of A.pools) if (!seen.has(p.pool)) { seen.add(p.pool); poolRows.push(p.pool); }
  const resRows = A.reservations.map(r => r.job_id);
  const lanes = A.lane_count, rowH = 26, barH = 16, left = 110, right = 20, topPad = 8;
  const rows = lanes + poolRows.length + resRows.length;
  const width = Math.max(640, host.clientWidth || 820);
  const height = topPad + rows * rowH + 28;
  const t0 = A.horizon_start_s, span = Math.max(A.horizon_s, 1e-9);
  const x = t => left + (t - t0) / span * (width - left - right);
  let svg = `<svg width="${width}" height="${height}" role="img" aria-label="executor slot timeline">`;
  for (let r = 0; r < rows; r++) {
    const y = topPad + r * rowH;
    const label = r < lanes ? "slot-" + r :
      r < lanes + poolRows.length ? "pool " + poolRows[r - lanes] :
      "resv " + resRows[r - lanes - poolRows.length];
    svg += `<line x1="${left}" y1="${y + rowH - 2}" x2="${width - right}" y2="${y + rowH - 2}" stroke="${css("--grid")}" stroke-width="1"/>`;
    svg += `<text class="lane-label" x="${left - 8}" y="${y + rowH / 2 + 4}" text-anchor="end">${label}</text>`;
  }
  // time axis ticks
  const nTicks = 6;
  for (let i = 0; i <= nTicks; i++) {
    const t = t0 + span * i / nTicks, xx = x(t);
    svg += `<line x1="${xx}" y1="${topPad}" x2="${xx}" y2="${topPad + rows * rowH}" stroke="${css("--grid")}" stroke-width="1" opacity="0.6"/>`;
    svg += `<text x="${xx}" y="${topPad + rows * rowH + 16}" text-anchor="middle">${fmt(t - t0, 2)}s</text>`;
  }
  const marks = [];
  for (const b of A.trials) {
    const lane = A.lanes[b.trial_id] || 0;
    const y = topPad + lane * rowH + (rowH - barH) / 2 - 1;
    const x0 = x(b.start_s), x1 = Math.max(x(b.end_s), x0 + 1);
    marks.push({b, y, x0, x1});
    svg += `<rect data-trial="${b.trial_id}" x="${x0}" y="${y}" width="${x1 - x0}" height="${barH}" fill="${css("--baseline")}" opacity="0.35" rx="2"/>`;
  }
  // segment fills on top of the trial extent, 2px surface gap when wide enough
  for (const b of A.trials) {
    const lane = A.lanes[b.trial_id] || 0;
    const y = topPad + lane * rowH + (rowH - barH) / 2 - 1;
    for (const iv of (DATA.intervals[b.trial_id] || [])) {
      let x0 = x(iv[1]), x1 = Math.max(x(iv[2]), x0 + 1);
      if (x1 - x0 > 6) { x0 += 1; x1 -= 1; } // surface gap between fills
      svg += `<rect data-trial="${b.trial_id}" x="${x0}" y="${y}" width="${x1 - x0}" height="${barH}" fill="${segColor(iv[0])}" rx="2"/>`;
    }
  }
  // pool + reservation rows
  let r = lanes;
  for (const pool of poolRows) {
    const y = topPad + r * rowH + (rowH - barH) / 2 - 1;
    for (const p of A.pools.filter(p => p.pool === pool)) {
      const x0 = x(p.start_s), x1 = Math.max(x(p.end_s), x0 + 1);
      svg += `<rect data-pool="${pool}" data-occ="${p.occupancy ?? ""}" x="${x0}" y="${y}" width="${x1 - x0}" height="${barH}" fill="${css("--seg-deploy")}" opacity="0.55" rx="2"/>`;
    }
    r++;
  }
  for (const job of resRows) {
    const y = topPad + r * rowH + (rowH - barH) / 2 - 1;
    for (const rv of A.reservations.filter(rv => rv.job_id === job)) {
      const x0 = x(rv.start_s), x1 = Math.max(x(rv.end_s), x0 + 1);
      svg += `<rect data-resv="${job}" x="${x0}" y="${y}" width="${x1 - x0}" height="${barH}" fill="${css("--seg-suggest")}" opacity="0.55" rx="2"/>`;
    }
    r++;
  }
  svg += "</svg>";
  host.innerHTML = svg;
  host.querySelectorAll("rect[data-trial]").forEach(rect => {
    const b = A.trials.find(t => t.trial_id === rect.dataset.trial);
    rect.addEventListener("mousemove", evt => {
      const segs = SEGMENTS.filter(s => s in b.segments)
        .map(s => `<div class="tt-row">${SEG_LABEL[s]}: ${fmt(b.segments[s])} s</div>`).join("");
      showTip(evt, `<div class="tt-title">${b.trial_id}</div>` +
        `<div class="tt-row">status: ${b.status}` +
        (b.objective != null ? ` · objective ${Number(b.objective).toPrecision(5)}` : "") +
        `</div><div class="tt-row">duration: ${fmt(b.duration_s)} s</div>` + segs);
    });
    rect.addEventListener("mouseleave", hideTip);
  });
  host.querySelectorAll("rect[data-pool]").forEach(rect => {
    rect.addEventListener("mousemove", evt => showTip(evt,
      `<div class="tt-title">pool ${rect.dataset.pool}</div>` +
      (rect.dataset.occ ? `<div class="tt-row">occupancy: ${(100 * rect.dataset.occ).toFixed(0)} %</div>` : "")));
    rect.addEventListener("mouseleave", hideTip);
  });
}

function critpath() {
  const host = document.getElementById("critpath");
  const cp = A.critical_path;
  const parts = SEGMENTS.filter(s => cp.segments[s] > 0)
    .map(s => [s, cp.segments[s]]);
  if (cp.idle_s > 0) parts.push(["idle", cp.idle_s]);
  if (!parts.length) { host.innerHTML = "<div class='empty'>no critical path (no segment spans)</div>"; return; }
  const width = Math.max(640, host.clientWidth || 820), barH = 22, total = cp.horizon_s || 1;
  let xx = 0, svg = `<svg width="${width}" height="${barH + 40}" role="img" aria-label="critical path breakdown">`;
  for (const [seg, secs] of parts) {
    let w = secs / total * (width - 2);
    const gap = w > 6 ? 1 : 0;
    svg += `<rect x="${xx + gap}" y="8" width="${Math.max(w - 2 * gap, 1)}" height="${barH}" fill="${segColor(seg)}" rx="2"><title>${SEG_LABEL[seg]}: ${fmt(secs)} s (${(100 * secs / total).toFixed(0)}%)</title></rect>`;
    if (w > 70) svg += `<text x="${xx + w / 2}" y="${barH + 24}" text-anchor="middle">${SEG_LABEL[seg]} ${(100 * secs / total).toFixed(0)}%</text>`;
    xx += w;
  }
  svg += "</svg>";
  const summary = parts.map(([s, v]) => `${SEG_LABEL[s]} ${fmt(v)} s`).join(" · ");
  host.innerHTML = svg + `<div class="empty" style="margin-top:6px">${summary} — horizon ${fmt(total)} s</div>`;
}

function perf() {
  const host = document.getElementById("perf");
  const ops = (DATA.perf && DATA.perf.ops) || {};
  const names = Object.keys(ops).sort();
  if (!names.length) { host.innerHTML = "<div class='empty'>no latency digests (run without perf recording)</div>"; return; }
  const cell = v => {
    if (typeof v !== "number" || Number.isNaN(v)) return "–";
    if (v < 1e-3) return (v * 1e6).toFixed(1) + " µs";
    if (v < 1) return (v * 1e3).toFixed(2) + " ms";
    return v.toFixed(3) + " s";
  };
  host.innerHTML = "<table><tr><th>op</th><th>count</th><th>mean</th><th>p50</th><th>p90</th><th>p99</th></tr>" +
    names.map(op => {
      const e = ops[op];
      return `<tr><td>${op}</td><td class="num">${Math.round(e.count || 0)}</td>` +
        ["mean", "p50", "p90", "p99"].map(k => `<td class="num">${cell(e[k])}</td>`).join("") + "</tr>";
    }).join("") + "</table>";
}

function alerts() {
  const host = document.getElementById("alerts");
  if (!DATA.alerts.length) { host.innerHTML = "<div class='empty'>no alerts — the watchdog stayed quiet</div>"; return; }
  const icon = sev => sev === "critical" ? "&#10006;" : "&#9888;";
  host.innerHTML = "<table><tr><th>severity</th><th>kind</th><th>message</th><th>t (s)</th></tr>" +
    DATA.alerts.map(a =>
      `<tr><td class="sev sev-${a.severity}">${icon(a.severity)} ${a.severity}</td>` +
      `<td>${a.kind}</td><td>${a.message}</td><td class="num">${fmt(a.time_s, 2)}</td></tr>`).join("") +
    "</table>";
}

function trials() {
  const host = document.getElementById("trials");
  if (!A.trials.length) { host.innerHTML = "<div class='empty'>no trials</div>"; return; }
  const cols = ["trial", "status", "objective", "duration s"].concat(SEGMENTS.map(s => SEG_LABEL[s] + " s"));
  host.innerHTML = "<table><tr>" + cols.map(c => `<th>${c}</th>`).join("") + "</tr>" +
    A.trials.map(b => "<tr>" +
      `<td>${b.trial_id}</td><td>${b.status}</td>` +
      `<td class="num">${b.objective != null ? Number(b.objective).toPrecision(5) : "–"}</td>` +
      `<td class="num">${fmt(b.duration_s)}</td>` +
      SEGMENTS.map(s => `<td class="num">${s in b.segments ? fmt(b.segments[s]) : "–"}</td>`).join("") +
      "</tr>").join("") + "</table>";
}

tiles(); legend(); timeline(); critpath(); perf(); alerts(); trials();
window.addEventListener("resize", () => { timeline(); critpath(); });
</script>
__LIVE__</body>
</html>
"""

#: substituted for ``__LIVE__`` when the dashboard is served by the live
#: monitor: a status card that polls ``/status`` and tails ``/events``.
_LIVE_SCRIPT = """<script>
"use strict";
(function () {
  const card = document.createElement("div");
  card.className = "card";
  card.innerHTML = '<h2>Live</h2><div id="live-status">connecting\\u2026</div>' +
    '<pre id="live-events" style="max-height:14em;overflow-y:auto"></pre>';
  const root = document.querySelector(".viz-root") || document.body;
  root.insertBefore(card, root.firstChild.nextSibling);
  const statusEl = document.getElementById("live-status");
  const eventsEl = document.getElementById("live-events");

  function poll() {
    fetch("/status").then(r => r.json()).then(s => {
      const t = s.trials || {};
      const inc = s.incumbent || {};
      const workers = (s.workers || []);
      const live = workers.filter(w => w.lease_state === "live").length;
      statusEl.textContent =
        `[${s.phase}] ${t.done || 0}/${t.total || 0} done, ` +
        `${t.running || 0} running` +
        (inc.trial_id ? `, best ${Number(inc.value).toPrecision(5)} (${inc.trial_id})` : "") +
        (workers.length ? `, ${live}/${workers.length} workers live` : "") +
        ((s.alerts || {}).total ? `, ${s.alerts.total} alerts` : "");
    }).catch(() => { statusEl.textContent = "monitor unreachable"; });
  }
  poll();
  setInterval(poll, 2000);

  function append(line) {
    eventsEl.textContent += line + "\\n";
    if (eventsEl.textContent.length > 20000) {
      eventsEl.textContent = eventsEl.textContent.slice(-15000);
    }
    eventsEl.scrollTop = eventsEl.scrollHeight;
  }
  const source = new EventSource("/events");
  source.addEventListener("hello", e => append("connected: " + e.data));
  source.addEventListener("span", e => {
    const d = JSON.parse(e.data);
    append(`span ${d.name} ${d.duration_s}s` +
      (d.trial_id ? ` trial=${d.trial_id}` : "") +
      (d.runner_id ? ` runner=${d.runner_id}` : ""));
  });
  source.addEventListener("alert", e => {
    const d = JSON.parse(e.data);
    append(`ALERT [${d.severity}] ${d.kind}: ${d.message}`);
  });
})();
</script>
"""


def render_dashboard(
    analysis: CampaignAnalysis,
    *,
    title: str = "Campaign dashboard",
    subtitle: str = "",
    alerts: Sequence[Mapping[str, Any]] = (),
    perf: Mapping[str, Any] | None = None,
    live: bool = False,
) -> str:
    """The dashboard as one self-contained HTML string.

    ``live=True`` (the monitor's ``GET /``) appends a script that polls
    ``/status`` and tails ``/events`` on top of the static snapshot.
    """
    payload = {
        "analysis": analysis.to_dict(),
        # raw intervals per trial, for the segment rectangles.
        "intervals": {b.trial_id: [list(iv) for iv in b.intervals] for b in analysis.trials},
        "alerts": [dict(a) for a in alerts],
        # the exported perf_profile.json contents (latency percentiles card).
        "perf": dict(perf) if perf else {},
        "subtitle": subtitle
        or (
            f"{len(analysis.trials)} trials · {analysis.lane_count} slots · "
            f"horizon {analysis.horizon_s:.2f} s"
        ),
    }
    # </script> inside a JSON string would terminate the data block early.
    data = json.dumps(payload).replace("</", "<\\/")
    page = _TEMPLATE.replace("__TITLE__", html.escape(title)).replace("__DATA__", data)
    return page.replace("__LIVE__", _LIVE_SCRIPT if live else "")


def write_dashboard(
    analysis: CampaignAnalysis,
    path: str | Path,
    *,
    title: str = "Campaign dashboard",
    subtitle: str = "",
    alerts: Sequence[Mapping[str, Any]] = (),
    perf: Mapping[str, Any] | None = None,
) -> Path:
    """Write ``timeline.html``; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        render_dashboard(analysis, title=title, subtitle=subtitle, alerts=alerts, perf=perf)
    )
    return path

"""A metrics registry: counters, gauges and histograms with labels.

Replaces ad-hoc accounting with one uniform, thread-safe surface that every
layer (trial runner, DES engine, monitoring probes) can publish into, and
that exports to two formats:

- **JSON** (:meth:`MetricsRegistry.to_dict` / :meth:`export_json`) — the
  replayable run artifact consumed by ``python -m repro report``;
- **Prometheus text exposition** (:meth:`render_prometheus`) — so a run can
  be scraped or diffed with standard tooling.

Like the tracer, the process-global default is inert: a
:class:`NullRegistry` hands out shared no-op instruments, so instrumented
code costs one dict lookup and no allocation when observability is off.
"""

from __future__ import annotations

import json
import math
import threading
from pathlib import Path
from typing import Any, Mapping, Optional, Sequence

from repro.errors import ValidationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "get_registry",
    "set_registry",
]

LabelValues = tuple[str, ...]

#: default histogram buckets (seconds-oriented, log-ish spacing).
DEFAULT_BUCKETS = (0.005, 0.025, 0.1, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, float("inf"))


def _label_key(labelnames: Sequence[str], labels: dict[str, Any]) -> LabelValues:
    if set(labels) != set(labelnames):
        raise ValidationError(
            f"labels {sorted(labels)} do not match declared {sorted(labelnames)}"
        )
    return tuple(str(labels[name]) for name in labelnames)


class _Instrument:
    """Base: one named metric family with a fixed label schema."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._data: dict[LabelValues, Any] = {}

    def _series(self) -> list[tuple[LabelValues, Any]]:
        with self._lock:
            return sorted(self._data.items())

    def series(self) -> list[tuple[dict[str, str], Any]]:
        """Public ``(labels, value)`` pairs; histogram values are snapshots."""
        return [
            (dict(zip(self.labelnames, key)), self._value_repr(value))
            for key, value in self._series()
        ]

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "help": self.help,
            "labelnames": list(self.labelnames),
            "series": [
                {"labels": dict(zip(self.labelnames, key)), "value": self._value_repr(value)}
                for key, value in self._series()
            ],
        }

    def _value_repr(self, value: Any) -> Any:
        return value

    def _state_value(self, value: Any) -> Any:
        return value

    def _state_extra(self) -> dict[str, Any]:
        return {}

    def state(self, *, drain: bool = False) -> dict[str, Any]:
        """Raw mergeable snapshot (the cross-process fabric format).

        Unlike :meth:`to_dict`, values are exact internal state (histogram
        bucket counts, not cumulative snapshots) so a receiving registry can
        merge without loss. ``drain=True`` also resets the series, which is
        how workers avoid double counting across per-trial drains.
        """
        with self._lock:
            data = [
                [list(key), self._state_value(value)]
                for key, value in sorted(self._data.items())
            ]
            if drain:
                self._data.clear()
        return {
            "kind": self.kind,
            "help": self.help,
            "labelnames": list(self.labelnames),
            "data": data,
            **self._state_extra(),
        }


class Counter(_Instrument):
    """Monotonically increasing count (events processed, trials run, ...)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValidationError(f"counter {self.name!r} cannot decrease (got {amount})")
        key = _label_key(self.labelnames, labels)
        with self._lock:
            self._data[key] = self._data.get(key, 0.0) + float(amount)

    def value(self, **labels: Any) -> float:
        key = _label_key(self.labelnames, labels)
        with self._lock:
            return float(self._data.get(key, 0.0))


class Gauge(_Instrument):
    """A value that goes up and down (queue depth, pool occupancy, ...)."""

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        key = _label_key(self.labelnames, labels)
        with self._lock:
            self._data[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        key = _label_key(self.labelnames, labels)
        with self._lock:
            self._data[key] = self._data.get(key, 0.0) + float(amount)

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: Any) -> float:
        key = _label_key(self.labelnames, labels)
        with self._lock:
            return float(self._data.get(key, math.nan))


class _HistogramState:
    __slots__ = ("counts", "sum", "count")

    def __init__(self, n_buckets: int) -> None:
        self.counts = [0] * n_buckets
        self.sum = 0.0
        self.count = 0


class Histogram(_Instrument):
    """Distribution of observations in fixed buckets (latencies, waits)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] | None = None,
    ) -> None:
        super().__init__(name, help, labelnames)
        edges = tuple(sorted(buckets)) if buckets else DEFAULT_BUCKETS
        if edges[-1] != float("inf"):
            edges = edges + (float("inf"),)
        self.buckets = edges

    def observe(self, value: float, **labels: Any) -> None:
        key = _label_key(self.labelnames, labels)
        with self._lock:
            state = self._data.get(key)
            if state is None:
                state = self._data[key] = _HistogramState(len(self.buckets))
            for i, edge in enumerate(self.buckets):
                if value <= edge:
                    state.counts[i] += 1
                    break
            state.sum += float(value)
            state.count += 1

    def snapshot(self, **labels: Any) -> dict[str, Any]:
        """``{count, sum, mean, buckets}`` for one label combination."""
        key = _label_key(self.labelnames, labels)
        with self._lock:
            state = self._data.get(key)
            if state is None:
                return {"count": 0, "sum": 0.0, "mean": math.nan, "buckets": {}}
            return self._snapshot_locked(state)

    def _series(self) -> list[tuple[LabelValues, Any]]:
        # Copy each state under the lock so exporters never read a bucket
        # list concurrently mutated by observe() on another thread.
        with self._lock:
            out: list[tuple[LabelValues, Any]] = []
            for key, state in sorted(self._data.items()):
                copy = _HistogramState(len(self.buckets))
                copy.counts = list(state.counts)
                copy.sum = state.sum
                copy.count = state.count
                out.append((key, copy))
            return out

    def _snapshot_locked(self, state: _HistogramState) -> dict[str, Any]:
        cumulative = 0
        buckets = {}
        for edge, n in zip(self.buckets, state.counts):
            cumulative += n
            buckets["+Inf" if edge == float("inf") else repr(edge)] = cumulative
        mean = state.sum / state.count if state.count else math.nan
        return {"count": state.count, "sum": state.sum, "mean": mean, "buckets": buckets}

    def _value_repr(self, value: _HistogramState) -> Any:
        return self._snapshot_locked(value)

    def _state_value(self, value: _HistogramState) -> Any:
        return {"counts": list(value.counts), "sum": value.sum, "count": value.count}

    def _state_extra(self) -> dict[str, Any]:
        # +Inf is not JSON-portable; ``None`` marks the overflow bucket.
        return {
            "buckets": [None if edge == float("inf") else edge for edge in self.buckets]
        }


class MetricsRegistry:
    """Named instruments, created once and shared by every publisher."""

    #: instrumentation sites branch on this to skip publishing work.
    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, _Instrument] = {}

    def _get_or_create(self, cls: type, name: str, *args: Any, **kwargs: Any) -> Any:
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValidationError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                return existing
            instrument = cls(name, *args, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] | None = None,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, labelnames, buckets)

    def instruments(self) -> list[_Instrument]:
        with self._lock:
            return [self._instruments[name] for name in sorted(self._instruments)]

    # -- the cross-process telemetry fabric -------------------------------------

    def drain_state(self) -> dict[str, Any]:
        """Serialize-and-reset every instrument (the worker-side drain)."""
        state: dict[str, Any] = {}
        for inst in self.instruments():
            snapshot = inst.state(drain=True)
            if snapshot["data"]:
                state[inst.name] = snapshot
        return state

    def merge_state(self, state: Mapping[str, Any]) -> int:
        """Merge a drained payload (typically from a worker process).

        Counters accumulate, gauges take the incoming value (last write
        wins), histograms add bucket counts elementwise. Returns the number
        of series merged; malformed or conflicting entries are skipped, not
        fatal.
        """
        if not self.enabled:
            return 0
        merged = 0
        for name, inst_state in dict(state).items():
            try:
                merged += self._merge_instrument(str(name), inst_state)
            except (ValidationError, TypeError, ValueError, KeyError):
                continue
        return merged

    def _merge_instrument(self, name: str, inst_state: Mapping[str, Any]) -> int:
        kind = inst_state.get("kind")
        help_text = str(inst_state.get("help", ""))
        labelnames = [str(n) for n in inst_state.get("labelnames", ())]
        data = inst_state.get("data", ())
        merged = 0
        if kind == "counter":
            counter = self.counter(name, help_text, labelnames)
            for key, value in data:
                counter.inc(float(value), **dict(zip(labelnames, key)))
                merged += 1
        elif kind == "gauge":
            gauge = self.gauge(name, help_text, labelnames)
            for key, value in data:
                gauge.set(float(value), **dict(zip(labelnames, key)))
                merged += 1
        elif kind == "histogram":
            raw_buckets = inst_state.get("buckets") or None
            buckets = (
                [float("inf") if edge is None else float(edge) for edge in raw_buckets]
                if raw_buckets
                else None
            )
            hist = self.histogram(name, help_text, labelnames, buckets)
            for key, value in data:
                counts = [int(c) for c in value["counts"]]
                if len(counts) != len(hist.buckets):
                    continue  # incompatible bucket layout: refuse silently
                label_key = tuple(str(part) for part in key)
                with hist._lock:
                    hstate = hist._data.get(label_key)
                    if hstate is None:
                        hstate = hist._data[label_key] = _HistogramState(len(hist.buckets))
                    for i, c in enumerate(counts):
                        hstate.counts[i] += c
                    hstate.sum += float(value["sum"])
                    hstate.count += int(value["count"])
                merged += 1
        return merged

    # -- export ----------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {"metrics": [inst.to_dict() for inst in self.instruments()]}

    def export_json(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2, default=str) + "\n")
        return path

    def export_jsonl(self, path: str | Path) -> Path:
        """One instrument per line (streaming-friendly variant)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        lines = [json.dumps(inst.to_dict(), default=str) for inst in self.instruments()]
        path.write_text("\n".join(lines) + ("\n" if lines else ""))
        return path

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (v0.0.4)."""
        lines: list[str] = []
        for inst in self.instruments():
            if inst.help:
                lines.append(f"# HELP {inst.name} {inst.help}")
            lines.append(f"# TYPE {inst.name} {inst.kind}")
            for key, value in inst._series():
                labels = dict(zip(inst.labelnames, key))
                if isinstance(inst, Histogram):
                    snap = inst._snapshot_locked(value)
                    for edge, cumulative in snap["buckets"].items():
                        lines.append(
                            f"{inst.name}_bucket{_fmt_labels({**labels, 'le': edge})}"
                            f" {cumulative}"
                        )
                    lines.append(f"{inst.name}_sum{_fmt_labels(labels)} {snap['sum']}")
                    lines.append(f"{inst.name}_count{_fmt_labels(labels)} {snap['count']}")
                else:
                    lines.append(f"{inst.name}{_fmt_labels(labels)} {value}")
        return "\n".join(lines) + ("\n" if lines else "")

    def export_prometheus(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.render_prometheus())
        return path


def _fmt_labels(labels: dict[str, Any]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    return "{" + inner + "}"


class _NullInstrument:
    """Accepts every instrument operation and keeps nothing."""

    __slots__ = ()

    name = "null"
    kind = "null"
    labelnames: tuple[str, ...] = ()

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        pass

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        pass

    def set(self, value: float, **labels: Any) -> None:
        pass

    def observe(self, value: float, **labels: Any) -> None:
        pass

    def value(self, **labels: Any) -> float:
        return math.nan

    def snapshot(self, **labels: Any) -> dict[str, Any]:
        return {"count": 0, "sum": 0.0, "mean": math.nan, "buckets": {}}

    def series(self) -> list[tuple[dict[str, str], Any]]:
        return []

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "kind": self.kind, "help": "", "labelnames": [], "series": []}


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry(MetricsRegistry):
    """The inert default: every instrument is the shared no-op."""

    enabled = False

    def counter(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Any:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Any:
        return _NULL_INSTRUMENT

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] | None = None,
    ) -> Any:
        return _NULL_INSTRUMENT


_default_registry: MetricsRegistry = NullRegistry()
_default_lock = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-global registry (inert unless explicitly enabled)."""
    return _default_registry


def set_registry(registry: Optional[MetricsRegistry]) -> MetricsRegistry:
    """Install ``registry`` globally (``None`` restores the null); returns it."""
    global _default_registry
    with _default_lock:
        _default_registry = registry if registry is not None else NullRegistry()
        return _default_registry

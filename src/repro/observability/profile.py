"""Per-trial cost attribution for the optimization cycle.

Every trial's runtime decomposes into three components:

- **suggest** — acquisition-function optimization plus the surrogate state
  it reads (``SearchAlgorithm.suggest``);
- **evaluate** — deploying and running the configuration (the trainable);
- **tell** — feeding the observation back, which refits the surrogate
  (``SearchAlgorithm.on_trial_complete``).

The :class:`~repro.search.runner.TrialRunner` measures all three for every
trial (a handful of clock reads — cheap enough to stay always-on) and
stores them on :attr:`Trial.cost <repro.search.trial.Trial.cost>`;
:func:`aggregate_costs` pools them into the campaign-level profile folded
into the Phase III :class:`~repro.optimizer.summary.ReproducibilitySummary`,
so a summary can explain where its own wall-clock went.

Beyond the pooled sums, the profile now carries per-component latency
*percentiles* (p50/p90/p99 via :class:`~repro.observability.digest.
LatencyDigest`) — means hide the tail, and the tail is exactly what the
perf-regression gate watches.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Optional

from repro.observability.digest import LatencyDigest

__all__ = ["CostBreakdown", "aggregate_costs", "COST_COMPONENTS"]

#: component keys, in cycle order.
COST_COMPONENTS = ("suggest_s", "evaluate_s", "tell_s")

#: components that also get a percentile column (cycle + executor wait).
PERCENTILE_COMPONENTS = ("suggest_s", "evaluate_s", "tell_s", "queue_wait_s")


def _finite(value: Any) -> Optional[float]:
    """``float(value)`` when it yields a finite number, else ``None``.

    Cost dicts cross process boundaries and checkpoints; a NaN/inf/str
    entry must degrade to "no data", never poison the campaign totals.
    """
    try:
        out = float(value)
    except (TypeError, ValueError):
        return None
    return out if math.isfinite(out) else None


@dataclass
class CostBreakdown:
    """Pooled suggest/evaluate/tell seconds over a set of trials."""

    suggest_s: float = 0.0
    evaluate_s: float = 0.0
    tell_s: float = 0.0
    trials: int = 0
    #: fault-tolerance tallies: attempts retried / attempts timed out.
    retries: int = 0
    timeouts: int = 0
    #: trials served from the evaluation cache instead of re-simulated.
    cache_hits: int = 0
    #: pooled executor queue wait (submit → worker pickup), when measured.
    queue_wait_s: float = 0.0
    #: per-component latency percentiles (component → p50/p90/p99 dict).
    percentiles: dict[str, dict[str, float]] = field(default_factory=dict)

    @property
    def total_s(self) -> float:
        return self.suggest_s + self.evaluate_s + self.tell_s

    def fractions(self) -> dict[str, float]:
        total = self.total_s
        if total <= 0:
            return {key: 0.0 for key in COST_COMPONENTS}
        return {
            "suggest_s": self.suggest_s / total,
            "evaluate_s": self.evaluate_s / total,
            "tell_s": self.tell_s / total,
        }

    def to_dict(self) -> dict[str, Any]:
        per_trial = (
            {key: getattr(self, key) / self.trials for key in COST_COMPONENTS}
            if self.trials
            else {}
        )
        return {
            "trials": self.trials,
            "total_s": self.total_s,
            "suggest_s": self.suggest_s,
            "evaluate_s": self.evaluate_s,
            "tell_s": self.tell_s,
            "queue_wait_s": self.queue_wait_s,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "cache_hits": self.cache_hits,
            "fractions": self.fractions(),
            "mean_per_trial": per_trial,
            "percentiles": {k: dict(v) for k, v in self.percentiles.items()},
        }

    def __str__(self) -> str:
        frac = self.fractions()
        return (
            f"{self.total_s:.3f}s over {self.trials} trials "
            f"(suggest {frac['suggest_s']:.0%}, evaluate {frac['evaluate_s']:.0%}, "
            f"tell {frac['tell_s']:.0%})"
        )


def aggregate_costs(costs: Iterable[Mapping[str, float]]) -> CostBreakdown:
    """Pool per-trial ``cost`` dicts; entries without data are skipped.

    Robust against dirty cost dicts (NaN/inf/non-numeric values — e.g. a
    corrupted checkpoint or a misbehaving trainable writing into
    ``trial.cost``): a bad value contributes nothing instead of turning the
    whole campaign profile into NaN.
    """
    out = CostBreakdown()
    digests = {key: LatencyDigest() for key in PERCENTILE_COMPONENTS}
    for cost in costs:
        if not cost:
            continue
        out.trials += 1
        for key in COST_COMPONENTS:
            if key not in cost:
                continue  # absent ≠ zero: keep it out of the percentile pool
            value = _finite(cost[key])
            if value is not None:
                setattr(out, key, getattr(out, key) + value)
                digests[key].add(value)
        wait = _finite(cost.get("queue_wait_s"))
        if wait is not None:
            out.queue_wait_s += wait
            digests["queue_wait_s"].add(wait)
        for attr, key in (
            ("retries", "retries"),
            ("timeouts", "timeouts"),
            ("cache_hits", "cache_hit"),
        ):
            value = _finite(cost.get(key, 0))
            if value is not None:
                setattr(out, attr, getattr(out, attr) + int(value))
    for key, digest in digests.items():
        if digest.count:
            stats = digest.percentiles()
            out.percentiles[key] = {
                "p50": stats["p50"],
                "p90": stats["p90"],
                "p99": stats["p99"],
            }
    return out

"""Per-trial cost attribution for the optimization cycle.

Every trial's runtime decomposes into three components:

- **suggest** — acquisition-function optimization plus the surrogate state
  it reads (``SearchAlgorithm.suggest``);
- **evaluate** — deploying and running the configuration (the trainable);
- **tell** — feeding the observation back, which refits the surrogate
  (``SearchAlgorithm.on_trial_complete``).

The :class:`~repro.search.runner.TrialRunner` measures all three for every
trial (a handful of clock reads — cheap enough to stay always-on) and
stores them on :attr:`Trial.cost <repro.search.trial.Trial.cost>`;
:func:`aggregate_costs` pools them into the campaign-level profile folded
into the Phase III :class:`~repro.optimizer.summary.ReproducibilitySummary`,
so a summary can explain where its own wall-clock went.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping

__all__ = ["CostBreakdown", "aggregate_costs", "COST_COMPONENTS"]

#: component keys, in cycle order.
COST_COMPONENTS = ("suggest_s", "evaluate_s", "tell_s")


@dataclass
class CostBreakdown:
    """Pooled suggest/evaluate/tell seconds over a set of trials."""

    suggest_s: float = 0.0
    evaluate_s: float = 0.0
    tell_s: float = 0.0
    trials: int = 0
    #: fault-tolerance tallies: attempts retried / attempts timed out.
    retries: int = 0
    timeouts: int = 0
    #: trials served from the evaluation cache instead of re-simulated.
    cache_hits: int = 0

    @property
    def total_s(self) -> float:
        return self.suggest_s + self.evaluate_s + self.tell_s

    def fractions(self) -> dict[str, float]:
        total = self.total_s
        if total <= 0:
            return {key: 0.0 for key in COST_COMPONENTS}
        return {
            "suggest_s": self.suggest_s / total,
            "evaluate_s": self.evaluate_s / total,
            "tell_s": self.tell_s / total,
        }

    def to_dict(self) -> dict[str, Any]:
        per_trial = (
            {key: getattr(self, key) / self.trials for key in COST_COMPONENTS}
            if self.trials
            else {}
        )
        return {
            "trials": self.trials,
            "total_s": self.total_s,
            "suggest_s": self.suggest_s,
            "evaluate_s": self.evaluate_s,
            "tell_s": self.tell_s,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "cache_hits": self.cache_hits,
            "fractions": self.fractions(),
            "mean_per_trial": per_trial,
        }

    def __str__(self) -> str:
        frac = self.fractions()
        return (
            f"{self.total_s:.3f}s over {self.trials} trials "
            f"(suggest {frac['suggest_s']:.0%}, evaluate {frac['evaluate_s']:.0%}, "
            f"tell {frac['tell_s']:.0%})"
        )


def aggregate_costs(costs: Iterable[Mapping[str, float]]) -> CostBreakdown:
    """Pool per-trial ``cost`` dicts; entries without data are skipped."""
    out = CostBreakdown()
    for cost in costs:
        if not cost:
            continue
        out.trials += 1
        out.suggest_s += float(cost.get("suggest_s", 0.0))
        out.evaluate_s += float(cost.get("evaluate_s", 0.0))
        out.tell_s += float(cost.get("tell_s", 0.0))
        out.retries += int(cost.get("retries", 0))
        out.timeouts += int(cost.get("timeouts", 0))
        out.cache_hits += int(cost.get("cache_hit", 0))
    return out

"""A live anomaly watchdog over the span stream and metrics registry.

While a campaign runs, the :class:`CampaignWatchdog` subscribes to the
recording tracer's finished-span stream (``RecordingTracer.subscribe``) and
raises structured, rate-limited :class:`Alert` records for:

- **straggler trials** — an ``execute`` span whose duration sits beyond a
  robust z-score (median/MAD) of the running duration baseline;
- **objective stall** — no incumbent improvement for ``stall_patience``
  completed trials;
- **objective regression** — a completed trial scoring far worse than the
  running median objective;
- **pool saturation** — an engine pool span reporting occupancy at or above
  the configured threshold;
- **fault storms** — too many failed evaluations inside a sliding window
  (fed both by error spans and the ``repro_faults_injected_total`` counter).

Alerts are deduplicated per subject and capped per kind, folded into the
Phase III summary, exported as ``alerts.jsonl``, and persisted inside
``checkpoint.json`` so ``optimize --resume`` neither re-fires old alerts nor
forgets them. Duration/objective baselines are *not* persisted — they are
re-seeded from the replayed trial records (:meth:`seed_from_trials`), which
keeps the checkpoint small and the baselines consistent with what the
searcher itself replays.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Any, Iterable, Mapping, Optional

from repro.errors import ValidationError
from repro.observability.digest import LatencyDigest
from repro.observability.metrics import get_registry

__all__ = [
    "WatchdogConfig",
    "Alert",
    "CampaignWatchdog",
    "get_watchdog",
    "set_watchdog",
    "load_alerts",
    "ALERTS_FILE",
]

#: artifact name of the alert log inside a run directory.
ALERTS_FILE = "alerts.jsonl"

#: every alert kind the watchdog can raise.
ALERT_KINDS = ("straggler", "stall", "regression", "saturation", "fault_storm", "tail")


@dataclass
class WatchdogConfig:
    """Thresholds for the live watchdog (the ``optimizer_conf.watchdog`` block)."""

    #: robust z-score (0.6745·(d−median)/MAD) above which a trial straggles.
    straggler_zscore: float = 3.5
    #: baseline durations required before straggler detection arms.
    straggler_min_trials: int = 4
    #: completed trials without incumbent improvement before a stall alert.
    stall_patience: int = 8
    #: robust z-score of a trial's objective vs the running median that
    #: flags a regression (direction-aware: only worse-than-median fires).
    regression_zscore: float = 4.0
    #: pool occupancy fraction at or above which a saturation alert fires.
    saturation_threshold: float = 0.95
    #: sliding window (wall seconds) for fault-storm detection.
    fault_storm_window_s: float = 30.0
    #: failed evaluations inside the window that constitute a storm.
    fault_storm_count: int = 3
    #: hard cap on emitted alerts per kind (the rate limiter).
    max_alerts_per_kind: int = 5
    #: metric attribute consulted for stall/regression (the runner's metric).
    metric: str = "objective"
    #: optimization direction of ``metric`` ("min" or "max").
    mode: str = "min"
    #: percentile-based tail rule: fire when an execute span exceeds
    #: ``tail_factor`` × the running ``tail_quantile`` duration. Disabled by
    #: default (``tail_factor=0``) — the z-score straggler rule is cheaper
    #: and the digest-backed rule is opt-in for long campaigns.
    tail_quantile: float = 0.99
    tail_factor: float = 0.0

    def __post_init__(self) -> None:
        if self.straggler_zscore <= 0:
            raise ValidationError("watchdog.straggler_zscore must be > 0")
        if self.straggler_min_trials < 2:
            raise ValidationError("watchdog.straggler_min_trials must be >= 2")
        if self.stall_patience < 1:
            raise ValidationError("watchdog.stall_patience must be >= 1")
        if self.regression_zscore <= 0:
            raise ValidationError("watchdog.regression_zscore must be > 0")
        if not 0 < self.saturation_threshold <= 1:
            raise ValidationError("watchdog.saturation_threshold must be in (0, 1]")
        if self.fault_storm_window_s <= 0:
            raise ValidationError("watchdog.fault_storm_window_s must be > 0")
        if self.fault_storm_count < 1:
            raise ValidationError("watchdog.fault_storm_count must be >= 1")
        if self.max_alerts_per_kind < 1:
            raise ValidationError("watchdog.max_alerts_per_kind must be >= 1")
        if self.mode not in ("min", "max"):
            raise ValidationError("watchdog.mode must be 'min' or 'max'")
        if not 0 < self.tail_quantile < 1:
            raise ValidationError("watchdog.tail_quantile must be in (0, 1)")
        if self.tail_factor < 0:
            raise ValidationError("watchdog.tail_factor must be >= 0")

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WatchdogConfig":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValidationError(f"unknown watchdog keys: {sorted(unknown)}")
        return cls(**dict(data))

    def to_dict(self) -> dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass
class Alert:
    """One structured watchdog finding."""

    kind: str
    severity: str  # "warning" | "critical"
    message: str
    time_s: float = 0.0
    details: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "severity": self.severity,
            "message": self.message,
            "time_s": self.time_s,
            "details": dict(self.details),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Alert":
        return cls(
            kind=str(data["kind"]),
            severity=str(data.get("severity", "warning")),
            message=str(data.get("message", "")),
            time_s=float(data.get("time_s", 0.0)),
            details=dict(data.get("details", {})),
        )


class CampaignWatchdog:
    """Consumes the live span stream; raises rate-limited alerts."""

    def __init__(self, config: WatchdogConfig | None = None) -> None:
        self.config = config or WatchdogConfig()
        self._lock = threading.Lock()
        self._alerts: list[Alert] = []
        self._fired: set[str] = set()
        self._counts: dict[str, int] = {}
        self._suppressed = 0
        self._durations: list[float] = []
        #: digest behind the opt-in percentile tail rule.
        self._duration_digest = LatencyDigest()
        self._objectives: list[float] = []
        self._best = math.inf
        self._since_improve = 0
        self._stall_active = False
        self._fault_times: list[float] = []
        self._fault_total_seen = 0.0
        self._tracer: Any = None
        #: live alert consumers (the SSE fan-out); invoked outside the lock.
        self._subscribers: list[Any] = []
        self._subscriber_errors = 0

    # -- lifecycle ---------------------------------------------------------------

    def attach(self, tracer: Any) -> None:
        """Subscribe to a tracer's finished-span stream."""
        if getattr(tracer, "enabled", False):
            tracer.subscribe(self.on_span)
            self._tracer = tracer

    def detach(self) -> None:
        if self._tracer is not None:
            self._tracer.unsubscribe(self.on_span)
            self._tracer = None

    # -- the span stream -----------------------------------------------------------

    def on_span(self, span: Any) -> None:
        name = getattr(span, "name", "")
        if name == "execute":
            self._on_execute(span)
        elif name.startswith("trial:"):
            self._on_trial(span)
        elif name.startswith("pool:"):
            self._on_pool(span)

    def _on_execute(self, span: Any) -> None:
        duration = span.duration_s
        trial_id = span.attributes.get("trial_id", "?")
        when = span.end_s or 0.0
        with self._lock:
            baseline = list(self._durations)
            self._durations.append(float(duration))
            tail_threshold = None
            if self.config.tail_factor > 0:
                if self._duration_digest.count >= self.config.straggler_min_trials:
                    tail_threshold = self.config.tail_factor * self._duration_digest.quantile(
                        self.config.tail_quantile
                    )
                self._duration_digest.add(float(duration))
        if span.status != "ok":
            self._record_fault(when, trial_id, span.error)
            return
        if tail_threshold is not None and tail_threshold > 0 and duration >= tail_threshold:
            self._emit(
                "tail",
                "warning",
                f"trial {trial_id} took {duration:.3f}s, beyond "
                f"{self.config.tail_factor:g}× the running "
                f"p{self.config.tail_quantile * 100:g} ({tail_threshold:.3f}s)",
                key=f"tail:{trial_id}",
                time_s=when,
                details={
                    "trial_id": trial_id,
                    "duration_s": float(duration),
                    "threshold_s": float(tail_threshold),
                    "quantile": self.config.tail_quantile,
                },
            )
        if len(baseline) < self.config.straggler_min_trials:
            return
        z = _robust_zscore(duration, baseline)
        if z >= self.config.straggler_zscore:
            median = _median(baseline)
            self._emit(
                "straggler",
                "warning",
                f"trial {trial_id} took {duration:.3f}s "
                f"({z:.1f} robust z-scores above the running median {median:.3f}s)",
                key=f"straggler:{trial_id}",
                time_s=when,
                details={
                    "trial_id": trial_id,
                    "duration_s": float(duration),
                    "median_s": median,
                    "zscore": z,
                },
            )

    def _on_trial(self, span: Any) -> None:
        when = span.end_s or 0.0
        value = span.attributes.get(self.config.metric)
        if isinstance(value, (int, float)) and value == value:
            self._observe_objective(float(value), str(span.attributes.get("trial_id", "?")), when)
        self.poll(time_s=when)

    def _observe_objective(self, value: float, trial_id: str, when: float) -> None:
        sign = 1.0 if self.config.mode == "min" else -1.0
        scored = sign * value  # lower is always better internally
        with self._lock:
            baseline = list(self._objectives)
            self._objectives.append(scored)
            improved = scored < self._best
            if improved:
                self._best = scored
                self._since_improve = 0
                self._stall_active = False
            else:
                self._since_improve += 1
            since = self._since_improve
            stall_pending = not self._stall_active and since >= self.config.stall_patience
            if stall_pending:
                self._stall_active = True
        if stall_pending:
            self._emit(
                "stall",
                "warning",
                f"objective has not improved for {since} trials "
                f"(incumbent {self.config.metric}={self._best_value():.6g})",
                key=f"stall:{len(baseline) + 1}",
                time_s=when,
                details={"since_improve": since, "incumbent": self._best_value()},
            )
        if len(baseline) >= self.config.straggler_min_trials:
            z = _robust_zscore(scored, baseline)
            if z >= self.config.regression_zscore:
                self._emit(
                    "regression",
                    "warning",
                    f"trial {trial_id} scored {self.config.metric}={value:.6g}, "
                    f"{z:.1f} robust z-scores worse than the running median",
                    key=f"regression:{trial_id}",
                    time_s=when,
                    details={"trial_id": trial_id, "value": value, "zscore": z},
                )

    def _best_value(self) -> float:
        sign = 1.0 if self.config.mode == "min" else -1.0
        return sign * self._best if math.isfinite(self._best) else math.nan

    def _on_pool(self, span: Any) -> None:
        occupancy = span.attributes.get("occupancy")
        if not isinstance(occupancy, (int, float)):
            return
        if occupancy >= self.config.saturation_threshold:
            pool = span.name.split(":", 1)[1]
            self._emit(
                "saturation",
                "warning",
                f"pool {pool!r} ran at {occupancy:.0%} occupancy "
                f"(threshold {self.config.saturation_threshold:.0%})",
                key=f"saturation:{pool}",
                time_s=span.end_s or 0.0,
                details={"pool": pool, "occupancy": float(occupancy)},
            )

    def _record_fault(self, when: float, trial_id: Any, error: Any) -> None:
        window = self.config.fault_storm_window_s
        with self._lock:
            self._fault_times.append(when)
            self._fault_times = [t for t in self._fault_times if t >= when - window]
            count = len(self._fault_times)
        if count >= self.config.fault_storm_count:
            self._emit(
                "fault_storm",
                "critical",
                f"{count} failed evaluations inside {window:.0f}s "
                f"(latest: trial {trial_id}: {error})",
                key=f"fault_storm:{math.floor(when / window)}",
                time_s=when,
                details={"count": count, "window_s": window},
            )

    # -- the metrics registry ---------------------------------------------------------

    def poll(self, registry: Any = None, *, time_s: float = 0.0) -> None:
        """Check registry-side signals (called live on every trial span)."""
        registry = registry if registry is not None else get_registry()
        if not getattr(registry, "enabled", False):
            return
        counter = registry.counter(
            "repro_faults_injected_total",
            "faults injected into trial evaluations",
            labelnames=("kind",),
        )
        per_kind = {labels.get("kind", "?"): value for labels, value in counter.series()}
        total = sum(per_kind.values())
        with self._lock:
            fresh = total - self._fault_total_seen
            self._fault_total_seen = max(self._fault_total_seen, total)
        if fresh >= self.config.fault_storm_count:
            self._emit(
                "fault_storm",
                "critical",
                f"{int(fresh)} faults injected since the last poll "
                f"({', '.join(f'{k}={int(v)}' for k, v in sorted(per_kind.items()))})",
                key="fault_storm:injected",
                time_s=time_s,
                details={"injected": per_kind, "fresh": fresh},
            )

    # -- alert bookkeeping ---------------------------------------------------------

    def _emit(
        self,
        kind: str,
        severity: str,
        message: str,
        *,
        key: str,
        time_s: float,
        details: dict[str, Any],
    ) -> None:
        with self._lock:
            if key in self._fired:
                return
            if self._counts.get(kind, 0) >= self.config.max_alerts_per_kind:
                self._fired.add(key)
                self._suppressed += 1
                return
            self._fired.add(key)
            self._counts[kind] = self._counts.get(kind, 0) + 1
            alert = Alert(
                kind=kind, severity=severity, message=message, time_s=time_s, details=details
            )
            self._alerts.append(alert)
            subscribers = list(self._subscribers) if self._subscribers else None
        # Callbacks run outside the lock: a subscriber reading back into the
        # watchdog (or fanning out to SSE queues) must not deadlock _emit.
        if subscribers is not None:
            for callback in subscribers:
                try:
                    callback(alert)
                except Exception:
                    with self._lock:
                        self._subscriber_errors += 1

    def subscribe(self, callback: Any) -> None:
        """Stream every *accepted* alert to ``callback`` as it fires."""
        with self._lock:
            if callback not in self._subscribers:
                self._subscribers.append(callback)

    def unsubscribe(self, callback: Any) -> None:
        with self._lock:
            if callback in self._subscribers:
                self._subscribers.remove(callback)

    def alerts(self) -> list[Alert]:
        with self._lock:
            return list(self._alerts)

    @property
    def suppressed(self) -> int:
        """Alerts dropped by the per-kind rate limit."""
        with self._lock:
            return self._suppressed

    def summary(self) -> dict[str, Any]:
        """Alert rollup folded into the Phase III summary."""
        with self._lock:
            return {
                "total": len(self._alerts),
                "by_kind": dict(sorted(self._counts.items())),
                "suppressed": self._suppressed,
                "alerts": [a.to_dict() for a in self._alerts],
            }

    def export_jsonl(self, path: str | Path) -> Path:
        """One alert per line (the ``alerts.jsonl`` run artifact)."""
        import json

        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        lines = [json.dumps(a.to_dict()) for a in self.alerts()]
        path.write_text("\n".join(lines) + ("\n" if lines else ""))
        return path

    # -- checkpoint / resume ---------------------------------------------------------

    def state_dict(self) -> dict[str, Any]:
        """Control state persisted inside ``checkpoint.json``.

        Baselines are deliberately excluded: on resume they are re-derived
        from the replayed trial records via :meth:`seed_from_trials`.
        """
        with self._lock:
            return {
                "fired": sorted(self._fired),
                "counts": dict(self._counts),
                "suppressed": self._suppressed,
                "stall_active": self._stall_active,
                "alerts": [a.to_dict() for a in self._alerts],
            }

    def load_state(self, state: Mapping[str, Any] | None) -> None:
        if not state:
            return
        with self._lock:
            self._fired = set(state.get("fired", ()))
            self._counts = {str(k): int(v) for k, v in dict(state.get("counts", {})).items()}
            self._suppressed = int(state.get("suppressed", 0))
            self._stall_active = bool(state.get("stall_active", False))
            self._alerts = [Alert.from_dict(a) for a in state.get("alerts", ())]

    def seed_from_trials(self, records: Iterable[Mapping[str, Any]]) -> int:
        """Rebuild straggler/objective baselines from replayed trial records.

        Called on ``--resume`` with the checkpointed trial dicts; updates the
        duration and objective baselines (and the incumbent) without firing
        any alert, so detection resumes exactly where the crashed campaign
        left off. Returns the number of records absorbed.
        """
        absorbed = 0
        sign = 1.0 if self.config.mode == "min" else -1.0
        with self._lock:
            for record in records:
                cost = record.get("cost") or {}
                duration = cost.get("evaluate_s")
                if isinstance(duration, (int, float)) and duration == duration:
                    self._durations.append(float(duration))
                    self._duration_digest.add(float(duration))
                result = record.get("result") or {}
                value = result.get(self.config.metric)
                if isinstance(value, (int, float)) and value == value:
                    scored = sign * float(value)
                    self._objectives.append(scored)
                    if scored < self._best:
                        self._best = scored
                        self._since_improve = 0
                    else:
                        self._since_improve += 1
                absorbed += 1
        return absorbed


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    return ordered[mid] if n % 2 else 0.5 * (ordered[mid - 1] + ordered[mid])


def _robust_zscore(value: float, baseline: list[float]) -> float:
    """0.6745·(value − median)/MAD, with a floored MAD for flat baselines."""
    median = _median(baseline)
    mad = _median([abs(v - median) for v in baseline])
    # A perfectly flat baseline would make any deviation infinitely
    # significant; floor the scale at 5% of the median (or an epsilon).
    scale = max(mad, 0.05 * abs(median), 1e-9)
    return 0.6745 * (value - median) / scale


def load_alerts(path: str | Path) -> list[Alert]:
    """Read back an ``alerts.jsonl`` artifact."""
    import json

    out = []
    file = Path(path)
    if not file.exists():
        return out
    for line in file.read_text().splitlines():
        line = line.strip()
        if line:
            out.append(Alert.from_dict(json.loads(line)))
    return out


_watchdog: Optional[CampaignWatchdog] = None
_watchdog_lock = threading.Lock()


def get_watchdog() -> Optional[CampaignWatchdog]:
    """The process-global watchdog, or ``None`` when no campaign armed one."""
    return _watchdog


def set_watchdog(watchdog: Optional[CampaignWatchdog]) -> Optional[CampaignWatchdog]:
    """Install ``watchdog`` globally (``None`` clears it); returns it."""
    global _watchdog
    with _watchdog_lock:
        _watchdog = watchdog
        return _watchdog

"""Campaign analytics: utilization timelines and critical-path attribution.

PR 1's tracer records *where time went*; this module turns those spans into
answers. Three views over one recorded campaign:

- **timelines** — per-executor-slot, per-pool and per-reservation activity
  derived from the span DAG (trial spans are greedily packed into lanes,
  which reconstructs the executor-slot occupancy without instrumenting the
  executor itself);
- **critical path** — a backward walk over the trial-segment intervals that
  attributes the campaign's wall-clock to suggest / queue-wait / deploy /
  evaluate / tell work and to idle gaps nothing was covering;
- **Chrome trace export** — the same spans as ``trace_event`` JSON, loadable
  in ``chrome://tracing`` / Perfetto (one complete ``"X"`` slice per span).

Everything here is post-hoc and pure: it reads spans (live from a
:class:`~repro.observability.trace.RecordingTracer` or replayed from
``spans.jsonl``) and never touches the process-global observability state.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Optional

from repro.observability.trace import Span, load_spans

__all__ = [
    "TrialBreakdown",
    "CriticalPath",
    "CampaignAnalysis",
    "trial_breakdowns",
    "compute_critical_path",
    "pack_lanes",
    "analyze_spans",
    "analyze_run",
    "to_trace_events",
    "write_trace_events",
    "SEGMENTS",
    "TRACE_EVENTS_FILE",
]

#: artifact name of the Chrome trace export inside a run directory.
TRACE_EVENTS_FILE = "trace_events.json"

#: child-span name → the latency segment it accounts for.
SEGMENT_OF = {
    "suggest": "suggest",
    "queue-wait": "queue_wait",
    "cycle:deploy": "deploy",
    "deploy": "deploy",
    "execute": "evaluate",
    "tell": "tell",
}

#: segment keys in cycle order (used for stable rendering everywhere).
SEGMENTS = ("suggest", "queue_wait", "deploy", "evaluate", "tell")


@dataclass
class TrialBreakdown:
    """One trial's latency, attributed to its cycle segments."""

    trial_id: str
    start_s: float
    end_s: float
    status: str = "ok"
    objective: Optional[float] = None
    #: seconds per segment (keys from :data:`SEGMENTS`).
    segments: dict[str, float] = field(default_factory=dict)
    #: raw ``(segment, start_s, end_s)`` intervals, for the critical path.
    intervals: list[tuple[str, float, float]] = field(default_factory=list)

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    @property
    def unattributed_s(self) -> float:
        """Trial wall-clock not covered by any recorded child segment."""
        return max(0.0, self.duration_s - sum(self.segments.values()))

    def to_dict(self) -> dict[str, Any]:
        return {
            "trial_id": self.trial_id,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "duration_s": self.duration_s,
            "status": self.status,
            "objective": self.objective,
            "segments": dict(self.segments),
            "unattributed_s": self.unattributed_s,
        }


def trial_breakdowns(spans: Iterable[Span]) -> list[TrialBreakdown]:
    """Per-trial segment attribution from the recorded span DAG."""
    closed = [s for s in spans if s.end_s is not None]
    children: dict[Optional[int], list[Span]] = {}
    for span in closed:
        children.setdefault(span.parent_id, []).append(span)
    out: list[TrialBreakdown] = []
    for span in closed:
        if not span.name.startswith("trial:"):
            continue
        breakdown = TrialBreakdown(
            trial_id=str(span.attributes.get("trial_id") or span.name.split(":", 1)[1]),
            start_s=span.start_s,
            end_s=span.end_s or span.start_s,
            status=str(span.attributes.get("status", span.status)),
            objective=_maybe_float(span.attributes.get("objective")),
        )
        for child in children.get(span.span_id, ()):
            segment = SEGMENT_OF.get(child.name)
            if segment is None or child.end_s is None:
                continue
            breakdown.segments[segment] = (
                breakdown.segments.get(segment, 0.0) + child.duration_s
            )
            if child.end_s > child.start_s:
                breakdown.intervals.append((segment, child.start_s, child.end_s))
        out.append(breakdown)
    out.sort(key=lambda b: (b.start_s, b.trial_id))
    return out


def _maybe_float(value: Any) -> Optional[float]:
    try:
        return None if value is None else float(value)
    except (TypeError, ValueError):
        return None


@dataclass
class CriticalPath:
    """Campaign-level critical path over the trial-segment intervals."""

    horizon_s: float = 0.0
    #: seconds of the critical path attributed to each segment kind.
    segments: dict[str, float] = field(default_factory=dict)
    #: critical-path seconds no segment interval covered.
    idle_s: float = 0.0
    #: the walked path, earliest step first.
    steps: list[dict[str, Any]] = field(default_factory=list)

    @property
    def idle_fraction(self) -> float:
        return self.idle_s / self.horizon_s if self.horizon_s > 0 else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "horizon_s": self.horizon_s,
            "segments": dict(self.segments),
            "idle_s": self.idle_s,
            "idle_fraction": self.idle_fraction,
            "steps": list(self.steps),
        }


def compute_critical_path(breakdowns: Iterable[TrialBreakdown]) -> CriticalPath:
    """Backward last-finisher walk from the campaign's end to its start.

    From the horizon end, repeatedly pick the interval finishing last among
    those starting before the cursor, charge its covered stretch to its
    segment kind, record any uncovered gap as idle, and jump to its start.
    The result decomposes the campaign makespan into "what the campaign was
    waiting on" — the quantity parallel speedups must shrink.
    """
    intervals: list[tuple[float, float, str, str]] = []
    for b in breakdowns:
        for segment, s0, s1 in b.intervals:
            intervals.append((s0, s1, segment, b.trial_id))
    path = CriticalPath()
    if not intervals:
        return path
    horizon_start = min(iv[0] for iv in intervals)
    horizon_end = max(iv[1] for iv in intervals)
    path.horizon_s = horizon_end - horizon_start
    cursor = horizon_end
    steps: list[dict[str, Any]] = []
    eps = 1e-12
    while cursor > horizon_start + eps:
        candidates = [iv for iv in intervals if iv[0] < cursor - eps]
        if not candidates:
            path.idle_s += cursor - horizon_start
            steps.append({"kind": "idle", "start_s": horizon_start, "end_s": cursor})
            break
        best = max(candidates, key=lambda iv: min(iv[1], cursor))
        top = min(best[1], cursor)
        if top < cursor - eps:
            path.idle_s += cursor - top
            steps.append({"kind": "idle", "start_s": top, "end_s": cursor})
        path.segments[best[2]] = path.segments.get(best[2], 0.0) + (top - best[0])
        steps.append(
            {"kind": best[2], "trial_id": best[3], "start_s": best[0], "end_s": top}
        )
        cursor = best[0]
    steps.reverse()
    path.steps = steps
    return path


def pack_lanes(breakdowns: Iterable[TrialBreakdown]) -> tuple[dict[str, int], int]:
    """Greedy interval packing of trials onto executor lanes.

    Returns ``(trial_id → lane, lane_count)``. Because trials are packed
    first-fit in start order, the lane count is exactly the peak number of
    concurrently open trials — the executor-slot view of the campaign.
    """
    lane_end: list[float] = []
    assignment: dict[str, int] = {}
    for b in sorted(breakdowns, key=lambda b: (b.start_s, b.trial_id)):
        for lane, end in enumerate(lane_end):
            if b.start_s >= end - 1e-9:
                lane_end[lane] = b.end_s
                assignment[b.trial_id] = lane
                break
        else:
            assignment[b.trial_id] = len(lane_end)
            lane_end.append(b.end_s)
    return assignment, len(lane_end)


@dataclass
class CampaignAnalysis:
    """Everything the dashboard and the run report need, in one object."""

    trials: list[TrialBreakdown] = field(default_factory=list)
    critical_path: CriticalPath = field(default_factory=CriticalPath)
    #: trial_id → executor lane (slot) index.
    lanes: dict[str, int] = field(default_factory=dict)
    lane_count: int = 0
    slot_busy_s: float = 0.0
    slot_idle_fraction: float = 0.0
    horizon_start_s: float = 0.0
    horizon_end_s: float = 0.0
    #: ``pool:*`` span attributes (occupancy, grants, waits) per engine run.
    pools: list[dict[str, Any]] = field(default_factory=list)
    #: ``reservation:*`` span attributes per testbed job.
    reservations: list[dict[str, Any]] = field(default_factory=list)
    #: control-plane spans (experiment / phase / validation roots).
    phases: list[dict[str, Any]] = field(default_factory=list)

    @property
    def horizon_s(self) -> float:
        return self.horizon_end_s - self.horizon_start_s

    def to_dict(self) -> dict[str, Any]:
        return {
            "horizon_s": self.horizon_s,
            "horizon_start_s": self.horizon_start_s,
            "horizon_end_s": self.horizon_end_s,
            "trials": [b.to_dict() for b in self.trials],
            "critical_path": self.critical_path.to_dict(),
            "lanes": dict(self.lanes),
            "lane_count": self.lane_count,
            "slot_busy_s": self.slot_busy_s,
            "slot_idle_fraction": self.slot_idle_fraction,
            "pools": list(self.pools),
            "reservations": list(self.reservations),
            "phases": list(self.phases),
        }


def analyze_spans(spans: Iterable[Span]) -> CampaignAnalysis:
    """Build the full campaign analysis from recorded spans."""
    closed = [s for s in spans if s.end_s is not None]
    analysis = CampaignAnalysis()
    analysis.trials = trial_breakdowns(closed)
    analysis.critical_path = compute_critical_path(analysis.trials)
    analysis.lanes, analysis.lane_count = pack_lanes(analysis.trials)
    if analysis.trials:
        analysis.horizon_start_s = min(b.start_s for b in analysis.trials)
        analysis.horizon_end_s = max(b.end_s for b in analysis.trials)
        analysis.slot_busy_s = sum(b.duration_s for b in analysis.trials)
        capacity = analysis.lane_count * analysis.horizon_s
        if capacity > 0:
            analysis.slot_idle_fraction = max(
                0.0, 1.0 - analysis.slot_busy_s / capacity
            )
    for span in closed:
        if span.name.startswith("pool:"):
            entry = {
                "pool": span.name.split(":", 1)[1],
                "start_s": span.start_s,
                "end_s": span.end_s,
            }
            entry.update(_plain_attributes(span))
            analysis.pools.append(entry)
        elif span.name.startswith("reservation:"):
            entry = {
                "job_id": span.name.split(":", 1)[1],
                "start_s": span.start_s,
                "end_s": span.end_s,
            }
            entry.update(_plain_attributes(span))
            analysis.reservations.append(entry)
        elif span.parent_id is None and (
            span.name.startswith(("phase:", "experiment:", "validation:"))
        ):
            analysis.phases.append(
                {"name": span.name, "start_s": span.start_s, "end_s": span.end_s}
            )
    analysis.pools.sort(key=lambda p: (p["start_s"], p["pool"]))
    analysis.reservations.sort(key=lambda r: (r["start_s"], r["job_id"]))
    analysis.phases.sort(key=lambda p: p["start_s"])
    return analysis


def _plain_attributes(span: Span) -> dict[str, Any]:
    """Span attributes restricted to JSON-plain values."""
    out = {}
    for key, value in span.attributes.items():
        if isinstance(value, (int, float, str, bool)) or value is None:
            out[key] = value
    return out


def analyze_run(run_dir: str | Path) -> CampaignAnalysis:
    """Analyze the ``spans.jsonl`` artifact of a recorded run directory."""
    path = Path(run_dir) / "spans.jsonl"
    return analyze_spans(load_spans(path) if path.exists() else [])


# -- Chrome trace_event export --------------------------------------------------------


def to_trace_events(spans: Iterable[Span]) -> dict[str, Any]:
    """Spans as a Chrome ``trace_event`` document (``chrome://tracing``).

    Layout: pid 1 is the campaign (tid 0 = control plane, tid 1..N = the
    packed executor slots), pid 2 the engine pools, pid 3 the testbed
    reservations. Every closed span becomes one complete ``"X"`` slice with
    microsecond timestamps relative to the tracer epoch.
    """
    closed = [s for s in spans if s.end_s is not None]
    by_id = {s.span_id: s for s in closed}
    breakdowns = trial_breakdowns(closed)
    lane_of, lane_count = pack_lanes(breakdowns)

    def trial_ancestor(span: Span) -> Optional[str]:
        cursor: Optional[Span] = span
        hops = 0
        while cursor is not None and hops < 64:
            if cursor.name.startswith("trial:"):
                return str(
                    cursor.attributes.get("trial_id") or cursor.name.split(":", 1)[1]
                )
            cursor = by_id.get(cursor.parent_id) if cursor.parent_id is not None else None
            hops += 1
        return None

    pool_tids: dict[str, int] = {}
    reservation_tids: dict[str, int] = {}
    events: list[dict[str, Any]] = [
        _meta(1, 0, "process_name", name="campaign"),
        _meta(1, 0, "thread_name", name="control"),
    ]
    for lane in range(lane_count):
        events.append(_meta(1, lane + 1, "thread_name", name=f"slot-{lane}"))
    slices: list[dict[str, Any]] = []
    for span in closed:
        trial_id = trial_ancestor(span)
        if trial_id is not None:
            pid, tid = 1, 1 + lane_of.get(trial_id, 0)
            category = SEGMENT_OF.get(span.name, "trial")
        elif span.name.startswith("pool:") or span.name == "engine.run":
            pid = 2
            pool = span.name.split(":", 1)[1] if span.name.startswith("pool:") else "engine"
            if pool not in pool_tids:
                pool_tids[pool] = len(pool_tids)
                events.append(_meta(2, pool_tids[pool], "thread_name", name=pool))
            tid = pool_tids[pool]
            category = "engine"
        elif span.name.startswith("reservation:"):
            pid = 3
            job = span.name.split(":", 1)[1]
            if job not in reservation_tids:
                reservation_tids[job] = len(reservation_tids)
                events.append(_meta(3, reservation_tids[job], "thread_name", name=job))
            tid = reservation_tids[job]
            category = "testbed"
        else:
            pid, tid = 1, 0
            category = span.name.split(":", 1)[0]
        args = _plain_attributes(span)
        if span.status != "ok":
            args["status"] = span.status
        if span.error:
            args["error"] = span.error
        slices.append(
            {
                "ph": "X",
                "name": span.name,
                "cat": category,
                "ts": round(span.start_s * 1e6, 3),
                "dur": round(span.duration_s * 1e6, 3),
                "pid": pid,
                "tid": tid,
                "args": args,
            }
        )
    if pool_tids:
        events.insert(2, _meta(2, 0, "process_name", name="engine"))
    if reservation_tids:
        events.insert(2, _meta(3, 0, "process_name", name="testbed"))
    events.extend(sorted(slices, key=lambda e: (e["pid"], e["tid"], e["ts"])))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _meta(pid: int, tid: int, event: str, **args: Any) -> dict[str, Any]:
    return {"ph": "M", "pid": pid, "tid": tid, "name": event, "args": args}


def write_trace_events(spans: Iterable[Span], path: str | Path) -> Path:
    """Write the Chrome trace export; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(to_trace_events(spans)) + "\n")
    return path

"""End-to-end observability for the optimization cycle.

Three pillars, all zero-cost when disabled (the defaults are a no-op tracer
and a null metrics registry):

- :mod:`repro.observability.trace` — nested spans with wall *and* simulated
  clocks, covering every phase of the cycle (deploy → execute → optimize →
  reconfigure), every trial (suggest / execute / tell), the DES event loop
  and the engine's thread pools;
- :mod:`repro.observability.metrics` — a counters/gauges/histograms registry
  with JSON(L) and Prometheus-text exporters;
- :mod:`repro.observability.profile` — per-trial cost attribution (surrogate
  fit vs. acquisition vs. evaluation) folded into the Phase III summary.

``python -m repro report <run-dir>`` renders the exported artifacts
(:mod:`repro.observability.report`).

Typical use::

    from repro import observability as obs

    tracer, registry = obs.enable()
    ... run an OptimizationManager campaign ...
    obs.export(run_dir)       # spans.jsonl + metrics.json + metrics.prom
    obs.disable()
"""

from __future__ import annotations

from pathlib import Path

from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    get_registry,
    set_registry,
)
from repro.observability.profile import COST_COMPONENTS, CostBreakdown, aggregate_costs
from repro.observability.report import RunArtifacts, load_run, render_report
from repro.observability.trace import (
    NoopTracer,
    RecordingTracer,
    Span,
    Tracer,
    get_tracer,
    load_spans,
    set_tracer,
    tracing,
)

__all__ = [
    "Span",
    "Tracer",
    "NoopTracer",
    "RecordingTracer",
    "get_tracer",
    "set_tracer",
    "tracing",
    "load_spans",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "get_registry",
    "set_registry",
    "CostBreakdown",
    "aggregate_costs",
    "COST_COMPONENTS",
    "RunArtifacts",
    "load_run",
    "render_report",
    "enable",
    "disable",
    "export",
]


def enable() -> tuple[RecordingTracer, MetricsRegistry]:
    """Install a recording tracer + live registry globally; returns both."""
    tracer = RecordingTracer()
    registry = MetricsRegistry()
    set_tracer(tracer)
    set_registry(registry)
    return tracer, registry


def disable() -> None:
    """Restore the inert defaults (no-op tracer, null registry)."""
    set_tracer(None)
    set_registry(None)


def export(run_dir: str | Path) -> list[Path]:
    """Write the global tracer/registry artifacts into ``run_dir``.

    Only enabled components export; returns the paths written.
    """
    run_dir = Path(run_dir)
    written: list[Path] = []
    tracer = get_tracer()
    if isinstance(tracer, RecordingTracer):
        written.append(tracer.export_jsonl(run_dir / "spans.jsonl"))
    registry = get_registry()
    if registry.enabled:
        written.append(registry.export_json(run_dir / "metrics.json"))
        written.append(registry.export_prometheus(run_dir / "metrics.prom"))
    return written

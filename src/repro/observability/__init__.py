"""End-to-end observability for the optimization cycle.

Three pillars, all zero-cost when disabled (the defaults are a no-op tracer
and a null metrics registry):

- :mod:`repro.observability.trace` — nested spans with wall *and* simulated
  clocks, covering every phase of the cycle (deploy → execute → optimize →
  reconfigure), every trial (suggest / execute / tell), the DES event loop
  and the engine's thread pools;
- :mod:`repro.observability.metrics` — a counters/gauges/histograms registry
  with JSON(L) and Prometheus-text exporters;
- :mod:`repro.observability.profile` — per-trial cost attribution (surrogate
  fit vs. acquisition vs. evaluation) folded into the Phase III summary;
- :mod:`repro.observability.analysis` — campaign analytics derived from the
  spans: per-slot utilization timelines, Chrome ``trace_event`` export, and
  critical-path latency attribution;
- :mod:`repro.observability.watchdog` — a live anomaly watchdog on the span
  stream (stragglers, objective stalls/regressions, pool saturation, fault
  storms) emitting rate-limited structured alerts;
- :mod:`repro.observability.dashboard` — a self-contained HTML timeline
  (``python -m repro dashboard <run-dir>``), no external assets;
- :mod:`repro.observability.digest` — mergeable latency digests on every
  hot-path op (suggest/tell/evaluate/queue-wait/deploy/cache/DES), exported
  as ``perf_profile.json`` plus Prometheus summary series;
- :mod:`repro.observability.fabric` — the cross-process telemetry fabric:
  process-pool workers record spans/metrics/digests locally and the parent
  merges them back with ``runner_id``/``pid`` attribution;
- :mod:`repro.observability.perf` — perf baselines and the regression gate
  (``python -m repro perf record|diff``);
- :mod:`repro.observability.live` — the live telemetry plane: an embedded
  HTTP monitor (``optimize --serve``) exposing Prometheus ``/metrics``, a
  ``/status`` campaign document, an SSE ``/events`` stream, the live
  dashboard, and token-gated ``POST /telemetry`` ingest for remote workers
  (``python -m repro worker --push-telemetry``).

``python -m repro report <run-dir>`` renders the exported artifacts
(:mod:`repro.observability.report`).

Typical use::

    from repro import observability as obs

    tracer, registry = obs.enable()
    ... run an OptimizationManager campaign ...
    obs.export(run_dir)       # spans.jsonl + metrics + timeline + alerts
    obs.disable()
"""

from __future__ import annotations

from pathlib import Path

from repro.observability.analysis import (
    CampaignAnalysis,
    CriticalPath,
    TrialBreakdown,
    analyze_run,
    analyze_spans,
    compute_critical_path,
    to_trace_events,
    trial_breakdowns,
    write_trace_events,
)
from repro.observability.dashboard import render_dashboard, write_dashboard
from repro.observability.digest import (
    PERF_PROFILE_FILE,
    LatencyDigest,
    NullPerfRecorder,
    PerfRecorder,
    get_perf,
    set_perf,
)
from repro.observability.fabric import (
    activate_worker,
    drain_worker,
    merge_payload,
    worker_active,
)
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    get_registry,
    set_registry,
)
# after dashboard/watchdog/fabric: live builds on all three.
from repro.observability.live import (
    LiveMonitor,
    StatusBoard,
    TelemetryPusher,
    fetch_status,
    get_status_board,
    parse_serve_spec,
    set_status_board,
    stream_events,
)
from repro.observability.profile import COST_COMPONENTS, CostBreakdown, aggregate_costs
from repro.observability.report import (
    RunArtifacts,
    load_run,
    render_report,
    render_report_json,
)
from repro.observability.trace import (
    NoopTracer,
    RecordingTracer,
    Span,
    Tracer,
    get_tracer,
    load_spans,
    set_tracer,
    tracing,
)
from repro.observability.watchdog import (
    Alert,
    CampaignWatchdog,
    WatchdogConfig,
    get_watchdog,
    load_alerts,
    set_watchdog,
)

__all__ = [
    "Span",
    "Tracer",
    "NoopTracer",
    "RecordingTracer",
    "get_tracer",
    "set_tracer",
    "tracing",
    "load_spans",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "get_registry",
    "set_registry",
    "CostBreakdown",
    "aggregate_costs",
    "COST_COMPONENTS",
    "RunArtifacts",
    "load_run",
    "render_report",
    "CampaignAnalysis",
    "CriticalPath",
    "TrialBreakdown",
    "analyze_run",
    "analyze_spans",
    "compute_critical_path",
    "trial_breakdowns",
    "to_trace_events",
    "write_trace_events",
    "render_dashboard",
    "write_dashboard",
    "Alert",
    "CampaignWatchdog",
    "WatchdogConfig",
    "get_watchdog",
    "set_watchdog",
    "load_alerts",
    "LatencyDigest",
    "PerfRecorder",
    "NullPerfRecorder",
    "get_perf",
    "set_perf",
    "PERF_PROFILE_FILE",
    "activate_worker",
    "drain_worker",
    "merge_payload",
    "worker_active",
    "LiveMonitor",
    "StatusBoard",
    "TelemetryPusher",
    "get_status_board",
    "set_status_board",
    "parse_serve_spec",
    "fetch_status",
    "stream_events",
    "render_report_json",
    "enable",
    "disable",
    "export",
]


def enable() -> tuple[RecordingTracer, MetricsRegistry]:
    """Install a recording tracer + live registry globally; returns both.

    Also installs a live :class:`PerfRecorder` (reachable via
    :func:`get_perf`) so every hot-path op accumulates latency digests.
    The return stays a 2-tuple for compatibility.
    """
    tracer = RecordingTracer()
    registry = MetricsRegistry()
    set_tracer(tracer)
    set_registry(registry)
    set_perf(PerfRecorder())
    return tracer, registry


def disable() -> None:
    """Restore the inert defaults (no-op tracer, null registry)."""
    set_tracer(None)
    set_registry(None)
    set_perf(None)


def export(run_dir: str | Path) -> list[Path]:
    """Write the global tracer/registry artifacts into ``run_dir``.

    Only enabled components export; returns the paths written.
    """
    run_dir = Path(run_dir)
    written: list[Path] = []
    tracer = get_tracer()
    if isinstance(tracer, RecordingTracer):
        written.append(tracer.export_jsonl(run_dir / "spans.jsonl"))
        spans = tracer.finished()
        if spans:
            from repro.observability.analysis import TRACE_EVENTS_FILE
            from repro.observability.dashboard import TIMELINE_FILE

            written.append(write_trace_events(spans, run_dir / TRACE_EVENTS_FILE))
            watchdog = get_watchdog()
            alerts = (
                [alert.to_dict() for alert in watchdog.alerts()]
                if watchdog is not None
                else []
            )
            live_perf = get_perf()
            written.append(
                write_dashboard(
                    analyze_spans(spans),
                    run_dir / TIMELINE_FILE,
                    title=run_dir.name,
                    alerts=alerts,
                    perf=live_perf.to_dict() if live_perf.enabled else None,
                )
            )
    watchdog = get_watchdog()
    if watchdog is not None:
        from repro.observability.watchdog import ALERTS_FILE

        written.append(watchdog.export_jsonl(run_dir / ALERTS_FILE))
    registry = get_registry()
    perf = get_perf()
    if registry.enabled:
        if isinstance(tracer, RecordingTracer):
            # Self-metrics as gauges: export() may run more than once per
            # campaign, and a gauge set is idempotent where a counter
            # increment would double-count.
            registry.gauge(
                "repro_tracer_spans_recorded", "spans finished by the tracer"
            ).set(tracer.spans_recorded)
            registry.gauge(
                "repro_tracer_subscriber_errors",
                "span-subscriber callbacks that raised",
            ).set(tracer.subscriber_errors)
        written.append(registry.export_json(run_dir / "metrics.json"))
        prom_text = registry.render_prometheus()
        if perf.enabled:
            prom_text = prom_text + perf.render_prometheus()
        prom_path = run_dir / "metrics.prom"
        prom_path.parent.mkdir(parents=True, exist_ok=True)
        prom_path.write_text(prom_text)
        written.append(prom_path)
    if perf.enabled:
        written.append(perf.export_json(run_dir / PERF_PROFILE_FILE))
    return written

"""The cross-process telemetry fabric.

Process-pool workers used to be observability black holes: spans, metrics
and latency digests recorded inside a worker died with the worker, so a
process-executor campaign produced traces with empty evaluations. The
fabric closes the loop in three moves:

1. **activate** — the pool initializer calls :func:`activate_worker`, which
   installs a worker-local recording tracer, metrics registry and perf
   recorder (the same process-global slots the instrumented code already
   publishes into — no instrumentation site changes);
2. **drain** — after each trial the worker calls :func:`drain_worker`,
   serializing everything recorded since the previous drain into one
   JSON-able payload shipped back alongside the trial result;
3. **merge** — the parent calls :func:`merge_payload`, which remaps span
   ids, rebases the worker clock onto the parent tracer's timeline (via
   each tracer's ``started_at`` wall timestamp), stamps ``runner_id`` /
   ``pid`` attribution onto every span, accumulates counters/histograms
   into the parent registry and folds latency digests into the parent
   recorder. Merged spans stream through the parent tracer's subscribers,
   so the live watchdog sees worker-side spans too.

The payload is a plain dict of JSON types, so the same schema works over
pickle (process pools today) or a wire protocol (the ROADMAP's multi-host
runner backend tomorrow). Merge accounting is self-observable:
``repro_fabric_merged_spans_total`` / ``repro_fabric_merge_dropped_total``.
"""

from __future__ import annotations

import os
from typing import Any, Mapping, Optional

from repro.observability.digest import (
    PerfRecorder,
    get_perf,
    set_perf,
)
from repro.observability.metrics import (
    MetricsRegistry,
    get_registry,
    set_registry,
)
from repro.observability.trace import (
    RecordingTracer,
    Span,
    get_tracer,
    set_tracer,
)

__all__ = [
    "FABRIC_SCHEMA",
    "activate_worker",
    "worker_active",
    "worker_runner_id",
    "drain_worker",
    "merge_payload",
]

#: schema tag carried by every fabric payload.
FABRIC_SCHEMA = "repro.fabric/1"

#: this process's worker identity, or ``None`` outside an activated worker.
_runner_id: Optional[str] = None
#: pid that performed the activation — a forked child inherits the parent's
#: module globals, so the id must be re-derived when the pid changed.
_activated_pid: Optional[int] = None


def activate_worker(runner_name: str = "experiment") -> str:
    """Install worker-local telemetry; idempotent per (process, runner name).

    Called by the process-pool initializer. The worker's identity is
    ``<runner_name>/w<pid>`` and is stamped onto every span merged back
    into the parent.

    Re-activation resets stale state: a pool-worker process reused (or
    forked) by a *second* pool with a different runner name — or a child
    that inherited an activated parent's globals across ``fork`` — would
    otherwise keep the first activation's ``runner_id`` and mis-attribute
    every span it ships. When the name or pid differs from the recorded
    activation, fresh telemetry slots are installed (dropping anything the
    previous identity had buffered) and the id is re-derived.
    """
    global _runner_id, _activated_pid
    pid = os.getpid()
    runner_id = f"{runner_name}/w{pid}"
    if _runner_id == runner_id and _activated_pid == pid:
        return _runner_id
    # First activation, a new identity, or a forked inheritance: telemetry
    # buffered under the old identity must not leak into the new one.
    set_tracer(RecordingTracer())
    set_registry(MetricsRegistry())
    set_perf(PerfRecorder())
    _runner_id = runner_id
    _activated_pid = pid
    return _runner_id


def worker_active() -> bool:
    """Whether this process is an activated fabric worker."""
    return _runner_id is not None


def worker_runner_id() -> Optional[str]:
    return _runner_id


def drain_worker() -> Optional[dict[str, Any]]:
    """Serialize-and-reset this worker's telemetry into one payload.

    Returns ``None`` outside an activated worker. Each drain carries only
    what was recorded since the previous one, so per-trial payloads never
    double count.
    """
    if _runner_id is None:
        return None
    payload: dict[str, Any] = {
        "schema": FABRIC_SCHEMA,
        "pid": os.getpid(),
        "runner_id": _runner_id,
    }
    tracer = get_tracer()
    if isinstance(tracer, RecordingTracer):
        payload["epoch_unix"] = tracer.started_at
        payload["spans"] = [span.to_dict() for span in tracer.drain()]
    registry = get_registry()
    if registry.enabled:
        payload["metrics"] = registry.drain_state()
    perf = get_perf()
    if perf.enabled:
        payload["perf"] = perf.drain_state()
    return payload


def merge_payload(
    payload: Mapping[str, Any],
    *,
    tracer: Any = None,
    registry: Any = None,
    perf: Any = None,
    parent: Optional[Span] = None,
    attributes: Optional[dict[str, Any]] = None,
) -> int:
    """Fold one worker payload into the parent-side telemetry.

    ``parent`` (typically the open trial span) adopts worker spans whose
    parent did not travel in the payload; ``attributes`` (e.g.
    ``trial_id``) are stamped onto every merged span alongside the
    payload's ``runner_id``/``pid``. Returns the number of spans merged.
    Malformed payloads count into ``repro_fabric_merge_dropped_total``
    rather than raising — a telemetry bug must never fail a trial.
    """
    tracer = tracer if tracer is not None else get_tracer()
    registry = registry if registry is not None else get_registry()
    perf = perf if perf is not None else get_perf()
    merged = 0
    dropped = 0
    if not isinstance(payload, Mapping) or payload.get("schema") != FABRIC_SCHEMA:
        dropped += 1
        payload = {}
    span_attrs = dict(attributes or {})
    if payload.get("runner_id") is not None:
        span_attrs.setdefault("runner_id", payload["runner_id"])
    if payload.get("pid") is not None:
        span_attrs.setdefault("pid", payload["pid"])
    spans = payload.get("spans") or []
    if spans and isinstance(tracer, RecordingTracer):
        epoch = payload.get("epoch_unix")
        merged, span_dropped = tracer.ingest(
            list(spans), parent=parent, epoch_unix=epoch, attributes=span_attrs
        )
        dropped += span_dropped
    metrics_state = payload.get("metrics")
    if metrics_state and getattr(registry, "enabled", False):
        registry.merge_state(metrics_state)
    perf_state = payload.get("perf")
    if perf_state and getattr(perf, "enabled", False):
        perf.merge_state(perf_state)
    if getattr(registry, "enabled", False):
        registry.counter(
            "repro_fabric_merged_spans_total",
            "worker spans merged into the parent tracer",
        ).inc(merged)
        registry.counter(
            "repro_fabric_merge_dropped_total",
            "malformed fabric entries dropped during merge",
        ).inc(dropped)
    return merged

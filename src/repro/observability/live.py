"""The live telemetry plane: an in-campaign HTTP monitor.

Every other observability surface in this package is post-hoc — spans,
digests, alerts and perf profiles land in files and are rendered after the
run. The live plane attaches a stdlib :class:`ThreadingHTTPServer` to a
*running* campaign (opt-in via ``optimize --serve [host:]port`` or
``OptimizerConf.serve``) and exposes:

- ``GET /metrics`` — Prometheus text exposition from the live registry and
  perf-digest summaries, plus ``repro_live_*`` self-metrics;
- ``GET /status`` — campaign JSON: phase, trial counts, incumbent,
  objective-history tail, and worker liveness derived from the trial
  store's heartbeat ledger;
- ``GET /events`` — a Server-Sent Events stream fed by the tracer's
  ``subscribe`` hook and the watchdog's alert stream. Each client gets a
  *bounded* queue; a slow consumer drops events (counted) instead of ever
  blocking the campaign hot path;
- ``GET /`` — the timeline dashboard in live mode (polls ``/status``,
  subscribes to ``/events``);
- ``POST /telemetry`` — token-authenticated ingest of telemetry-fabric
  payloads, so ``python -m repro worker --push-telemetry URL`` on another
  host streams spans/metrics/digests back *mid-campaign* instead of only
  embedding them in trial outcomes.

The monitor writes a ``monitor.json`` discovery file into the run
directory (URL + ingest token), so workers sharing the run dir — local or
via a shared filesystem — auto-discover where to push. GET endpoints are
unauthenticated (read-only); the token only gates ingest.

Everything here is stdlib-only and the server runs on daemon threads, so a
wedged client can never prevent campaign shutdown.
"""

from __future__ import annotations

import json
import os
import queue
import secrets
import socket
import threading
import time
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Callable, Iterator, Mapping, Optional

from repro.errors import ValidationError
from repro.observability import fabric
from repro.observability.digest import get_perf
from repro.observability.metrics import get_registry
from repro.observability.trace import get_tracer
from repro.observability.watchdog import get_watchdog

__all__ = [
    "MONITOR_FILE",
    "STATUS_SCHEMA",
    "PUSH_SCHEMA",
    "NullStatusBoard",
    "StatusBoard",
    "get_status_board",
    "set_status_board",
    "parse_serve_spec",
    "LiveMonitor",
    "TelemetryPusher",
    "fetch_status",
    "stream_events",
    "render_status_line",
]

#: discovery file written into the run directory while the monitor is up.
MONITOR_FILE = "monitor.json"
#: schema tag on ``/status`` documents and ``monitor.json``.
STATUS_SCHEMA = "repro.live/1"
#: schema tag on ``POST /telemetry`` envelope documents.
PUSH_SCHEMA = "repro.live.push/1"

#: request body ceiling for ``POST /telemetry`` (defensive bound).
_MAX_BODY_BYTES = 32 * 1024 * 1024


# -- campaign status board ------------------------------------------------------------


class NullStatusBoard:
    """Inert default: the runner's hooks cost one attribute check."""

    enabled = False

    def configure(self, **kwargs: Any) -> None:
        pass

    def set_phase(self, phase: str) -> None:
        pass

    def trial_started(self, trial_id: str) -> None:
        pass

    def trial_finished(
        self, trial_id: str, *, value: float | None = None, status: str = ""
    ) -> None:
        pass

    def snapshot(self, tail: int = 32) -> dict[str, Any]:
        return {}


class StatusBoard(NullStatusBoard):
    """Thread-safe campaign progress counters backing ``GET /status``.

    The runner calls :meth:`trial_started` / :meth:`trial_finished` from the
    submit loop; the manager drives :meth:`set_phase`. Everything else is
    derived, so the hot-path cost is one short critical section per trial.
    """

    enabled = True

    def __init__(
        self,
        *,
        name: str = "campaign",
        num_samples: int = 0,
        mode: str = "min",
        history_limit: int = 4096,
    ) -> None:
        self._lock = threading.Lock()
        self.name = name
        self.num_samples = int(num_samples)
        self.mode = mode
        self.started_unix = time.time()
        self._phase = "starting"
        self._running: set[str] = set()
        self._done = 0
        self._errors = 0
        self._history_limit = int(history_limit)
        self._history: list[tuple[str, float]] = []
        self._incumbent_value: float | None = None
        self._incumbent_trial: str | None = None

    def configure(self, **kwargs: Any) -> None:
        with self._lock:
            for key in ("name", "mode"):
                if key in kwargs:
                    setattr(self, key, kwargs[key])
            if "num_samples" in kwargs:
                self.num_samples = int(kwargs["num_samples"])

    def set_phase(self, phase: str) -> None:
        with self._lock:
            self._phase = phase

    def trial_started(self, trial_id: str) -> None:
        with self._lock:
            self._running.add(trial_id)

    def trial_finished(
        self, trial_id: str, *, value: float | None = None, status: str = ""
    ) -> None:
        with self._lock:
            self._running.discard(trial_id)
            self._done += 1
            if status == "error":
                self._errors += 1
            # NaN guards itself: NaN != NaN.
            if value is not None and value == value:
                value = float(value)
                self._history.append((trial_id, value))
                if len(self._history) > self._history_limit:
                    del self._history[: -self._history_limit]
                best = self._incumbent_value
                better = (
                    best is None
                    or (self.mode == "max" and value > best)
                    or (self.mode != "max" and value < best)
                )
                if better:
                    self._incumbent_value = value
                    self._incumbent_trial = trial_id

    def snapshot(self, tail: int = 32) -> dict[str, Any]:
        with self._lock:
            total = max(self.num_samples, self._done + len(self._running))
            return {
                "name": self.name,
                "phase": self._phase,
                "mode": self.mode,
                "started_unix": self.started_unix,
                "uptime_s": time.time() - self.started_unix,
                "trials": {
                    "total": total,
                    "done": self._done,
                    "running": len(self._running),
                    "pending": max(0, total - self._done - len(self._running)),
                    "errors": self._errors,
                },
                "incumbent": {
                    "trial_id": self._incumbent_trial,
                    "value": self._incumbent_value,
                },
                "objective_tail": [
                    [tid, val] for tid, val in self._history[-int(tail):]
                ],
            }


_board: NullStatusBoard = NullStatusBoard()
_board_lock = threading.Lock()


def get_status_board() -> NullStatusBoard:
    """The process-global status board (inert unless a campaign serves)."""
    return _board


def set_status_board(board: NullStatusBoard | None) -> NullStatusBoard:
    """Install ``board`` globally (``None`` restores the null); returns it."""
    global _board
    with _board_lock:
        _board = board if board is not None else NullStatusBoard()
        return _board


# -- serve-spec parsing ---------------------------------------------------------------


def parse_serve_spec(spec: str | int | None) -> tuple[str, int] | None:
    """Parse ``--serve``/``OptimizerConf.serve`` into ``(host, port)``.

    Accepts a bare port (``8080``, ``"8080"``) — bound on 127.0.0.1 — or
    ``"HOST:PORT"``. Port ``0`` asks the OS for an ephemeral port (the
    monitor publishes the real one in ``monitor.json``). ``None`` means
    serving is off and returns ``None``.
    """
    if spec is None:
        return None
    if isinstance(spec, bool):
        raise ValidationError(f"invalid serve spec: {spec!r}")
    if isinstance(spec, int):
        host, port_text = "127.0.0.1", str(spec)
    else:
        text = str(spec).strip()
        if not text:
            raise ValidationError("serve spec is empty")
        host, sep, port_text = text.rpartition(":")
        if not sep:
            host = "127.0.0.1"
    try:
        port = int(port_text)
    except ValueError:
        raise ValidationError(f"invalid serve port: {port_text!r}") from None
    if not (0 <= port <= 65535):
        raise ValidationError(f"serve port out of range: {port}")
    return (host or "127.0.0.1", port)


# -- the SSE fan-out ------------------------------------------------------------------


class _SSEClient:
    """One connected ``/events`` consumer: a bounded queue + drop counter."""

    __slots__ = ("queue", "dropped")

    def __init__(self, maxsize: int) -> None:
        self.queue: "queue.Queue[tuple[str, str] | None]" = queue.Queue(maxsize=maxsize)
        self.dropped = 0


class LiveMonitor:
    """The embedded HTTP monitor for one campaign.

    Lifecycle belongs to :class:`~repro.optimizer.manager.OptimizationManager`
    (or a test): :meth:`start` binds the server, subscribes to the live
    tracer/watchdog, and writes the ``monitor.json`` discovery file;
    :meth:`stop` reverses all of it. The server never touches campaign
    state directly — it reads the process-global observability singletons,
    so it serves whatever the campaign records.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        run_dir: str | Path | None = None,
        name: str = "campaign",
        token: str | None = None,
        sse_queue_size: int = 256,
        keepalive_s: float = 15.0,
    ) -> None:
        self.host = host
        self.requested_port = int(port)
        self.run_dir = Path(run_dir) if run_dir is not None else None
        self.name = name
        #: gates ``POST /telemetry``; GET endpoints stay open (read-only).
        self.token = token or secrets.token_hex(16)
        self.sse_queue_size = int(sse_queue_size)
        self.keepalive_s = float(keepalive_s)
        self._server: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._clients: list[_SSEClient] = []
        self._clients_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._requests: dict[str, int] = {}
        self._events_sent = 0
        self._events_dropped = 0
        self._telemetry_merges = 0
        self._telemetry_spans = 0
        self._telemetry_rejected = 0
        self._subscribed_tracer: Any = None
        self._subscribed_watchdog: Any = None

    @classmethod
    def from_spec(cls, spec: str | int, **kwargs: Any) -> "LiveMonitor":
        parsed = parse_serve_spec(spec)
        if parsed is None:
            raise ValidationError("serve spec is required")
        host, port = parsed
        return cls(host, port, **kwargs)

    # -- lifecycle ------------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._server is not None

    @property
    def port(self) -> int:
        if self._server is None:
            return self.requested_port
        return int(self._server.server_address[1])

    @property
    def url(self) -> str:
        host = self.host
        if host in ("", "0.0.0.0", "::"):
            host = socket.gethostname()
        return f"http://{host}:{self.port}"

    def start(self) -> "LiveMonitor":
        if self._server is not None:
            return self
        self._stop.clear()
        server = ThreadingHTTPServer(
            (self.host, self.requested_port), _LiveRequestHandler
        )
        server.daemon_threads = True
        server.monitor = self  # type: ignore[attr-defined]
        self._server = server
        self._thread = threading.Thread(
            target=server.serve_forever,
            kwargs={"poll_interval": 0.25},
            name="repro-live-monitor",
            daemon=True,
        )
        self._thread.start()
        tracer = get_tracer()
        if getattr(tracer, "enabled", False):
            tracer.subscribe(self._on_span)
            self._subscribed_tracer = tracer
        watchdog = get_watchdog()
        if watchdog is not None and hasattr(watchdog, "subscribe"):
            watchdog.subscribe(self._on_alert)
            self._subscribed_watchdog = watchdog
        self._write_discovery(closed=False)
        return self

    def stop(self) -> None:
        if self._server is None:
            return
        self._stop.set()
        if self._subscribed_tracer is not None:
            self._subscribed_tracer.unsubscribe(self._on_span)
            self._subscribed_tracer = None
        if self._subscribed_watchdog is not None:
            self._subscribed_watchdog.unsubscribe(self._on_alert)
            self._subscribed_watchdog = None
        # Wake every SSE loop so open streams close promptly.
        with self._clients_lock:
            clients = list(self._clients)
        for client in clients:
            try:
                client.queue.put_nowait(None)
            except queue.Full:
                pass
        server, thread = self._server, self._thread
        self._server, self._thread = None, None
        server.shutdown()
        server.server_close()
        if thread is not None:
            thread.join(timeout=5.0)
        self._write_discovery(closed=True)

    def __enter__(self) -> "LiveMonitor":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    def _write_discovery(self, *, closed: bool) -> None:
        if self.run_dir is None:
            return
        from repro.utils.serialization import dump_json

        try:
            dump_json(
                {
                    "schema": STATUS_SCHEMA,
                    "url": self.url,
                    "token": self.token,
                    "pid": os.getpid(),
                    "started_unix": time.time(),
                    "closed": closed,
                },
                self.run_dir / MONITOR_FILE,
                atomic=True,
            )
        except OSError:
            pass  # discovery is best-effort; the server itself still works

    # -- event fan-out --------------------------------------------------------

    def _register_client(self) -> _SSEClient:
        client = _SSEClient(self.sse_queue_size)
        with self._clients_lock:
            self._clients.append(client)
        return client

    def _unregister_client(self, client: _SSEClient) -> None:
        with self._clients_lock:
            if client in self._clients:
                self._clients.remove(client)
            if client.dropped:
                with self._stats_lock:
                    self._events_dropped += 0  # already counted at drop time

    def _broadcast(self, event: str, data: Mapping[str, Any]) -> None:
        """Fan one event out to every SSE client; never blocks the caller."""
        with self._clients_lock:
            clients = list(self._clients)
        if not clients:
            return
        text = json.dumps(data)
        sent = dropped = 0
        for client in clients:
            try:
                client.queue.put_nowait((event, text))
                sent += 1
            except queue.Full:
                client.dropped += 1
                dropped += 1
        if sent or dropped:
            with self._stats_lock:
                self._events_sent += sent
                self._events_dropped += dropped

    def _on_span(self, span: Any) -> None:
        try:
            data = {
                "name": span.name,
                "duration_s": round(float(span.duration_s), 6),
                "status": span.status,
            }
            for key in ("trial_id", "runner_id"):
                if key in span.attributes:
                    data[key] = span.attributes[key]
            self._broadcast("span", data)
        except Exception:
            pass  # a monitor bug must never reach the tracer's hot path

    def _on_alert(self, alert: Any) -> None:
        try:
            self._broadcast("alert", alert.to_dict())
        except Exception:
            pass

    # -- request counting / self-metrics --------------------------------------

    def _count_request(self, endpoint: str) -> None:
        with self._stats_lock:
            self._requests[endpoint] = self._requests.get(endpoint, 0) + 1

    def self_stats(self) -> dict[str, Any]:
        with self._clients_lock:
            sse_clients = len(self._clients)
        with self._stats_lock:
            return {
                "requests": dict(self._requests),
                "sse_clients": sse_clients,
                "sse_events_sent": self._events_sent,
                "sse_events_dropped": self._events_dropped,
                "telemetry_merges": self._telemetry_merges,
                "telemetry_spans_merged": self._telemetry_spans,
                "telemetry_rejected": self._telemetry_rejected,
            }

    def _render_self_metrics(self) -> str:
        stats = self.self_stats()
        lines = [
            "# HELP repro_live_requests_total monitor HTTP requests by endpoint",
            "# TYPE repro_live_requests_total counter",
        ]
        for endpoint in sorted(stats["requests"]):
            lines.append(
                f'repro_live_requests_total{{endpoint="{endpoint}"}} '
                f"{stats['requests'][endpoint]}"
            )
        lines += [
            "# HELP repro_live_sse_clients connected SSE consumers",
            "# TYPE repro_live_sse_clients gauge",
            f"repro_live_sse_clients {stats['sse_clients']}",
            "# HELP repro_live_sse_events_total events enqueued to SSE clients",
            "# TYPE repro_live_sse_events_total counter",
            f"repro_live_sse_events_total {stats['sse_events_sent']}",
            "# HELP repro_live_events_dropped_total events dropped on full SSE queues",
            "# TYPE repro_live_events_dropped_total counter",
            f"repro_live_events_dropped_total {stats['sse_events_dropped']}",
            "# HELP repro_live_telemetry_merges_total accepted POST /telemetry payloads",
            "# TYPE repro_live_telemetry_merges_total counter",
            f"repro_live_telemetry_merges_total {stats['telemetry_merges']}",
            "# HELP repro_live_telemetry_spans_total spans merged via POST /telemetry",
            "# TYPE repro_live_telemetry_spans_total counter",
            f"repro_live_telemetry_spans_total {stats['telemetry_spans_merged']}",
            "# HELP repro_live_telemetry_rejected_total rejected telemetry pushes",
            "# TYPE repro_live_telemetry_rejected_total counter",
            f"repro_live_telemetry_rejected_total {stats['telemetry_rejected']}",
        ]
        return "\n".join(lines) + "\n"

    # -- endpoint payloads ----------------------------------------------------

    def render_metrics(self) -> str:
        """Prometheus text: live registry + perf digests + self-metrics."""
        parts = []
        registry = get_registry()
        if getattr(registry, "enabled", False):
            parts.append(registry.render_prometheus())
        perf = get_perf()
        if getattr(perf, "enabled", False):
            parts.append(perf.render_prometheus())
        parts.append(self._render_self_metrics())
        return "\n".join(part.rstrip("\n") for part in parts if part) + "\n"

    def _worker_liveness(self) -> list[dict[str, Any]]:
        if self.run_dir is None:
            return []
        store_root = self.run_dir / "store"
        if not (store_root / "store.json").exists():
            return []
        from repro.search.store import TrialStore

        try:
            return TrialStore.open(store_root).worker_liveness()
        except (OSError, ValueError, KeyError, ValidationError):
            return []

    def status(self, *, tail: int = 32) -> dict[str, Any]:
        """The ``GET /status`` document."""
        doc: dict[str, Any] = {"schema": STATUS_SCHEMA, "url": self.url}
        doc.update(get_status_board().snapshot(tail=tail))
        doc["workers"] = self._worker_liveness()
        watchdog = get_watchdog()
        if watchdog is not None:
            alerts = watchdog.alerts()
            doc["alerts"] = {
                "total": len(alerts),
                "recent": [alert.to_dict() for alert in alerts[-5:]],
            }
        else:
            doc["alerts"] = {"total": 0, "recent": []}
        tracer = get_tracer()
        doc["spans_recorded"] = getattr(tracer, "spans_recorded", 0)
        doc["live"] = self.self_stats()
        return doc

    def ingest(self, body: Mapping[str, Any]) -> tuple[int, int]:
        """Merge one ``POST /telemetry`` body; returns (spans, payloads).

        Accepts either a raw fabric payload (``repro.fabric/1``) or a push
        envelope (``repro.live.push/1``) wrapping one ``payload`` or a list
        of ``payloads`` plus optional merge ``attributes``.
        """
        attributes: dict[str, Any] | None = None
        if body.get("schema") == PUSH_SCHEMA:
            raw_attrs = body.get("attributes")
            if isinstance(raw_attrs, Mapping):
                attributes = dict(raw_attrs)
            payloads = body.get("payloads")
            if payloads is None:
                payload = body.get("payload")
                payloads = [payload] if payload is not None else []
        else:
            payloads = [body]
        spans = 0
        merged_payloads = 0
        for payload in payloads:
            if not isinstance(payload, Mapping):
                continue
            spans += fabric.merge_payload(payload, attributes=attributes)
            merged_payloads += 1
        with self._stats_lock:
            self._telemetry_merges += merged_payloads
            self._telemetry_spans += spans
        return spans, merged_payloads

    def render_dashboard_html(self) -> str:
        """The ``GET /`` page: the timeline dashboard in live mode."""
        from repro.observability.analysis import analyze_spans
        from repro.observability.dashboard import render_dashboard

        tracer = get_tracer()
        spans = tracer.finished() if getattr(tracer, "enabled", False) else []
        analysis = analyze_spans(spans)
        watchdog = get_watchdog()
        alerts = (
            [alert.to_dict() for alert in watchdog.alerts()]
            if watchdog is not None
            else []
        )
        perf = get_perf()
        perf_doc = perf.to_dict() if getattr(perf, "enabled", False) else None
        return render_dashboard(
            analysis,
            title=f"{self.name} (live)",
            subtitle=f"live monitor at {self.url}",
            alerts=alerts,
            perf=perf_doc,
            live=True,
        )


class _LiveRequestHandler(BaseHTTPRequestHandler):
    """Routes monitor requests; every handler thread is a daemon."""

    protocol_version = "HTTP/1.1"

    @property
    def monitor(self) -> LiveMonitor:
        return self.server.monitor  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        pass  # the monitor must not spam the campaign's stdout

    # -- response helpers -----------------------------------------------------

    def _send_body(self, code: int, body: bytes, content_type: str) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.send_header("Access-Control-Allow-Origin", "*")
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, code: int, doc: Mapping[str, Any]) -> None:
        body = json.dumps(doc, indent=2).encode("utf-8")
        self._send_body(code, body, "application/json; charset=utf-8")

    # -- GET ------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        path = self.path.split("?", 1)[0]
        monitor = self.monitor
        try:
            if path in ("/", "/index.html"):
                monitor._count_request("/")
                try:
                    html = monitor.render_dashboard_html()
                except Exception as exc:
                    self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})
                    return
                self._send_body(200, html.encode("utf-8"), "text/html; charset=utf-8")
            elif path == "/metrics":
                monitor._count_request("/metrics")
                body = monitor.render_metrics().encode("utf-8")
                self._send_body(
                    200, body, "text/plain; version=0.0.4; charset=utf-8"
                )
            elif path == "/status":
                monitor._count_request("/status")
                self._send_json(200, monitor.status())
            elif path == "/events":
                monitor._count_request("/events")
                self._stream_events()
            else:
                self._send_json(404, {"error": f"unknown endpoint {path!r}"})
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-response

    def _stream_events(self) -> None:
        monitor = self.monitor
        client = monitor._register_client()
        try:
            self.send_response(200)
            self.send_header("Content-Type", "text/event-stream")
            self.send_header("Cache-Control", "no-cache")
            self.send_header("Access-Control-Allow-Origin", "*")
            self.end_headers()
            # A guaranteed first event, so consumers (and the CI smoke) can
            # assert liveness without racing the campaign.
            hello = json.dumps({"url": monitor.url, "name": monitor.name})
            self.wfile.write(f"event: hello\ndata: {hello}\n\n".encode("utf-8"))
            self.wfile.flush()
            last_beat = time.monotonic()
            while not monitor._stop.is_set():
                try:
                    item = client.queue.get(timeout=0.25)
                except queue.Empty:
                    if time.monotonic() - last_beat >= monitor.keepalive_s:
                        self.wfile.write(b": keepalive\n\n")
                        self.wfile.flush()
                        last_beat = time.monotonic()
                    continue
                if item is None:  # shutdown sentinel
                    break
                event, data = item
                self.wfile.write(f"event: {event}\ndata: {data}\n\n".encode("utf-8"))
                self.wfile.flush()
                last_beat = time.monotonic()
        except (BrokenPipeError, ConnectionResetError, OSError):
            pass
        finally:
            monitor._unregister_client(client)

    # -- POST -----------------------------------------------------------------

    def _authorized(self) -> bool:
        token = self.headers.get("X-Repro-Token", "")
        if not token:
            auth = self.headers.get("Authorization", "")
            if auth.startswith("Bearer "):
                token = auth[len("Bearer "):]
        return bool(token) and secrets.compare_digest(token, self.monitor.token)

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        path = self.path.split("?", 1)[0]
        monitor = self.monitor
        try:
            if path != "/telemetry":
                self._send_json(404, {"error": f"unknown endpoint {path!r}"})
                return
            monitor._count_request("/telemetry")
            if not self._authorized():
                with monitor._stats_lock:
                    monitor._telemetry_rejected += 1
                self._send_json(401, {"error": "bad or missing telemetry token"})
                return
            try:
                length = int(self.headers.get("Content-Length", "0"))
            except ValueError:
                length = -1
            if not (0 < length <= _MAX_BODY_BYTES):
                self._send_json(400, {"error": "bad Content-Length"})
                return
            try:
                body = json.loads(self.rfile.read(length).decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                self._send_json(400, {"error": "body is not valid JSON"})
                return
            if not isinstance(body, Mapping):
                self._send_json(400, {"error": "body must be a JSON object"})
                return
            spans, payloads = monitor.ingest(body)
            self._send_json(
                200, {"ok": True, "payloads": payloads, "spans_merged": spans}
            )
        except (BrokenPipeError, ConnectionResetError):
            pass


# -- client side ----------------------------------------------------------------------


class TelemetryPusher:
    """Worker-side client for ``POST /telemetry``.

    Wraps one monitor URL + token; :meth:`push` ships a fabric payload and
    returns ``False`` (never raises) when the monitor is unreachable, so
    the worker can fall back to embedding telemetry in the trial outcome.
    """

    def __init__(self, url: str, *, token: str | None = None, timeout_s: float = 5.0) -> None:
        url = url.rstrip("/")
        if not url.endswith("/telemetry"):
            url = url + "/telemetry"
        self.url = url
        self.token = token or ""
        self.timeout_s = float(timeout_s)
        self.pushed = 0
        self.errors = 0

    @classmethod
    def from_run_dir(
        cls,
        run_dir: str | Path,
        *,
        url: str | None = None,
        token: str | None = None,
        timeout_s: float = 5.0,
    ) -> "TelemetryPusher":
        """Build a pusher from the run dir's ``monitor.json`` discovery file.

        Explicit ``url``/``token`` arguments win over discovered values.
        """
        discovered: dict[str, Any] = {}
        monitor_path = Path(run_dir) / MONITOR_FILE
        if monitor_path.exists():
            try:
                discovered = json.loads(monitor_path.read_text())
            except (OSError, ValueError):
                discovered = {}
        if discovered.get("closed"):
            discovered = {}
        url = url or discovered.get("url")
        if not url:
            raise ValidationError(
                f"no live monitor URL: pass one explicitly or start the campaign "
                f"with --serve (no open {MONITOR_FILE} under {run_dir})"
            )
        return cls(url, token=token or discovered.get("token"), timeout_s=timeout_s)

    def push(
        self,
        payload: Mapping[str, Any],
        *,
        attributes: Mapping[str, Any] | None = None,
    ) -> bool:
        doc = {"schema": PUSH_SCHEMA, "payload": dict(payload)}
        if attributes:
            doc["attributes"] = dict(attributes)
        body = json.dumps(doc).encode("utf-8")
        request = urllib.request.Request(
            self.url,
            data=body,
            headers={
                "Content-Type": "application/json",
                "X-Repro-Token": self.token,
            },
            method="POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout_s) as response:
                ok = 200 <= response.status < 300
        except (urllib.error.URLError, OSError, ValueError):
            ok = False
        if ok:
            self.pushed += 1
        else:
            self.errors += 1
        return ok


def fetch_status(url: str, *, timeout_s: float = 5.0) -> dict[str, Any]:
    """GET ``/status`` from a live monitor and return the parsed document."""
    url = url.rstrip("/")
    if not url.endswith("/status"):
        url = url + "/status"
    with urllib.request.urlopen(url, timeout=timeout_s) as response:
        return json.loads(response.read().decode("utf-8"))


def stream_events(
    url: str,
    *,
    limit: int | None = None,
    timeout_s: float = 30.0,
    callback: Callable[[str, dict[str, Any]], None] | None = None,
) -> Iterator[tuple[str, dict[str, Any]]]:
    """Consume a monitor's ``/events`` SSE stream as ``(event, data)`` pairs.

    Stops after ``limit`` events (``None`` streams until the server closes
    the connection or the socket times out).
    """
    url = url.rstrip("/")
    if not url.endswith("/events"):
        url = url + "/events"
    count = 0
    with urllib.request.urlopen(url, timeout=timeout_s) as response:
        event = ""
        data_lines: list[str] = []
        for raw in response:
            line = raw.decode("utf-8").rstrip("\r\n")
            if line.startswith(":"):
                continue  # keepalive comment
            if line.startswith("event:"):
                event = line[len("event:"):].strip()
                continue
            if line.startswith("data:"):
                data_lines.append(line[len("data:"):].strip())
                continue
            if line == "" and data_lines:
                try:
                    data = json.loads("\n".join(data_lines))
                except ValueError:
                    data = {"raw": "\n".join(data_lines)}
                if callback is not None:
                    callback(event or "message", data)
                yield (event or "message", data)
                count += 1
                event, data_lines = "", []
                if limit is not None and count >= limit:
                    return


def render_status_line(status: Mapping[str, Any]) -> str:
    """One terminal line summarizing a ``/status`` document."""
    trials = status.get("trials", {}) or {}
    incumbent = status.get("incumbent", {}) or {}
    workers = status.get("workers", []) or []
    alerts = status.get("alerts", {}) or {}
    live_workers = sum(1 for w in workers if w.get("lease_state") == "live")
    parts = [
        f"[{status.get('phase', '?')}]",
        f"{trials.get('done', 0)}/{trials.get('total', 0)} done",
        f"{trials.get('running', 0)} running",
    ]
    if trials.get("errors"):
        parts.append(f"{trials['errors']} errors")
    if incumbent.get("trial_id"):
        value = incumbent.get("value")
        shown = f"{value:.4g}" if isinstance(value, (int, float)) else value
        parts.append(f"best {shown} ({incumbent['trial_id']})")
    if workers:
        parts.append(f"{live_workers}/{len(workers)} workers live")
    if alerts.get("total"):
        parts.append(f"{alerts['total']} alerts")
    return "  ".join(str(p) for p in parts)

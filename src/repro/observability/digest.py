"""Mergeable streaming latency digests and the continuous perf recorder.

Means hide tails: the Phase III cost profile said *how much* time suggest
took, not that its p99 was 5× its p50. A :class:`LatencyDigest` is a
t-digest-style quantile sketch — bounded memory, accurate tails, and
*mergeable*, so worker processes can sketch their own latencies and ship the
centroids back across the process boundary (see
:mod:`repro.observability.fabric`).

The :class:`PerfRecorder` attaches one digest to every hot-path op
(``suggest`` / ``suggest_fit`` / ``tell`` / ``refit`` / ``evaluate`` /
``queue_wait`` / ``deploy`` / ``reconfigure`` / ``evalcache_lookup`` /
``des_run``) plus a windowed time series of per-window digests, and
exports (``suggest`` is the per-candidate amortized hot path;
``suggest_fit`` isolates the asks that blocked on an inline surrogate
fit; ``refit`` times every surrogate fit wherever it ran, including the
background-refit worker):

- ``perf_profile.json`` — the run artifact the regression gate
  (``python -m repro perf``) snapshots and diffs;
- Prometheus *summary* series (``repro_latency_seconds{op=,quantile=}``)
  appended to ``metrics.prom``.

Like the tracer and registry, the process-global default is an inert
:class:`NullPerfRecorder`; instrumentation sites branch on ``enabled`` and
pay nothing when observability is off.
"""

from __future__ import annotations

import json
import math
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator, Mapping, Optional

__all__ = [
    "LatencyDigest",
    "PerfRecorder",
    "NullPerfRecorder",
    "get_perf",
    "set_perf",
    "PERF_PROFILE_FILE",
    "PERF_QUANTILES",
]

#: artifact name of the latency profile inside a run directory.
PERF_PROFILE_FILE = "perf_profile.json"

#: the quantiles reported everywhere (profile, Prometheus, report, summary).
PERF_QUANTILES = (("p50", 0.50), ("p90", 0.90), ("p99", 0.99))

#: schema tag written into ``perf_profile.json``.
PERF_PROFILE_SCHEMA = "repro.perf_profile/1"


class LatencyDigest:
    """A merging t-digest: streaming quantiles in bounded memory.

    Values are buffered and periodically compressed into weighted centroids
    whose size is bounded by the scale function ``4·W·q·(1−q)/compression``
    — small clusters near the extremes (accurate tails), large clusters in
    the middle. Two digests merge by compressing the union of their
    centroids, which is what makes the sketch portable across processes.
    """

    __slots__ = (
        "compression", "count", "sum", "min", "max", "_means", "_weights", "_buffer", "_dirty"
    )

    def __init__(self, compression: int = 100) -> None:
        if compression < 10:
            raise ValueError(f"compression must be >= 10, got {compression}")
        self.compression = int(compression)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._means: list[float] = []
        self._weights: list[float] = []
        self._buffer: list[float] = []
        self._dirty = False

    # -- ingestion -----------------------------------------------------------------

    def add(self, value: float) -> None:
        """Record one observation (non-finite values are skipped)."""
        v = float(value)
        if not math.isfinite(v):
            return
        self._buffer.append(v)
        self.count += 1
        self.sum += v
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v
        if len(self._buffer) >= 4 * self.compression:
            self._compress()

    def merge(self, other: "LatencyDigest") -> "LatencyDigest":
        """Fold ``other`` into this digest (the cross-process operation)."""
        other._compress()
        if other.count == 0:
            return self
        self._means.extend(other._means)
        self._weights.extend(other._weights)
        self.count += other.count
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        self._dirty = True
        self._compress()
        return self

    def _compress(self) -> None:
        if not self._buffer and not self._dirty:
            return
        self._dirty = False
        pairs = sorted(
            list(zip(self._means, self._weights)) + [(v, 1.0) for v in self._buffer]
        )
        self._buffer = []
        if not pairs:
            return
        total = sum(w for _, w in pairs)
        means: list[float] = []
        weights: list[float] = []
        cur_mean, cur_w = pairs[0]
        consumed = 0.0
        for mean, w in pairs[1:]:
            q = (consumed + cur_w / 2.0) / total
            limit = max(4.0 * total * q * (1.0 - q) / self.compression, 1.0)
            if cur_w + w <= limit:
                cur_mean += (mean - cur_mean) * w / (cur_w + w)
                cur_w += w
            else:
                means.append(cur_mean)
                weights.append(cur_w)
                consumed += cur_w
                cur_mean, cur_w = mean, w
        means.append(cur_mean)
        weights.append(cur_w)
        self._means = means
        self._weights = weights

    # -- queries -------------------------------------------------------------------

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else math.nan

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile by interpolating centroid centers."""
        if self.count == 0:
            return math.nan
        self._compress()
        if q <= 0.0:
            return self.min
        if q >= 1.0:
            return self.max
        means, weights = self._means, self._weights
        if len(means) == 1:
            return means[0]
        target = q * self.count
        # cumulative weight at each centroid's center
        centers: list[float] = []
        cum = 0.0
        for w in weights:
            centers.append(cum + w / 2.0)
            cum += w
        if target <= centers[0]:
            frac = target / centers[0] if centers[0] > 0 else 1.0
            return self.min + (means[0] - self.min) * frac
        if target >= centers[-1]:
            tail = self.count - centers[-1]
            frac = (target - centers[-1]) / tail if tail > 0 else 1.0
            return means[-1] + (self.max - means[-1]) * frac
        for i in range(len(centers) - 1):
            if centers[i] <= target <= centers[i + 1]:
                gap = centers[i + 1] - centers[i]
                frac = (target - centers[i]) / gap if gap > 0 else 0.0
                return means[i] + (means[i + 1] - means[i]) * frac
        return means[-1]  # pragma: no cover - unreachable

    def percentiles(self) -> dict[str, float]:
        """``{count, mean, p50, p90, p99}`` — the standard rollup."""
        out: dict[str, float] = {"count": float(self.count), "mean": self.mean}
        for name, q in PERF_QUANTILES:
            out[name] = self.quantile(q)
        return out

    def samples(self, cap: int = 2000) -> list[float]:
        """Representative samples reconstructed from the centroids.

        Used by the regression gate's bootstrap: each centroid contributes
        proportionally to its weight (at least one sample), capped at
        ``cap`` values total.
        """
        self._compress()
        if self.count == 0:
            return []
        total = float(self.count)
        out: list[float] = []
        for mean, w in zip(self._means, self._weights):
            n = max(1, int(round(w / total * min(cap, total))))
            out.extend([mean] * n)
        return sorted(out)

    # -- serialization ---------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        self._compress()
        return {
            "compression": self.compression,
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "means": list(self._means),
            "weights": list(self._weights),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LatencyDigest":
        digest = cls(compression=int(data.get("compression", 100)))
        means = [float(m) for m in data.get("means", ())]
        weights = [float(w) for w in data.get("weights", ())]
        if len(means) != len(weights):
            raise ValueError("digest means/weights length mismatch")
        digest._means = means
        digest._weights = weights
        digest.count = int(data.get("count", round(sum(weights))))
        digest.sum = float(data.get("sum", sum(m * w for m, w in zip(means, weights))))
        lo = data.get("min")
        hi = data.get("max")
        digest.min = float(lo) if lo is not None else (min(means) if means else math.inf)
        digest.max = float(hi) if hi is not None else (max(means) if means else -math.inf)
        return digest

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LatencyDigest(count={self.count}, centroids={len(self._means)})"


class _NullTimer:
    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False


_NULL_TIMER = _NullTimer()


class PerfRecorder:
    """Per-op latency digests plus a windowed time series; thread-safe."""

    #: instrumentation sites branch on this to skip recording entirely.
    enabled = True

    def __init__(
        self,
        *,
        window_s: float = 30.0,
        compression: int = 100,
        max_windows: int = 240,
    ) -> None:
        if window_s <= 0:
            raise ValueError(f"window_s must be > 0, got {window_s}")
        self.window_s = float(window_s)
        self.compression = int(compression)
        self.max_windows = int(max_windows)
        #: wall-clock timestamp of the recorder's epoch (cross-process rebasing).
        self.started_at = time.time()
        self._lock = threading.Lock()
        self._ops: dict[str, LatencyDigest] = {}
        self._windows: dict[int, dict[str, LatencyDigest]] = {}

    # -- recording -----------------------------------------------------------------

    def record(self, op: str, seconds: float) -> None:
        """Record one latency observation for ``op``."""
        now = time.time()
        with self._lock:
            digest = self._ops.get(op)
            if digest is None:
                digest = self._ops[op] = LatencyDigest(self.compression)
            digest.add(seconds)
            index = int((now - self.started_at) / self.window_s)
            window = self._windows.get(index)
            if window is None:
                window = self._windows[index] = {}
                if len(self._windows) > self.max_windows:
                    del self._windows[min(self._windows)]
            wd = window.get(op)
            if wd is None:
                wd = window[op] = LatencyDigest(self.compression)
            wd.add(seconds)

    def timed(self, op: str) -> Any:
        """Context manager recording the block's wall duration under ``op``."""
        return self._timer(op)

    @contextmanager
    def _timer(self, op: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self.record(op, time.perf_counter() - start)

    # -- queries -------------------------------------------------------------------

    def ops(self) -> dict[str, LatencyDigest]:
        """Snapshot of the per-op overall digests."""
        with self._lock:
            return dict(self._ops)

    def digest(self, op: str) -> Optional[LatencyDigest]:
        with self._lock:
            return self._ops.get(op)

    # -- cross-process fabric ---------------------------------------------------------

    def drain_state(self) -> dict[str, Any]:
        """Serialize-and-reset: the worker-side half of the fabric.

        Returns a JSON-able payload of every digest accumulated since the
        last drain, then clears them (so per-trial drains never double
        count), keeping the epoch so window indices stay meaningful.
        """
        with self._lock:
            state = {
                "started_at": self.started_at,
                "window_s": self.window_s,
                "ops": {op: d.to_dict() for op, d in self._ops.items()},
                "windows": {
                    str(i): {op: d.to_dict() for op, d in window.items()}
                    for i, window in self._windows.items()
                },
            }
            self._ops = {}
            self._windows = {}
        return state

    def merge_state(self, state: Mapping[str, Any]) -> int:
        """Merge a drained payload (typically from a worker process).

        Foreign window indices are rebased onto this recorder's epoch via
        the payload's ``started_at``. Returns the number of digests merged;
        malformed entries are skipped, not fatal.
        """
        merged = 0
        other_epoch = float(state.get("started_at", self.started_at))
        other_window = float(state.get("window_s", self.window_s))
        offset = other_epoch - self.started_at
        with self._lock:
            for op, data in dict(state.get("ops", {})).items():
                try:
                    foreign = LatencyDigest.from_dict(data)
                except (TypeError, ValueError, KeyError):
                    continue
                if not foreign.count:
                    continue
                digest = self._ops.get(op)
                if digest is None:
                    digest = self._ops[op] = LatencyDigest(self.compression)
                digest.merge(foreign)
                merged += 1
            for raw_index, window in dict(state.get("windows", {})).items():
                try:
                    start = offset + int(raw_index) * other_window
                    index = max(0, int(start / self.window_s))
                except (TypeError, ValueError):
                    continue
                target = self._windows.setdefault(index, {})
                for op, data in dict(window).items():
                    try:
                        foreign = LatencyDigest.from_dict(data)
                    except (TypeError, ValueError, KeyError):
                        continue
                    if not foreign.count:
                        continue
                    digest = target.get(op)
                    if digest is None:
                        digest = target[op] = LatencyDigest(self.compression)
                    digest.merge(foreign)
                    merged += 1
            while len(self._windows) > self.max_windows:
                del self._windows[min(self._windows)]
        return merged

    # -- export --------------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """The full ``perf_profile.json`` payload (digests included)."""
        with self._lock:
            ops_snapshot = dict(self._ops)
            windows_snapshot = {i: dict(w) for i, w in self._windows.items()}
        ops: dict[str, Any] = {}
        for op in sorted(ops_snapshot):
            digest = ops_snapshot[op]
            entry = digest.percentiles()
            entry["sum"] = digest.sum
            entry["digest"] = digest.to_dict()
            ops[op] = entry
        windows = []
        for index in sorted(windows_snapshot):
            row: dict[str, Any] = {
                "index": index,
                "start_s": index * self.window_s,
                "ops": {},
            }
            for op in sorted(windows_snapshot[index]):
                row["ops"][op] = windows_snapshot[index][op].percentiles()
            windows.append(row)
        return {
            "schema": PERF_PROFILE_SCHEMA,
            "started_at": self.started_at,
            "window_s": self.window_s,
            "ops": ops,
            "windows": windows,
        }

    def export_json(self, path: str | Path) -> Path:
        # Atomic (temp file + os.replace): the perf gate and report CLIs may
        # read perf_profile.json while a run is still exporting — they must
        # never observe a half-written document.
        from repro.utils.serialization import dump_json

        return dump_json(self.to_dict(), path, atomic=True)

    def render_prometheus(self) -> str:
        """Prometheus *summary* series for every op."""
        ops = self.ops()
        if not ops:
            return ""
        lines = [
            "# HELP repro_latency_seconds hot-path op latency quantiles",
            "# TYPE repro_latency_seconds summary",
        ]
        for op in sorted(ops):
            digest = ops[op]
            for _, q in PERF_QUANTILES:
                value = digest.quantile(q)
                lines.append(
                    f'repro_latency_seconds{{op="{op}",quantile="{q}"}} {value:.9g}'
                )
            lines.append(f'repro_latency_seconds_sum{{op="{op}"}} {digest.sum:.9g}')
            lines.append(f'repro_latency_seconds_count{{op="{op}"}} {digest.count}')
        return "\n".join(lines) + "\n"


class NullPerfRecorder(PerfRecorder):
    """The inert default: records nothing, allocates nothing."""

    enabled = False

    def record(self, op: str, seconds: float) -> None:
        pass

    def timed(self, op: str) -> Any:
        return _NULL_TIMER

    def drain_state(self) -> dict[str, Any]:
        return {}

    def merge_state(self, state: Mapping[str, Any]) -> int:
        return 0


_default_perf: PerfRecorder = NullPerfRecorder()
_default_lock = threading.Lock()


def get_perf() -> PerfRecorder:
    """The process-global perf recorder (inert unless explicitly enabled)."""
    return _default_perf


def set_perf(recorder: Optional[PerfRecorder]) -> PerfRecorder:
    """Install ``recorder`` globally (``None`` restores the null); returns it."""
    global _default_perf
    with _default_lock:
        _default_perf = recorder if recorder is not None else NullPerfRecorder()
        return _default_perf

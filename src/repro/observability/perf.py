"""Perf baselines and the regression gate (``python -m repro perf``).

Closes the loop the bench trajectory was missing: a run's latency digests
(``perf_profile.json``) — or a BENCH result JSON from ``benchmarks/`` —
become a committed *baseline*, and every later run diffs against it with a
non-zero exit on regression, so CI can hold the line on the hot-path
latencies the paper's reproducibility claim rests on.

Three profile sources are sniffed automatically:

- ``perf_profile.json`` (or a run directory containing one) — full digests,
  enabling the bootstrap significance test;
- ``BENCH_campaign.json`` — per-arm suggest/tell percentiles from
  ``benchmarks/test_campaign_throughput.py``;
- ``BENCH_eval.json`` — campaign/DES throughputs from
  ``benchmarks/test_eval_throughput.py``, folded into mean latencies.

The statistical test: when both sides carry digests, each compared quantile
is bootstrapped (resampling the digest-reconstructed samples) and a
regression needs *both* the point ratio above ``1 + threshold`` and the
bootstrap confidence interval of the ratio excluding 1 — identical runs
diff clean, noise without signal diffs clean, a real 2× tail shift fails
the gate. Without digests (BENCH JSONs), the plain ratio test applies.
"""

from __future__ import annotations

import json
import math
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Optional, Sequence

from repro.errors import ValidationError
from repro.observability.digest import PERF_PROFILE_FILE, LatencyDigest

__all__ = [
    "OpStats",
    "PerfDiff",
    "load_profile",
    "record_baseline",
    "diff_profiles",
    "BASELINE_SCHEMA",
]

#: schema tag written into recorded baselines.
BASELINE_SCHEMA = "repro.perf_baseline/1"

#: quantile keys a profile may carry, in comparison order.
_QUANTILE_KEYS = ("p50", "p90", "p99")


@dataclass
class OpStats:
    """One op's latency statistics, with the digest when available."""

    op: str
    count: float = 0.0
    mean: float = math.nan
    quantiles: dict[str, float] = field(default_factory=dict)
    digest: Optional[LatencyDigest] = None

    def value(self, key: str) -> Optional[float]:
        """The requested statistic (``p50``/``p90``/``p99``/``mean``)."""
        if key == "mean":
            return self.mean if math.isfinite(self.mean) else None
        value = self.quantiles.get(key)
        if value is None or not math.isfinite(value):
            return None
        return value

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"count": self.count, "mean": self.mean, **self.quantiles}
        if self.digest is not None:
            out["digest"] = self.digest.to_dict()
        return out


# -- loading ------------------------------------------------------------------------


def load_profile(path: str | Path) -> dict[str, OpStats]:
    """Load a latency profile from any supported source (sniffed by shape)."""
    source = Path(path)
    if source.is_dir():
        source = source / PERF_PROFILE_FILE
    if not source.exists():
        raise ValidationError(f"no perf profile at {source}")
    try:
        data = json.loads(source.read_text())
    except json.JSONDecodeError as exc:
        raise ValidationError(f"{source} is not valid JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise ValidationError(f"{source} does not hold a JSON object")
    if "ops" in data:
        return _parse_ops(data["ops"])
    if _looks_like_bench_campaign(data):
        return _parse_bench_campaign(data)
    # hybrid must be sniffed before eval: its payload also carries a "des" arm.
    if _looks_like_bench_hybrid(data):
        return _parse_bench_hybrid(data)
    if _looks_like_bench_eval(data):
        return _parse_bench_eval(data)
    raise ValidationError(
        f"{source} is neither a perf profile, a recorded baseline, "
        "nor a recognized BENCH result"
    )


def _parse_ops(ops: Mapping[str, Any]) -> dict[str, OpStats]:
    out: dict[str, OpStats] = {}
    for op, entry in dict(ops).items():
        if not isinstance(entry, Mapping):
            continue
        stats = OpStats(
            op=str(op),
            count=float(entry.get("count", 0.0)),
            mean=float(entry.get("mean", math.nan)),
            quantiles={
                key: float(entry[key])
                for key in _QUANTILE_KEYS
                if isinstance(entry.get(key), (int, float))
            },
        )
        digest_data = entry.get("digest")
        if isinstance(digest_data, Mapping):
            try:
                stats.digest = LatencyDigest.from_dict(digest_data)
            except (TypeError, ValueError):
                stats.digest = None
        out[stats.op] = stats
    return out


def _looks_like_bench_campaign(data: Mapping[str, Any]) -> bool:
    return any(
        isinstance(arm, Mapping) and isinstance(arm.get("suggest"), Mapping)
        for arm in data.values()
    )


def _parse_bench_campaign(data: Mapping[str, Any]) -> dict[str, OpStats]:
    """BENCH_campaign.json: per-arm suggest/tell percentile blocks (ms).

    ``suggest_fit`` (fit-bearing asks) and ``suggest_tail`` (last-window
    suggest latency of the flat-tail arm) are optional blocks newer
    benchmark runs add; absent blocks are skipped so old baselines keep
    diffing.
    """
    out: dict[str, OpStats] = {}
    for arm, payload in data.items():
        if not isinstance(payload, Mapping):
            continue
        for phase in ("suggest", "suggest_fit", "suggest_tail", "tell"):
            block = payload.get(phase)
            if not isinstance(block, Mapping):
                continue
            quantiles = {
                key: float(block[f"{key}_ms"]) / 1e3
                for key in _QUANTILE_KEYS
                if isinstance(block.get(f"{key}_ms"), (int, float))
            }
            if not quantiles:
                continue
            stats = OpStats(
                op=f"{arm}.{phase}",
                count=float(payload.get("trials", 0.0)),
                mean=quantiles.get("p50", math.nan),
                quantiles=quantiles,
            )
            out[stats.op] = stats
        trials = payload.get("trials")
        wall = payload.get("wall_s")
        if isinstance(trials, (int, float)) and isinstance(wall, (int, float)) and trials:
            out[f"{arm}.trial"] = OpStats(
                op=f"{arm}.trial", count=float(trials), mean=float(wall) / float(trials)
            )
    return out


def _looks_like_bench_hybrid(data: Mapping[str, Any]) -> bool:
    return isinstance(data.get("hybrid"), Mapping) and "speedup" in data


def _parse_bench_hybrid(data: Mapping[str, Any]) -> dict[str, OpStats]:
    """BENCH_hybrid.json: per-unit costs that survive the smoke/full scale gap.

    The committed baseline is a full-day run while CI re-measures a smoke
    (compressed-day) run, so only *per-unit* latencies are comparable:
    the cost of one DES calibration window and the pure-DES cost per
    completed request. Whole-run wall times scale with duration and are
    deliberately not emitted.
    """
    out: dict[str, OpStats] = {}
    hybrid = data.get("hybrid")
    if isinstance(hybrid, Mapping):
        wall = hybrid.get("wall_s")
        windows = hybrid.get("des_epochs")
        if (
            isinstance(wall, (int, float))
            and isinstance(windows, (int, float))
            and windows
        ):
            op = "hybrid.window"
            out[op] = OpStats(op=op, count=float(windows), mean=float(wall) / float(windows))
    des = data.get("des")
    if isinstance(des, Mapping):
        wall = des.get("wall_s")
        completed = des.get("completed")
        if (
            isinstance(wall, (int, float))
            and isinstance(completed, (int, float))
            and completed
        ):
            op = "des.request"
            out[op] = OpStats(op=op, count=float(completed), mean=float(wall) / float(completed))
    return out


def _looks_like_bench_eval(data: Mapping[str, Any]) -> bool:
    campaign = data.get("campaign")
    des = data.get("des")
    return isinstance(campaign, Mapping) or isinstance(des, Mapping)


def _parse_bench_eval(data: Mapping[str, Any]) -> dict[str, OpStats]:
    """BENCH_eval.json: throughputs folded into mean per-unit latencies."""
    out: dict[str, OpStats] = {}
    campaign = data.get("campaign")
    if isinstance(campaign, Mapping):
        for arm, payload in campaign.items():
            if not isinstance(payload, Mapping):
                continue
            trials = payload.get("trials")
            wall = payload.get("wall_s")
            if isinstance(trials, (int, float)) and isinstance(wall, (int, float)) and trials:
                op = f"campaign.{arm}.trial"
                out[op] = OpStats(op=op, count=float(trials), mean=float(wall) / float(trials))
    des = data.get("des")
    if isinstance(des, Mapping):
        for arm, payload in des.items():
            if not isinstance(payload, Mapping):
                continue
            eps = payload.get("events_per_sec")
            if isinstance(eps, (int, float)) and eps > 0:
                op = f"des.{arm}.event"
                out[op] = OpStats(op=op, count=float(eps), mean=1.0 / float(eps))
    return out


# -- recording ----------------------------------------------------------------------


def record_baseline(source: str | Path, out: str | Path) -> Path:
    """Snapshot a profile as a committed baseline; returns the path written."""
    ops = load_profile(source)
    payload = {
        "schema": BASELINE_SCHEMA,
        "source": str(source),
        "ops": {op: stats.to_dict() for op, stats in sorted(ops.items())},
    }
    path = Path(out)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


# -- diffing ------------------------------------------------------------------------


@dataclass
class PerfDiff:
    """The outcome of one baseline/candidate comparison."""

    threshold: float
    rows: list[dict[str, Any]] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[dict[str, Any]]:
        return [row for row in self.rows if row["verdict"] == "regression"]

    @property
    def improvements(self) -> list[dict[str, Any]]:
        return [row for row in self.rows if row["verdict"] == "improvement"]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def to_dict(self) -> dict[str, Any]:
        return {
            "threshold": self.threshold,
            "ok": self.ok,
            "rows": list(self.rows),
            "skipped": list(self.skipped),
            "regressions": self.regressions,
        }

    def render(self) -> str:
        from repro.utils.tables import Table

        table = Table(
            ["op", "stat", "baseline", "candidate", "ratio", "verdict"],
            title=f"--- perf diff (threshold +{self.threshold:.0%}) ---",
        )
        for row in self.rows:
            table.add_row(
                [
                    row["op"],
                    row["stat"],
                    _fmt_seconds(row["baseline"]),
                    _fmt_seconds(row["candidate"]),
                    f"{row['ratio']:.2f}x",
                    row["verdict"],
                ]
            )
        lines = [table.render()]
        if self.skipped:
            lines.append(f"(skipped: {', '.join(self.skipped)})")
        if self.regressions:
            worst = max(self.regressions, key=lambda r: r["ratio"])
            lines.append(
                f"REGRESSION: {len(self.regressions)} stat(s) above threshold — "
                f"worst {worst['op']} {worst['stat']} at {worst['ratio']:.2f}x"
            )
        else:
            lines.append("ok: no regression above threshold")
        return "\n".join(lines)


def _fmt_seconds(value: float) -> str:
    if value < 1e-3:
        return f"{value * 1e6:.1f}us"
    if value < 1.0:
        return f"{value * 1e3:.2f}ms"
    return f"{value:.3f}s"


def _quantile_of(sorted_values: Sequence[float], q: float) -> float:
    if not sorted_values:
        return math.nan
    pos = q * (len(sorted_values) - 1)
    lo = int(math.floor(pos))
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = pos - lo
    return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac


def _bootstrap_significant(
    base: LatencyDigest,
    cand: LatencyDigest,
    q: float,
    threshold: float,
    *,
    rounds: int = 200,
    confidence: float = 0.95,
    seed: int = 0,
) -> bool:
    """Whether the candidate's ``q``-quantile regression survives resampling.

    Bootstraps both digests (via their reconstructed samples) and requires
    the lower confidence bound of the candidate/baseline quantile ratio to
    stay above 1 — i.e. the apparent regression is unlikely to be noise.
    """
    base_samples = base.samples()
    cand_samples = cand.samples()
    if len(base_samples) < 8 or len(cand_samples) < 8:
        return True  # too little data to argue noise: trust the point ratio
    rng = random.Random(seed)
    ratios: list[float] = []
    nb, nc = len(base_samples), len(cand_samples)
    for _ in range(rounds):
        b = sorted(base_samples[rng.randrange(nb)] for _ in range(nb))
        c = sorted(cand_samples[rng.randrange(nc)] for _ in range(nc))
        bq = _quantile_of(b, q)
        cq = _quantile_of(c, q)
        if bq > 0:
            ratios.append(cq / bq)
    if not ratios:
        return True
    ratios.sort()
    lower = _quantile_of(ratios, 1.0 - confidence)
    return lower > 1.0


def diff_profiles(
    baseline: str | Path | Mapping[str, OpStats],
    candidate: str | Path | Mapping[str, OpStats],
    *,
    threshold: float = 0.25,
    stats: Sequence[str] = ("p50", "p90"),
    ops: Sequence[str] | None = None,
    bootstrap_rounds: int = 200,
    confidence: float = 0.95,
    seed: int = 0,
) -> PerfDiff:
    """Compare two profiles; a row regresses when its ratio exceeds
    ``1 + threshold`` (and, with digests on both sides, the bootstrap
    confirms the shift is not resampling noise)."""
    if threshold <= 0:
        raise ValidationError("threshold must be > 0")
    base_ops = baseline if isinstance(baseline, Mapping) else load_profile(baseline)
    cand_ops = candidate if isinstance(candidate, Mapping) else load_profile(candidate)
    wanted = set(ops) if ops else None
    diff = PerfDiff(threshold=float(threshold))
    q_of = dict((name, q) for name, q in (("p50", 0.50), ("p90", 0.90), ("p99", 0.99)))
    for op in sorted(set(base_ops) | set(cand_ops)):
        if wanted is not None and op not in wanted:
            continue
        base = base_ops.get(op)
        cand = cand_ops.get(op)
        if base is None or cand is None:
            diff.skipped.append(f"{op} ({'baseline' if base is None else 'candidate'} missing)")
            continue
        compared = 0
        for stat in stats:
            base_v = base.value(stat)
            cand_v = cand.value(stat)
            if base_v is None or cand_v is None or base_v <= 0:
                continue
            compared += 1
            diff.rows.append(
                _compare_stat(
                    op, stat, base, cand, base_v, cand_v, threshold,
                    q_of.get(stat), bootstrap_rounds, confidence, seed,
                )
            )
        if compared == 0:
            # percentile-less sources (BENCH_eval): fall back to the mean.
            base_v = base.value("mean")
            cand_v = cand.value("mean")
            if base_v is not None and cand_v is not None and base_v > 0:
                diff.rows.append(
                    _compare_stat(
                        op, "mean", base, cand, base_v, cand_v, threshold,
                        None, bootstrap_rounds, confidence, seed,
                    )
                )
            else:
                diff.skipped.append(f"{op} (no comparable statistic)")
    return diff


def _compare_stat(
    op: str,
    stat: str,
    base: OpStats,
    cand: OpStats,
    base_v: float,
    cand_v: float,
    threshold: float,
    q: Optional[float],
    bootstrap_rounds: int,
    confidence: float,
    seed: int,
) -> dict[str, Any]:
    ratio = cand_v / base_v
    verdict = "ok"
    significant = None
    if ratio > 1.0 + threshold:
        significant = True
        if q is not None and base.digest is not None and cand.digest is not None:
            significant = _bootstrap_significant(
                base.digest,
                cand.digest,
                q,
                threshold,
                rounds=bootstrap_rounds,
                confidence=confidence,
                seed=seed,
            )
        verdict = "regression" if significant else "noise"
    elif ratio < 1.0 / (1.0 + threshold):
        verdict = "improvement"
    return {
        "op": op,
        "stat": stat,
        "baseline": base_v,
        "candidate": cand_v,
        "ratio": ratio,
        "verdict": verdict,
        "significant": significant,
    }

"""Command-line interface — the ``e2clab optimize`` analogue.

Subcommands::

    e2clab-repro optimize [CONF.json] [--repeat N] [--duration S]
                          [--resume RUN_DIR]
        Run a full optimization campaign from an optimizer_conf file
        against the Pl@ntNet scenario (the paper's `e2clab optimize
        --repeat 6 --duration 1380 ...` workflow). With ``--resume`` an
        interrupted campaign continues from its checkpoint: finished
        trials are replayed into the searcher instead of re-executed.

    e2clab-repro worker RUN_DIR [--runner-id ID] [--idle-timeout S]
        Join a store-backed distributed campaign as an elastic trial
        worker: open the campaign's trial store, claim trials under
        lease+heartbeat, execute them with the evaluator rebuilt from the
        run directory's ``optimizer_conf.json``, and exit when the
        campaign closes. Any number of workers may join or leave
        mid-campaign (even from other hosts sharing the run directory);
        a killed worker's trial is reclaimed by a peer once its lease
        expires.

    e2clab-repro scenario [--config baseline|preliminary|refined]
                          [--requests N] [--duration S] [--repetitions K]
        Run one configuration and print its metrics.

    e2clab-repro calibration [--evaluator analytic|des]
        Print the model-vs-paper calibration report.

    e2clab-repro monitor RUN_DIR_OR_URL [--interval S] [--once]
        Tail a campaign in the terminal. Pointed at a live monitor URL (or
        a run directory whose campaign was started with ``--serve``), it
        polls ``/status`` and streams ``/events``; pointed at a finished
        run directory, it prints a static summary from the exported
        artifacts.

    e2clab-repro report RUN_DIR [--top-k N] [--format text|json]
        Render a human-readable run report (phase timeline, trial table,
        critical path, watchdog alerts, slowest spans, metric rollups)
        from the observability artifacts an ``optimize --trace`` campaign
        exported into its experiment directory.

    e2clab-repro dashboard RUN_DIR [--out DIR]
        Build the campaign-analytics artifacts from ``spans.jsonl``: a
        self-contained ``timeline.html`` (per-slot utilization timeline,
        critical-path attribution, latency percentiles, alerts — no
        external assets) and a Chrome-loadable ``trace_events.json``.

    e2clab-repro perf record SOURCE --out BASELINE.json
    e2clab-repro perf diff BASELINE CANDIDATE [--threshold F]
        The perf-regression gate. ``record`` snapshots a run's
        ``perf_profile.json`` (or a BENCH result) as a committed baseline;
        ``diff`` compares two profiles and exits non-zero when any watched
        quantile regressed beyond the threshold (with a bootstrap
        significance check when full digests are available).

Also reachable as ``python -m repro ...``.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence

from repro.engine.calibration import calibration_report
from repro.engine.config import ThreadPoolConfig
from repro.optimizer import OptimizationManager, OptimizerConf
from repro.plantnet import (
    BASELINE,
    PRELIMINARY_OPTIMUM,
    REFINED_OPTIMUM,
    PlantNetScenario,
)
from repro.utils.tables import Table
from repro.version import __version__

__all__ = ["main", "build_parser"]

_NAMED_CONFIGS = {
    "baseline": BASELINE,
    "preliminary": PRELIMINARY_OPTIMUM,
    "refined": REFINED_OPTIMUM,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="e2clab-repro",
        description="Reproduction of the CLUSTER'21 E2Clab optimization paper.",
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    p_opt = sub.add_parser("optimize", help="run an optimizer_conf campaign")
    p_opt.add_argument(
        "conf",
        nargs="?",
        default=None,
        help="path to the optimizer_conf JSON file (optional with --resume)",
    )
    p_opt.add_argument("--repeat", type=int, default=None, help="extra validation runs of the best config")
    p_opt.add_argument("--duration", type=float, default=None, help="validation run duration (simulated seconds)")
    p_opt.add_argument(
        "--trace",
        action="store_true",
        help="record spans + metrics and export them into the experiment directory",
    )
    p_opt.add_argument(
        "--resume",
        metavar="RUN_DIR",
        default=None,
        help="resume an interrupted campaign from its experiment directory "
        "(finished trials are replayed from checkpoint.json, not re-run)",
    )
    p_opt.add_argument(
        "--serve",
        metavar="[HOST:]PORT",
        default=None,
        help="attach the live HTTP monitor (/metrics, /status, /events, "
        "POST /telemetry) to the campaign; port 0 binds an ephemeral port "
        "published in the run dir's monitor.json",
    )

    p_wrk = sub.add_parser(
        "worker", help="join a store-backed campaign as an elastic trial worker"
    )
    p_wrk.add_argument(
        "run_dir", help="the campaign's experiment directory (holds store/ and optimizer_conf.json)"
    )
    p_wrk.add_argument(
        "--runner-id", default=None, help="worker identity (default: <name>/<host>-<pid>)"
    )
    p_wrk.add_argument(
        "--poll", type=float, default=0.1, help="seconds between claim attempts when idle"
    )
    p_wrk.add_argument(
        "--idle-timeout",
        type=float,
        default=None,
        help="exit after this many seconds without claimable work (default: wait for close)",
    )
    p_wrk.add_argument(
        "--max-trials", type=int, default=None, help="exit after completing this many trials"
    )
    p_wrk.add_argument(
        "--push-telemetry",
        metavar="URL",
        nargs="?",
        const="auto",
        default=None,
        help="stream per-trial telemetry to the campaign's live monitor "
        "mid-campaign; 'auto' (the bare flag) discovers URL and token from "
        "the run dir's monitor.json",
    )
    p_wrk.add_argument(
        "--telemetry-token",
        default=None,
        help="ingest token for --push-telemetry (default: from monitor.json)",
    )

    p_sc = sub.add_parser("scenario", help="run one Pl@ntNet configuration")
    p_sc.add_argument("--config", default="baseline", help="baseline|preliminary|refined or h,d,e,s")
    p_sc.add_argument("--requests", type=int, default=80)
    p_sc.add_argument("--duration", type=float, default=300.0)
    p_sc.add_argument("--repetitions", type=int, default=1)
    p_sc.add_argument("--seed", type=int, default=0)

    p_cal = sub.add_parser("calibration", help="print paper-vs-model calibration")
    p_cal.add_argument("--evaluator", choices=("analytic", "des"), default="analytic")

    p_rep = sub.add_parser("report", help="render a run report from exported artifacts")
    p_rep.add_argument("run_dir", help="experiment directory holding the artifacts")
    p_rep.add_argument("--top-k", type=int, default=10, help="how many slowest spans to list")
    p_rep.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format: human-readable text (default) or machine-readable JSON",
    )

    p_mon = sub.add_parser(
        "monitor", help="tail a live (or finished) campaign in the terminal"
    )
    p_mon.add_argument(
        "target", help="live monitor URL (http://...) or a campaign run directory"
    )
    p_mon.add_argument(
        "--interval", type=float, default=2.0, help="seconds between /status polls"
    )
    p_mon.add_argument(
        "--once", action="store_true", help="print one status snapshot and exit"
    )

    p_dash = sub.add_parser(
        "dashboard", help="build timeline.html + trace_events.json from spans.jsonl"
    )
    p_dash.add_argument("run_dir", help="experiment directory holding spans.jsonl")
    p_dash.add_argument(
        "--out",
        default=None,
        help="directory to write the artifacts into (defaults to RUN_DIR)",
    )

    p_perf = sub.add_parser("perf", help="perf baselines and the regression gate")
    perf_sub = p_perf.add_subparsers(dest="perf_command", required=True)
    p_rec = perf_sub.add_parser(
        "record", help="snapshot a perf profile (or BENCH result) as a baseline"
    )
    p_rec.add_argument(
        "source", help="run directory, perf_profile.json, or BENCH result JSON"
    )
    p_rec.add_argument("--out", required=True, help="baseline JSON path to write")
    p_diff = perf_sub.add_parser(
        "diff", help="compare a candidate profile against a baseline"
    )
    p_diff.add_argument("baseline", help="baseline profile (recorded or raw)")
    p_diff.add_argument("candidate", help="candidate profile to gate")
    p_diff.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="relative slowdown that counts as a regression (default 0.25 = +25%%)",
    )
    p_diff.add_argument(
        "--quantiles",
        default="p50,p90",
        help="comma-separated statistics to compare (default p50,p90)",
    )
    p_diff.add_argument(
        "--report",
        default=None,
        help="also write the structured diff as JSON to this path",
    )
    p_diff.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="stdout format: rendered text (default) or the structured diff "
        "as JSON (exit code unchanged)",
    )
    return parser


def _parse_config(text: str) -> ThreadPoolConfig:
    if text in _NAMED_CONFIGS:
        return _NAMED_CONFIGS[text]
    parts = [int(p) for p in text.split(",")]
    if len(parts) != 4:
        raise SystemExit(
            f"--config must be one of {sorted(_NAMED_CONFIGS)} or 'http,download,extract,simsearch'"
        )
    return ThreadPoolConfig(http=parts[0], download=parts[1], extract=parts[2], simsearch=parts[3])


def _cmd_optimize(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.utils.serialization import dump_json

    if args.conf is not None:
        conf = OptimizerConf.from_json(args.conf)
    elif args.resume is not None:
        saved = Path(args.resume) / "optimizer_conf.json"
        if not saved.exists():
            raise SystemExit(
                f"--resume without CONF needs {saved} (written by the original run)"
            )
        conf = OptimizerConf.from_json(saved)
    else:
        raise SystemExit("optimize needs a CONF file or --resume RUN_DIR")
    if args.repeat is not None:
        conf.repeat = args.repeat
    if args.duration is not None:
        conf.duration = args.duration
    if args.trace:
        conf.observability = True
    if args.serve is not None:
        conf.serve = args.serve

    scenario = PlantNetScenario(duration=conf.duration or 300.0, base_seed=conf.seed or 0)

    def evaluator(config: dict, seed: int | None = None, duration: float | None = None):
        return scenario.evaluate(config, seed=seed, duration=duration)

    manager = OptimizationManager(conf, evaluator=evaluator, resume_from=args.resume)
    if args.resume is None:
        # Save the conf next to the artifacts so `--resume RUN_DIR` can
        # rebuild the campaign without the original file.
        dump_json(conf.to_dict(), Path(manager.run_dir) / "optimizer_conf.json", atomic=True)
    outcome = manager.run()
    print(outcome.summary.render())
    if outcome.validation is not None:
        print(f"\nvalidation over {len(outcome.validation_runs)} runs: {outcome.validation}")
    if conf.observability or conf.watchdog:
        print(
            f"\nobservability artifacts exported to {manager.run_dir} "
            f"(render with: python -m repro report {manager.run_dir} | "
            f"python -m repro dashboard {manager.run_dir})"
        )
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.search.store import TrialStore
    from repro.search.worker import (
        default_runner_id,
        run_worker,
        worker_trainable_from_run_dir,
    )

    run_dir = Path(args.run_dir)
    store_dir = run_dir / "store"
    if not (store_dir / "store.json").exists():
        raise SystemExit(
            f"no trial store under {store_dir} — start the campaign parent "
            "(executor: 'store') first, then join workers"
        )
    store = TrialStore.open(store_dir)
    trainable = worker_trainable_from_run_dir(run_dir)
    runner_id = args.runner_id or default_runner_id(
        str(store.meta.get("name", "")) or None
    )
    push = None
    if args.push_telemetry is not None:
        from repro.errors import ValidationError
        from repro.observability.live import TelemetryPusher

        url = None if args.push_telemetry == "auto" else args.push_telemetry
        try:
            push = TelemetryPusher.from_run_dir(
                run_dir, url=url, token=args.telemetry_token
            )
        except ValidationError as exc:
            raise SystemExit(str(exc)) from exc
        print(f"pushing telemetry to {push.url}", flush=True)
    # flush=True throughout: a worker's stdout is typically piped into a
    # log file or `tail -f`; block buffering would delay progress lines
    # until exit.
    print(f"worker {runner_id} joining {store_dir}", flush=True)

    def on_trial(claim, outcome):  # noqa: ANN001 - progress hook
        status = "ok" if outcome.get("ok") else "error"
        reclaimed = " (reclaimed)" if outcome.get("reclaimed") else ""
        print(f"  {claim.trial_id}: {status}{reclaimed}", flush=True)

    completed = run_worker(
        store,
        trainable,
        runner_id=runner_id,
        poll_s=args.poll,
        idle_timeout_s=args.idle_timeout,
        max_trials=args.max_trials,
        on_trial=on_trial,
        push=push,
    )
    print(f"worker {runner_id} done: {completed} trial(s) completed", flush=True)
    if push is not None:
        print(f"telemetry: {push.pushed} pushed, {push.errors} errors", flush=True)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.observability import load_run, render_report

    artifacts = load_run(args.run_dir)
    if args.format == "json":
        import json

        from repro.observability.report import render_report_json

        print(json.dumps(render_report_json(artifacts, top_k=args.top_k), indent=2))
        return 0
    print(render_report(artifacts, top_k=args.top_k))
    return 0


def _resolve_monitor_url(target: str) -> str | None:
    """A live monitor URL for ``target``, or ``None`` (finished run dir)."""
    import json
    from pathlib import Path

    if target.startswith(("http://", "https://")):
        return target.rstrip("/")
    from repro.observability.live import MONITOR_FILE

    monitor_path = Path(target) / MONITOR_FILE
    if not monitor_path.exists():
        return None
    try:
        doc = json.loads(monitor_path.read_text())
    except (OSError, ValueError):
        return None
    if doc.get("closed") or not doc.get("url"):
        return None
    return str(doc["url"]).rstrip("/")


def _cmd_monitor(args: argparse.Namespace) -> int:
    import threading
    import urllib.error

    from repro.observability.live import (
        fetch_status,
        render_status_line,
        stream_events,
    )

    url = _resolve_monitor_url(args.target)
    if url is None:
        # No live monitor: fall back to the post-hoc report of a finished run.
        from pathlib import Path

        from repro.observability import load_run, render_report

        run_dir = Path(args.target)
        if not run_dir.is_dir():
            raise SystemExit(
                f"{args.target!r} is neither a live monitor URL nor a run directory"
            )
        print(f"no live monitor for {run_dir}; rendering the finished-run report\n")
        artifacts = load_run(run_dir)
        print(render_report(artifacts))
        return 0

    try:
        status = fetch_status(url)
    except (urllib.error.URLError, OSError, ValueError) as exc:
        raise SystemExit(f"live monitor at {url} is unreachable: {exc}") from exc
    print(render_status_line(status), flush=True)
    if args.once:
        return 0

    # Live tail: one thread streams /events, the main loop polls /status.
    def tail_events() -> None:
        try:
            for event, data in stream_events(url, timeout_s=max(args.interval * 5, 30.0)):
                if event == "alert":
                    print(
                        f"  ALERT [{data.get('severity')}] {data.get('kind')}: "
                        f"{data.get('message')}",
                        flush=True,
                    )
                elif event == "span" and data.get("name", "").startswith("trial:"):
                    runner = f" @{data['runner_id']}" if data.get("runner_id") else ""
                    print(
                        f"  {data.get('trial_id') or data['name']}: "
                        f"{data.get('status')} in {data.get('duration_s')}s{runner}",
                        flush=True,
                    )
        except (urllib.error.URLError, OSError, ValueError):
            pass  # campaign over: the poll loop below reports and exits

    tail = threading.Thread(target=tail_events, name="monitor-events", daemon=True)
    tail.start()
    last_line = ""
    try:
        while True:
            time.sleep(max(args.interval, 0.1))
            try:
                status = fetch_status(url)
            except (urllib.error.URLError, OSError, ValueError):
                print("monitor gone (campaign finished or aborted)", flush=True)
                return 0
            line = render_status_line(status)
            if line != last_line:
                print(line, flush=True)
                last_line = line
            if status.get("phase") == "finished":
                return 0
    except KeyboardInterrupt:
        return 0


def _cmd_dashboard(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.observability.analysis import (
        TRACE_EVENTS_FILE,
        analyze_spans,
        write_trace_events,
    )
    from repro.observability.dashboard import TIMELINE_FILE, write_dashboard
    from repro.observability.digest import PERF_PROFILE_FILE
    from repro.observability.trace import load_spans
    from repro.observability.watchdog import ALERTS_FILE, load_alerts

    run_dir = Path(args.run_dir)
    spans_path = run_dir / "spans.jsonl"
    if not spans_path.exists():
        raise SystemExit(
            f"{spans_path} not found — run the campaign with --trace (or a "
            "watchdog block) so spans are exported first"
        )
    out_dir = Path(args.out) if args.out is not None else run_dir
    spans = load_spans(spans_path)
    alerts_path = run_dir / ALERTS_FILE
    alerts = (
        [alert.to_dict() for alert in load_alerts(alerts_path)] if alerts_path.exists() else []
    )
    perf_path = run_dir / PERF_PROFILE_FILE
    perf = json.loads(perf_path.read_text()) if perf_path.exists() else None
    analysis = analyze_spans(spans)
    timeline = write_dashboard(
        analysis, out_dir / TIMELINE_FILE, title=run_dir.name, alerts=alerts, perf=perf
    )
    trace_events = write_trace_events(spans, out_dir / TRACE_EVENTS_FILE)
    print(f"wrote {timeline}")
    print(f"wrote {trace_events}")
    print(
        f"({len(analysis.trials)} trials over {analysis.lane_count} slots, "
        f"slot idle {analysis.slot_idle_fraction:.0%}, "
        f"critical-path idle {analysis.critical_path.idle_fraction:.0%}, "
        f"{len(alerts)} alerts)"
    )
    return 0


def _cmd_perf(args: argparse.Namespace) -> int:
    from repro.errors import ValidationError
    from repro.observability.perf import diff_profiles, record_baseline

    if args.perf_command == "record":
        try:
            path = record_baseline(args.source, args.out)
        except ValidationError as exc:
            raise SystemExit(str(exc)) from exc
        print(f"wrote baseline {path}")
        return 0
    stats = tuple(s.strip() for s in args.quantiles.split(",") if s.strip())
    try:
        diff = diff_profiles(
            args.baseline, args.candidate, threshold=args.threshold, stats=stats
        )
    except ValidationError as exc:
        raise SystemExit(str(exc)) from exc
    if args.format == "json":
        import json

        print(json.dumps(diff.to_dict(), indent=2))
    else:
        print(diff.render())
    if args.report is not None:
        import json
        from pathlib import Path

        report_path = Path(args.report)
        report_path.parent.mkdir(parents=True, exist_ok=True)
        report_path.write_text(json.dumps(diff.to_dict(), indent=2) + "\n")
        # Keep stdout pure JSON under --format json: consumers pipe it.
        out = sys.stderr if args.format == "json" else sys.stdout
        print(f"wrote {report_path}", file=out)
    return 0 if diff.ok else 1


def _cmd_scenario(args: argparse.Namespace) -> int:
    config = _parse_config(args.config)
    scenario = PlantNetScenario(
        duration=args.duration, repetitions=args.repetitions, base_seed=args.seed
    )
    result = scenario.run(config, args.requests)
    table = Table(["metric", "value"], title=f"Pl@ntNet {config} @ {args.requests} requests")
    for key, value in result.metrics().items():
        table.add_row([key, value])
    print(table.render())
    return 0


def _cmd_calibration(args: argparse.Namespace) -> int:
    report = calibration_report(evaluator=args.evaluator)
    table = Table(
        ["target", "source", "paper", "measured", "rel. error", "ok"],
        title=f"Calibration report ({args.evaluator})",
    )
    ok = True
    for row in report:
        table.add_row(
            [
                row["target"],
                row["source"],
                row["paper"],
                round(float(row["measured"]), 3),
                f"{float(row['relative_error']):+.1%}",
                "yes" if row["within_tolerance"] else "NO",
            ]
        )
        ok = ok and bool(row["within_tolerance"])
    print(table.render())
    return 0 if ok else 1


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "optimize":
        return _cmd_optimize(args)
    if args.command == "worker":
        return _cmd_worker(args)
    if args.command == "scenario":
        return _cmd_scenario(args)
    if args.command == "calibration":
        return _cmd_calibration(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "monitor":
        return _cmd_monitor(args)
    if args.command == "dashboard":
        return _cmd_dashboard(args)
    if args.command == "perf":
        return _cmd_perf(args)
    raise SystemExit(f"unknown command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""A compact discrete-event simulation (DES) kernel, SimPy-style.

The paper evaluates the real Pl@ntNet engine on Grid'5000; this reproduction
replaces the physical system with discrete-event simulation. The kernel here
provides:

- :class:`Environment` — the event loop (virtual clock, event heap).
- Processes as Python generators that ``yield`` events
  (:meth:`Environment.process`).
- :class:`Timeout` — wake up after a virtual delay.
- :class:`Resource` / :class:`PriorityResource` — capacity-limited resources
  with built-in busy-time and queueing statistics (thread pools!).
- :class:`Store` / :class:`Container` — item and level stores.
- :func:`all_of` / :func:`any_of` — event composition.

Example::

    from repro import simcore

    def worker(env, pool, results):
        with pool.request() as req:
            yield req
            yield env.timeout(2.0)
        results.append(env.now)

    env = simcore.Environment()
    pool = simcore.Resource(env, capacity=1)
    results = []
    env.process(worker(env, pool, results))
    env.process(worker(env, pool, results))
    env.run()
    assert results == [2.0, 4.0]
"""

from repro.simcore.events import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    Timeout,
    all_of,
    any_of,
)
from repro.simcore.core import Environment, LoopStats, StopSimulation
from repro.simcore.resources import (
    Container,
    PriorityResource,
    Request,
    Resource,
    ResourceStats,
    Store,
)

__all__ = [
    "Environment",
    "LoopStats",
    "StopSimulation",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "AllOf",
    "AnyOf",
    "all_of",
    "any_of",
    "Resource",
    "PriorityResource",
    "Request",
    "ResourceStats",
    "Store",
    "Container",
]

"""The simulation environment: virtual clock and event heap."""

from __future__ import annotations

import heapq
from typing import Any, Generator, Optional

from repro.errors import SimulationError
from repro.simcore.events import NORMAL, Event, Process, Timeout

__all__ = ["Environment", "StopSimulation", "EmptySchedule"]


class StopSimulation(Exception):
    """Raised internally to halt :meth:`Environment.run` at ``until``."""


class EmptySchedule(Exception):
    """Raised by :meth:`Environment.step` when no events remain."""


class Environment:
    """Discrete-event execution environment.

    Maintains the virtual clock (:attr:`now`) and a priority heap of
    scheduled events. Heap entries are ordered by ``(time, priority,
    sequence)`` so same-instant events process in deterministic FIFO order
    within a priority class — determinism is a hard requirement for the
    paper's reproducibility goals.
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._eid = 0
        self._active_process: Optional[Process] = None

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- scheduling ---------------------------------------------------------

    def schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        """Queue ``event`` for processing after ``delay`` time units."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        self._eid += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._eid, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` when none remain."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the next event; advance the clock to its time."""
        try:
            self._now, _, _, event = heapq.heappop(self._queue)
        except IndexError:
            raise EmptySchedule() from None

        callbacks, event.callbacks = event.callbacks, None
        if callbacks is None:  # pragma: no cover - defensive
            raise SimulationError(f"event {event!r} processed twice")
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            exc = event._value
            raise exc if isinstance(exc, BaseException) else SimulationError(repr(exc))

    # -- factories ----------------------------------------------------------

    def process(self, generator: Generator[Event, Any, Any], name: str | None = None) -> Process:
        """Start a process from a generator; returns its completion event."""
        return Process(self, generator, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Event succeeding after ``delay`` virtual time units."""
        return Timeout(self, delay, value)

    def event(self) -> Event:
        """A bare, untriggered event (trigger it with succeed/fail)."""
        return Event(self)

    # -- running ------------------------------------------------------------

    def run(self, until: float | Event | None = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        - ``None``: run until no events remain;
        - a number: run until the clock reaches it (exclusive of events
          scheduled exactly at it only in the sense SimPy uses — the clock is
          set to ``until`` on return);
        - an :class:`Event`: run until that event is processed and return its
          value (re-raising its exception if it failed).
        """
        stop: Optional[Event] = None
        if until is not None:
            if isinstance(until, Event):
                if until.processed:
                    if not until._ok:
                        raise until._value
                    return until._value
                stop = until
            else:
                at = float(until)
                if at < self._now:
                    raise ValueError(f"until={at} is in the past (now={self._now})")
                stop = Event(self)
                stop._ok = True
                stop._value = None
                # URGENT-0 so the stop fires before same-time normal events.
                self._eid += 1
                heapq.heappush(self._queue, (at, -1, self._eid, stop))
            stop.callbacks.append(_stop_callback)

        try:
            while True:
                try:
                    self.step()
                except EmptySchedule:
                    break
        except StopSimulation as signal:
            return signal.args[0] if signal.args else None

        if stop is not None and isinstance(until, Event) and not stop.triggered:
            raise SimulationError(
                f"run(until={until!r}) finished but the event never triggered"
            )
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Environment(now={self._now}, pending={len(self._queue)})"


def _stop_callback(event: Event) -> None:
    if event._ok:
        raise StopSimulation(event._value)
    event._defused = True
    exc = event._value
    raise exc

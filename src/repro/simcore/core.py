"""The simulation environment: virtual clock and event heap."""

from __future__ import annotations

import heapq
import math
import time
from typing import Any, Generator, Optional

from repro.errors import SimulationError, WallClockTimeout
from repro.simcore.events import NORMAL, Event, Process, SlimDelay, Timeout

__all__ = ["Environment", "LoopStats", "StopSimulation", "EmptySchedule"]

#: upper bound on recycled SlimDelay instances kept per environment — the
#: pool only needs to cover the peak number of *concurrently pending* plain
#: delays, which the cap keeps from growing without bound on pathological
#: workloads.
_SLIM_POOL_MAX = 4096

_INF = float("inf")


class StopSimulation(Exception):
    """Raised internally to halt :meth:`Environment.run` at ``until``."""


class EmptySchedule(Exception):
    """Raised by :meth:`Environment.step` when no events remain."""


class LoopStats:
    """Event-loop statistics, collected only when explicitly enabled.

    The observability layer uses these to characterize a DES run: how many
    events the loop processed, how deep the heap got, and how much faster
    than real time the simulation ran (``sim/wall`` ratio).
    """

    __slots__ = (
        "events_processed",
        "max_queue_depth",
        "wall_s",
        "sim_start",
        "first_event_time",
        "last_event_time",
        "_wall_start",
    )

    def __init__(self, sim_start: float = 0.0) -> None:
        self.events_processed = 0
        self.max_queue_depth = 0
        #: wall seconds spent inside :meth:`Environment.run` so far.
        self.wall_s = 0.0
        self.sim_start = sim_start
        #: simulated times of the first/last processed event — the busy
        #: stretch of the run, which the timeline layer uses to distinguish
        #: warm-up/drain idle time from actual event processing.
        self.first_event_time: Optional[float] = None
        self.last_event_time: Optional[float] = None
        self._wall_start: Optional[float] = None

    def snapshot(self, now: float) -> dict[str, float]:
        """Current stats plus the simulated-vs-wall speed ratio."""
        sim_advanced = now - self.sim_start
        ratio = sim_advanced / self.wall_s if self.wall_s > 0 else float("inf")
        snapshot = {
            "events_processed": self.events_processed,
            "max_queue_depth": self.max_queue_depth,
            "wall_s": self.wall_s,
            "sim_advanced": sim_advanced,
            "sim_wall_ratio": ratio,
        }
        if self.first_event_time is not None and self.last_event_time is not None:
            snapshot["first_event_time"] = self.first_event_time
            snapshot["last_event_time"] = self.last_event_time
        return snapshot


class Environment:
    """Discrete-event execution environment.

    Maintains the virtual clock (:attr:`now`) and a priority heap of
    scheduled events. Heap entries are ordered by ``(time, priority,
    sequence)`` so same-instant events process in deterministic FIFO order
    within a priority class — determinism is a hard requirement for the
    paper's reproducibility goals.
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._eid = 0
        self._active_process: Optional[Process] = None
        self._stats: Optional[LoopStats] = None
        #: recycled SlimDelay instances (the plain-delay fast lane).
        self._slim_pool: list[SlimDelay] = []

    @property
    def stats(self) -> Optional[LoopStats]:
        """Loop statistics, or ``None`` unless :meth:`enable_stats` was called."""
        return self._stats

    def enable_stats(self) -> LoopStats:
        """Start collecting event-loop statistics (one branch per event)."""
        if self._stats is None:
            self._stats = LoopStats(sim_start=self._now)
        return self._stats

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- scheduling ---------------------------------------------------------

    def schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        """Queue ``event`` for processing after ``delay`` time units."""
        if not math.isfinite(delay) or delay < 0:
            # NaN/inf would wedge the heap ordering or hang run() forever.
            raise ValueError(f"delay must be finite and >= 0, got {delay}")
        self._eid += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._eid, event))

    def _schedule_resume(self, process: Process, delay: float) -> SlimDelay:
        """Fast lane: resume ``process`` after a plain ``delay``.

        Used when a process yields a raw number instead of a
        :class:`~repro.simcore.events.Timeout`. The carrier event comes from
        a recycle pool and holds the process directly — no Event allocation
        and no callback list per wait.
        """
        if not (0 <= delay < _INF):
            raise ValueError(f"delay must be finite and >= 0, got {delay}")
        pool = self._slim_pool
        if pool:
            event = pool.pop()
        else:
            event = SlimDelay.__new__(SlimDelay)
            event.env = self
            # The callbacks list stays empty forever: the run loop resumes
            # the carried process directly. It exists (non-None) so generic
            # "is this still pending" checks keep working.
            event.callbacks = []
            event._value = None
            event._ok = True
            event._defused = False
        event.process = process
        self._eid += 1
        heapq.heappush(self._queue, (self._now + delay, NORMAL, self._eid, event))
        return event

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` when none remain."""
        return self._queue[0][0] if self._queue else float("inf")

    def fast_forward(self, delta: float) -> None:
        """Jump the clock forward by ``delta`` without processing events.

        Every pending event is shifted by the same ``delta``, so relative
        timing — and therefore the heap order, which compares ``(time,
        priority, sequence)`` — is preserved exactly; the list is rebuilt
        in place with no re-heapify. This is the epoch checkpoint/restart
        primitive of the hybrid engine: the DES state (processes, pending
        events, resource queues) is frozen as-is while the fluid model
        covers the skipped span, then the loop resumes as if the span had
        been simulated.

        Absolute-time integrals (resource/CPU utilization accounting)
        accumulate their pre-jump rates over the skipped span; callers
        that need windowed statistics should snapshot *after* the jump.
        """
        if not math.isfinite(delta) or delta < 0:
            raise ValueError(f"delta must be finite and >= 0, got {delta}")
        if delta == 0:
            return
        self._now += delta
        if self._queue:
            self._queue[:] = [
                (time + delta, priority, eid, event)
                for time, priority, eid, event in self._queue
            ]

    def step(self) -> None:
        """Process the next event; advance the clock to its time."""
        try:
            self._now, _, _, event = heapq.heappop(self._queue)
        except IndexError:
            raise EmptySchedule() from None
        stats = self._stats
        if stats is not None:
            stats.events_processed += 1
            if stats.first_event_time is None:
                stats.first_event_time = self._now
            stats.last_event_time = self._now
            depth = len(self._queue) + 1
            if depth > stats.max_queue_depth:
                stats.max_queue_depth = depth

        if type(event) is SlimDelay:
            # Fast-lane delay: resume the carried process directly (no
            # callbacks; ``process is None`` means an interrupt cancelled
            # the wait), then return the instance to the recycle pool.
            self._resume_slim(event)
            return

        callbacks, event.callbacks = event.callbacks, None
        if callbacks is None:  # pragma: no cover - defensive
            raise SimulationError(f"event {event!r} processed twice")
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            exc = event._value
            raise exc if isinstance(exc, BaseException) else SimulationError(repr(exc))

    def _run_loop(
        self, wall_deadline: float | None, wall_timeout_s: float | None
    ) -> None:
        """Drain the heap until empty or :class:`StopSimulation`.

        Hot attributes (heap, pop, slim pool) are aliased to locals so the
        dominant pop→callback→recycle cycle does no repeated attribute
        lookups. When neither stats nor a wall deadline is active, the
        per-event bookkeeping disappears entirely; otherwise stats are
        accumulated in locals and flushed once after the loop.
        """
        queue = self._queue
        pop = heapq.heappop
        push = heapq.heappush
        slim_pool = self._slim_pool
        stats = self._stats
        slim = SlimDelay

        if stats is None and wall_deadline is None:
            while queue:
                self._now, _, _, event = pop(queue)
                if type(event) is slim:
                    # Fast lane: pump the carried process's generator in
                    # place. A consecutive plain-delay yield re-arms this
                    # very event — zero allocation, zero pool traffic.
                    process = event.process
                    if process is None:  # interrupted wait
                        if len(slim_pool) < _SLIM_POOL_MAX:
                            slim_pool.append(event)
                        continue
                    self._active_process = process
                    generator = process._generator
                    rearmed = False
                    try:
                        next_event = generator.send(None)
                    except StopIteration as stop:
                        process._generator = None  # type: ignore[assignment]
                        process.succeed(stop.value)
                    except BaseException as exc:  # noqa: BLE001 - via event
                        process._generator = None  # type: ignore[assignment]
                        process.fail(exc)
                    else:
                        kind = type(next_event)
                        if kind is float or kind is int:
                            if not (0 <= next_event < _INF):
                                self._active_process = None
                                raise ValueError(
                                    f"delay must be finite and >= 0, got {next_event}"
                                )
                            self._eid += 1
                            push(queue, (self._now + next_event, NORMAL, self._eid, event))
                            process._target = event
                            rearmed = True
                        elif not process._wait(next_event):
                            # Already-processed event: continue the pump
                            # through the general resume path.
                            process._resume(next_event)
                    self._active_process = None
                    if not rearmed:
                        event.process = None
                        if len(slim_pool) < _SLIM_POOL_MAX:
                            slim_pool.append(event)
                    continue

                callbacks = event.callbacks
                if callbacks is None:  # pragma: no cover - defensive
                    raise SimulationError(f"event {event!r} processed twice")
                event.callbacks = None
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    exc = event._value
                    raise exc if isinstance(exc, BaseException) else SimulationError(repr(exc))
            return

        events_processed = 0
        max_depth = 0
        first_time: Optional[float] = None
        last_time = 0.0
        perf_counter = time.perf_counter
        try:
            while queue:
                depth = len(queue)
                self._now, _, _, event = pop(queue)
                events_processed += 1
                if first_time is None:
                    first_time = self._now
                last_time = self._now
                if depth > max_depth:
                    max_depth = depth
                if type(event) is slim:
                    self._resume_slim(event)
                else:
                    callbacks = event.callbacks
                    if callbacks is None:  # pragma: no cover - defensive
                        raise SimulationError(f"event {event!r} processed twice")
                    event.callbacks = None
                    for callback in callbacks:
                        callback(event)
                    if not event._ok and not event._defused:
                        exc = event._value
                        raise (
                            exc
                            if isinstance(exc, BaseException)
                            else SimulationError(repr(exc))
                        )
                if wall_deadline is not None and perf_counter() > wall_deadline:
                    raise WallClockTimeout(
                        f"simulation exceeded its wall-clock budget of "
                        f"{wall_timeout_s}s (sim time {self._now})"
                    )
        finally:
            if stats is not None and events_processed:
                stats.events_processed += events_processed
                if stats.first_event_time is None:
                    stats.first_event_time = first_time
                stats.last_event_time = last_time
                if max_depth > stats.max_queue_depth:
                    stats.max_queue_depth = max_depth

    def _resume_slim(self, event: SlimDelay) -> None:
        """Resume a popped fast-lane delay (instrumented/step path)."""
        process = event.process
        if process is not None:
            process._resume(event)
        event.process = None
        if len(self._slim_pool) < _SLIM_POOL_MAX:
            self._slim_pool.append(event)

    # -- factories ----------------------------------------------------------

    def process(self, generator: Generator[Event, Any, Any], name: str | None = None) -> Process:
        """Start a process from a generator; returns its completion event."""
        return Process(self, generator, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Event succeeding after ``delay`` virtual time units."""
        return Timeout(self, delay, value)

    def event(self) -> Event:
        """A bare, untriggered event (trigger it with succeed/fail)."""
        return Event(self)

    # -- running ------------------------------------------------------------

    def run(
        self, until: float | Event | None = None, *, wall_timeout_s: float | None = None
    ) -> Any:
        """Run the simulation.

        ``until`` may be:

        - ``None``: run until no events remain;
        - a number: run until the clock reaches it (exclusive of events
          scheduled exactly at it only in the sense SimPy uses — the clock is
          set to ``until`` on return);
        - an :class:`Event`: run until that event is processed and return its
          value (re-raising its exception if it failed).

        ``wall_timeout_s`` bounds *real* time: a simulation that keeps
        scheduling events (a runaway or hung model) is cut off with
        :class:`~repro.errors.WallClockTimeout` after that many wall-clock
        seconds. The deadline is checked between events, so a single event
        callback that never returns cannot be interrupted — the fault-
        tolerant trial runner's thread-level timeout covers that case.
        """
        wall_deadline = None
        if wall_timeout_s is not None:
            if wall_timeout_s <= 0:
                raise ValueError(f"wall_timeout_s must be > 0, got {wall_timeout_s}")
            wall_deadline = time.perf_counter() + wall_timeout_s
        stop: Optional[Event] = None
        if until is not None:
            if isinstance(until, Event):
                if until.processed:
                    if not until._ok:
                        raise until._value
                    return until._value
                stop = until
            else:
                at = float(until)
                if at < self._now:
                    raise ValueError(f"until={at} is in the past (now={self._now})")
                stop = Event(self)
                stop._ok = True
                stop._value = None
                # URGENT-0 so the stop fires before same-time normal events.
                self._eid += 1
                heapq.heappush(self._queue, (at, -1, self._eid, stop))
            stop.callbacks.append(_stop_callback)

        from repro.observability.digest import get_perf

        perf = get_perf()
        track = self._stats is not None or perf.enabled
        wall_start = time.perf_counter() if track else 0.0
        try:
            self._run_loop(wall_deadline, wall_timeout_s)
        except StopSimulation as signal:
            return signal.args[0] if signal.args else None
        finally:
            if track:
                elapsed = time.perf_counter() - wall_start
                if self._stats is not None:
                    self._stats.wall_s += elapsed
                perf.record("des_run", elapsed)

        if stop is not None and isinstance(until, Event) and not stop.triggered:
            raise SimulationError(
                f"run(until={until!r}) finished but the event never triggered"
            )
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Environment(now={self._now}, pending={len(self._queue)})"


def _stop_callback(event: Event) -> None:
    if event._ok:
        raise StopSimulation(event._value)
    event._defused = True
    exc = event._value
    raise exc

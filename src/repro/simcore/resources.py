"""Capacity-limited resources with built-in occupancy statistics.

The Pl@ntNet engine's behaviour is driven by four thread pools, and the
paper's Figures 9f/9g/10c/10d report *pool busy time* — the fraction of pool
threads occupied. :class:`Resource` therefore tracks, natively and cheaply:

- the time-integral of the user count (→ pool busy %, i.e. occupancy),
- the time-integral of the queue length (→ mean queue length),
- per-request wait times (→ the paper's ``wait-*`` task times).

Statistics are incremental, so a monitor sampling every 10 simulated seconds
can compute exact windowed occupancy from integral deltas.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Any

from repro.simcore.events import URGENT, Event
from repro.utils.stats import RunningStats

if TYPE_CHECKING:  # pragma: no cover
    from repro.simcore.core import Environment

__all__ = ["Resource", "PriorityResource", "Request", "ResourceStats", "Store", "Container"]


class ResourceStats:
    """Incremental occupancy/queue statistics for a :class:`Resource`."""

    __slots__ = (
        "start_time",
        "last_change",
        "busy_integral",
        "queue_integral",
        "grants",
        "releases",
        "wait_times",
    )

    def __init__(self, now: float) -> None:
        self.start_time = now
        self.last_change = now
        #: ∫ user_count dt — divide by capacity × elapsed for occupancy.
        self.busy_integral = 0.0
        #: ∫ queue_length dt.
        self.queue_integral = 0.0
        self.grants = 0
        self.releases = 0
        self.wait_times = RunningStats()

    def advance(self, now: float, users: int, queued: int) -> None:
        """Accumulate integrals up to ``now`` given the *previous* state."""
        dt = now - self.last_change
        if dt > 0:
            self.busy_integral += users * dt
            self.queue_integral += queued * dt
            self.last_change = now

    def occupancy(self, now: float, capacity: int) -> float:
        """Average fraction of capacity in use over [start, now]."""
        elapsed = now - self.start_time
        if elapsed <= 0:
            return 0.0
        return self.busy_integral / (capacity * elapsed)

    def mean_queue_length(self, now: float) -> float:
        elapsed = now - self.start_time
        if elapsed <= 0:
            return 0.0
        return self.queue_integral / elapsed


class Request(Event):
    """A pending or granted claim on a :class:`Resource`.

    Usable as a context manager: the claim is released (or cancelled, if
    never granted) on exit.
    """

    __slots__ = ("resource", "priority", "submit_time")

    def __init__(self, resource: "Resource", priority: int = 0) -> None:
        super().__init__(resource.env)
        self.resource = resource
        self.priority = priority
        self.submit_time = resource.env.now
        resource._enqueue(self)
        resource._grant_pending()

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.resource.release(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "granted" if self.triggered else "queued"
        return f"<Request on {self.resource.name!r} {state}>"


class Resource:
    """A FIFO resource with ``capacity`` concurrent users (a thread pool)."""

    def __init__(self, env: "Environment", capacity: int, name: str = "resource") -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = int(capacity)
        self.name = name
        self.users: list[Request] = []
        self._queue: list[Any] = []
        self.stats = ResourceStats(env.now)

    # -- queue discipline (overridden by PriorityResource) -------------------

    def _enqueue(self, request: Request) -> None:
        self._queue.append(request)

    def _dequeue(self) -> Request:
        return self._queue.pop(0)

    def _queue_remove(self, request: Request) -> bool:
        try:
            self._queue.remove(request)
            return True
        except ValueError:
            return False

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    @property
    def user_count(self) -> int:
        return len(self.users)

    # -- core protocol --------------------------------------------------------

    def request(self, priority: int = 0) -> Request:
        """Claim one unit of capacity; the returned event fires when granted."""
        return Request(self, priority)

    def release(self, request: Request) -> None:
        """Return a granted claim, or cancel a still-queued one."""
        self.stats.advance(self.env.now, len(self.users), len(self._queue))
        try:
            self.users.remove(request)
        except ValueError:
            # Never granted: cancel from the queue (context-manager exit
            # after an interrupt while waiting).
            self._queue_remove(request)
        else:
            self.stats.releases += 1
            self._grant_pending()

    def _grant_pending(self) -> None:
        while self._queue and len(self.users) < self.capacity:
            self.stats.advance(self.env.now, len(self.users), len(self._queue))
            nxt = self._dequeue()
            self.users.append(nxt)
            self.stats.grants += 1
            self.stats.wait_times.add(self.env.now - nxt.submit_time)
            nxt._ok = True
            nxt._value = None
            self.env.schedule(nxt, priority=URGENT)
        # Account for state as of now even when nothing was granted.
        self.stats.advance(self.env.now, len(self.users), len(self._queue))

    # -- statistics -----------------------------------------------------------

    def occupancy(self) -> float:
        """Lifetime average busy fraction of the pool."""
        self.stats.advance(self.env.now, len(self.users), len(self._queue))
        return self.stats.occupancy(self.env.now, self.capacity)

    def busy_integral(self) -> float:
        """Current ∫ user_count dt (for windowed occupancy sampling)."""
        self.stats.advance(self.env.now, len(self.users), len(self._queue))
        return self.stats.busy_integral

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<{type(self).__name__} {self.name!r} users={len(self.users)}/"
            f"{self.capacity} queued={len(self._queue)}>"
        )


class PriorityResource(Resource):
    """A resource granting queued requests in (priority, FIFO) order.

    Lower ``priority`` values are served first.
    """

    def __init__(self, env: "Environment", capacity: int, name: str = "priority-resource") -> None:
        super().__init__(env, capacity, name)
        self._seq = 0

    def _enqueue(self, request: Request) -> None:
        self._seq += 1
        heapq.heappush(self._queue, (request.priority, self._seq, request))

    def _dequeue(self) -> Request:
        return heapq.heappop(self._queue)[2]

    def _queue_remove(self, request: Request) -> bool:
        for i, (_, _, req) in enumerate(self._queue):
            if req is request:
                self._queue.pop(i)
                heapq.heapify(self._queue)
                return True
        return False

    @property
    def queue_length(self) -> int:
        return len(self._queue)


class Store:
    """An unbounded (or bounded) FIFO store of arbitrary items."""

    def __init__(self, env: "Environment", capacity: float = float("inf"), name: str = "store") -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.name = name
        self.items: list[Any] = []
        self._getters: list[Event] = []
        self._putters: list[tuple[Event, Any]] = []

    def put(self, item: Any) -> Event:
        """Event that fires once ``item`` has been stored."""
        event = Event(self.env)
        self._putters.append((event, item))
        self._dispatch()
        return event

    def get(self) -> Event:
        """Event that fires with the oldest stored item."""
        event = Event(self.env)
        self._getters.append(event)
        self._dispatch()
        return event

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._putters and len(self.items) < self.capacity:
                event, item = self._putters.pop(0)
                self.items.append(item)
                event.succeed()
                progress = True
            if self._getters and self.items:
                event = self._getters.pop(0)
                event.succeed(self.items.pop(0))
                progress = True

    def __len__(self) -> int:
        return len(self.items)


class Container:
    """A continuous level container (e.g. battery charge, buffer bytes)."""

    def __init__(
        self,
        env: "Environment",
        capacity: float = float("inf"),
        init: float = 0.0,
        name: str = "container",
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 <= init <= capacity:
            raise ValueError("init level must be within [0, capacity]")
        self.env = env
        self.capacity = capacity
        self.name = name
        self._level = float(init)
        self._getters: list[tuple[Event, float]] = []
        self._putters: list[tuple[Event, float]] = []

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> Event:
        if amount <= 0:
            raise ValueError("put amount must be positive")
        event = Event(self.env)
        self._putters.append((event, float(amount)))
        self._dispatch()
        return event

    def get(self, amount: float) -> Event:
        if amount <= 0:
            raise ValueError("get amount must be positive")
        event = Event(self.env)
        self._getters.append((event, float(amount)))
        self._dispatch()
        return event

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._putters:
                event, amount = self._putters[0]
                if self._level + amount <= self.capacity:
                    self._putters.pop(0)
                    self._level += amount
                    event.succeed()
                    progress = True
            if self._getters:
                event, amount = self._getters[0]
                if amount <= self._level:
                    self._getters.pop(0)
                    self._level -= amount
                    event.succeed(amount)
                    progress = True

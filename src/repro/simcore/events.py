"""Events, processes and event composition for the DES kernel.

An :class:`Event` is a one-shot occurrence on the virtual timeline. Events
are *triggered* (given an outcome) and later *processed* (their callbacks
run) by the :class:`~repro.simcore.core.Environment`. A :class:`Process`
wraps a Python generator; each value the generator yields must be an event
— or a raw non-negative number, the fast-lane shorthand for a plain virtual
delay — and the process resumes when that event is processed.

This is a deliberate re-implementation of the SimPy core model: the
reproduction may not depend on external simulation packages, and the paper's
thread-pool phenomena need precise control over resource accounting.
"""

from __future__ import annotations

import heapq
import math
from typing import TYPE_CHECKING, Any, Callable, Generator, Iterable, Optional

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.simcore.core import Environment

__all__ = [
    "PENDING",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "ConditionEvent",
    "AllOf",
    "AnyOf",
    "all_of",
    "any_of",
]


class _Pending:
    """Sentinel for 'event not yet triggered'."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<PENDING>"


PENDING = _Pending()

# Scheduling priorities: URGENT events (interrupts, resource grants) run
# before NORMAL events scheduled at the same instant.
URGENT = 0
NORMAL = 1


class Event:
    """A one-shot occurrence with success/failure outcome and callbacks."""

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        #: Callbacks run when the event is processed; ``None`` afterwards.
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: bool = True
        self._defused: bool = False

    @property
    def triggered(self) -> bool:
        """True once the event has an outcome (scheduled for processing)."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded. Only meaningful once triggered."""
        if not self.triggered:
            raise SimulationError("outcome of untriggered event is undefined")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or the exception, if it failed)."""
        if self._value is PENDING:
            raise SimulationError("value of untriggered event is undefined")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event as successful with ``value``."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``.

        A failed event whose failure is never handled by a process crashes
        the simulation (unless :meth:`defuse` is called).
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Mirror the outcome of another (triggered) event."""
        if event._ok:
            self.succeed(event._value)
        else:
            self.defuse_source(event)
            self.fail(event._value)

    @staticmethod
    def defuse_source(event: "Event") -> None:
        event._defused = True

    def defuse(self) -> None:
        """Mark a failure as handled so it will not crash the simulation."""
        self._defused = True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "processed" if self.processed else ("triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that succeeds after a fixed virtual delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if not math.isfinite(delay) or delay < 0:
            raise ValueError(f"timeout delay must be finite and >= 0, got {delay}")
        # Inlined Event.__init__ + Environment.schedule: a timeout is the
        # dominant event kind in the engine DES, so it skips the redundant
        # second delay validation and the schedule() call overhead.
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._defused = False
        self.delay = delay
        env._eid += 1
        heapq.heappush(env._queue, (env._now + delay, NORMAL, env._eid, self))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Timeout delay={self.delay}>"


class SlimDelay(Event):
    """A pooled plain-delay event, internal to the fast lane.

    Created only by :meth:`Environment._schedule_resume` when a process
    yields a raw number instead of a :class:`Timeout`. It bypasses the
    callback protocol entirely: it carries its :attr:`process` directly and
    the run loop pumps that process's generator in place, re-arming the
    same instance for consecutive plain delays. Never exposed to user code
    (the resumed generator receives ``None``), which is what makes the
    recycling safe. ``process`` is set to ``None`` when an interrupt
    cancels the wait; the run loop then simply discards the pop.
    """

    __slots__ = ("process",)


class Interrupt(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called."""

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class _Initialize(Event):
    """Internal: first resume of a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume)
        env.schedule(self, priority=URGENT)


class _Interruption(Event):
    """Internal: out-of-band resumption throwing :class:`Interrupt`."""

    __slots__ = ("process",)

    def __init__(self, process: "Process", cause: Any) -> None:
        super().__init__(process.env)
        if process.triggered:
            raise SimulationError("cannot interrupt a terminated process")
        if process._generator is None:  # pragma: no cover - defensive
            raise SimulationError("cannot interrupt an uninitialized process")
        self.process = process
        self._ok = False
        self._value = Interrupt(cause)
        self._defused = True
        # Detach the process from the event it currently waits on; the
        # interrupt takes over the resumption.
        target = process._target
        if target is not None and target.callbacks is not None:
            if type(target) is SlimDelay:
                # Fast-lane waits carry the process directly; clearing it
                # cancels the pending resume without touching the heap.
                target.process = None
            else:
                try:
                    target.callbacks.remove(process._resume)
                except ValueError:  # pragma: no cover - defensive
                    pass
        self.callbacks.append(process._resume)
        process.env.schedule(self, priority=URGENT)


class Process(Event):
    """A running process; also an event that fires when the process ends.

    The wrapped generator yields :class:`Event` instances. When a yielded
    event is processed, the generator resumes with the event's value (or the
    event's exception is thrown into it, for failed events).
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        name: str | None = None,
    ) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"process() needs a generator, got {generator!r}")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        _Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant."""
        _Interruption(self, cause)

    def _resume(self, event: Event) -> None:
        """Advance the generator; subscribe to the next yielded event."""
        self.env._active_process = self
        while True:
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    event._defused = True
                    exc = event._value
                    next_event = self._generator.throw(exc)
            except StopIteration as stop:
                self._generator = None  # type: ignore[assignment]
                self.env._active_process = None
                self.succeed(stop.value)
                return
            except BaseException as exc:  # noqa: BLE001 - propagate via event
                self._generator = None  # type: ignore[assignment]
                self.env._active_process = None
                self.fail(exc)
                return

            kind = type(next_event)
            if kind is float or kind is int:
                # Fast lane: a raw number is a plain delay. The environment
                # schedules the resume through a pooled SlimDelay, avoiding
                # a fresh Event (and callback list) per simulated wait.
                self._target = self.env._schedule_resume(self, next_event)
                break
            if self._wait(next_event):
                break
            # Already processed: continue immediately with its outcome.
            event = next_event
        self.env._active_process = None

    def _wait(self, next_event: Any) -> bool:
        """Subscribe to a yielded event.

        Returns True when the process is now waiting on ``next_event``,
        False when that event was already processed (the caller continues
        the pump with its outcome immediately).
        """
        if not isinstance(next_event, Event):
            self.env._active_process = None
            error = SimulationError(
                f"process {self.name!r} yielded a non-event: {next_event!r}"
            )
            self._generator.throw(error)
            raise error  # pragma: no cover - throw() above raises
        if next_event.env is not self.env:
            raise SimulationError(
                f"process {self.name!r} yielded an event from another environment"
            )
        if next_event.callbacks is not None:
            next_event.callbacks.append(self._resume)
            self._target = next_event
            return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Process {self.name!r} {'done' if self.triggered else 'alive'}>"


class ConditionEvent(Event):
    """Base class for :class:`AllOf` / :class:`AnyOf` composition."""

    __slots__ = ("events", "_count")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self.events = tuple(events)
        self._count = 0
        for ev in self.events:
            if ev.env is not env:
                raise SimulationError("cannot mix events from different environments")
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            if ev.callbacks is None:
                self._observe(ev)
            else:
                ev.callbacks.append(self._observe)

    def _observe(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._count += 1
        if self._satisfied():
            self.succeed(self._collect())

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def _collect(self) -> dict[Event, Any]:
        return {ev: ev._value for ev in self.events if ev.processed and ev._ok}


class AllOf(ConditionEvent):
    """Succeeds when every component event has succeeded."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._count == len(self.events)


class AnyOf(ConditionEvent):
    """Succeeds as soon as one component event has succeeded."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._count >= 1


def all_of(env: "Environment", events: Iterable[Event]) -> AllOf:
    """Event that fires when all ``events`` have succeeded."""
    return AllOf(env, events)


def any_of(env: "Environment", events: Iterable[Event]) -> AnyOf:
    """Event that fires when any of ``events`` has succeeded."""
    return AnyOf(env, events)

"""Gaussian process regression (Kriging — Simpson 2001, the paper's [24]).

A compact but complete GP: stationary kernels (RBF, Matérn 1/2, 3/2, 5/2),
anisotropic length-scales, white-noise term, log-marginal-likelihood
hyperparameter optimization with multi-restart L-BFGS-B, and exact posterior
mean/std via Cholesky factorization. Inputs and targets are standardized
internally so length-scale priors behave across problem scales.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np
from scipy import linalg, optimize

from repro.errors import ValidationError
from repro.surrogate.base import SurrogateModel, check_fit_inputs

__all__ = ["RBF", "Matern", "GaussianProcessRegressor"]


def _cdist_sq(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Pairwise squared Euclidean distances (broadcast, no copies of A/B)."""
    a2 = np.sum(A * A, axis=1)[:, None]
    b2 = np.sum(B * B, axis=1)[None, :]
    return np.maximum(a2 + b2 - 2.0 * (A @ B.T), 0.0)


class RBF:
    """Squared-exponential kernel with anisotropic length-scales."""

    def __init__(self, length_scale: float | np.ndarray = 1.0) -> None:
        self.length_scale = np.atleast_1d(np.asarray(length_scale, dtype=float))

    def __call__(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        d2 = _cdist_sq(A / self.length_scale, B / self.length_scale)
        return np.exp(-0.5 * d2)

    def with_length_scale(self, length_scale: np.ndarray) -> "RBF":
        return RBF(length_scale)


class Matern:
    """Matérn kernel with ν ∈ {0.5, 1.5, 2.5} (2.5 is the GP default)."""

    def __init__(self, length_scale: float | np.ndarray = 1.0, nu: float = 2.5) -> None:
        if nu not in (0.5, 1.5, 2.5):
            raise ValidationError("nu must be one of 0.5, 1.5, 2.5")
        self.length_scale = np.atleast_1d(np.asarray(length_scale, dtype=float))
        self.nu = nu

    def __call__(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        d = np.sqrt(_cdist_sq(A / self.length_scale, B / self.length_scale))
        if self.nu == 0.5:
            return np.exp(-d)
        if self.nu == 1.5:
            f = math.sqrt(3.0) * d
            return (1.0 + f) * np.exp(-f)
        f = math.sqrt(5.0) * d
        return (1.0 + f + f * f / 3.0) * np.exp(-f)

    def with_length_scale(self, length_scale: np.ndarray) -> "Matern":
        return Matern(length_scale, self.nu)


class GaussianProcessRegressor(SurrogateModel):
    """Exact GP regression with hyperparameter optimization.

    Hyperparameters θ = (signal variance, per-dimension length-scales,
    noise variance) are fitted by maximizing the log marginal likelihood
    over log-parameters with ``n_restarts`` random restarts.
    """

    name = "GP"

    def __init__(
        self,
        kernel: Matern | RBF | None = None,
        *,
        noise: float = 1e-6,
        optimize_hyperparams: bool = True,
        n_restarts: int = 3,
        random_state: int | None = None,
    ) -> None:
        super().__init__()
        self.kernel = kernel or Matern(nu=2.5)
        if noise < 0:
            raise ValidationError("noise must be >= 0")
        self.noise = float(noise)
        self.optimize_hyperparams = optimize_hyperparams
        self.n_restarts = int(n_restarts)
        self.random_state = random_state
        self._X: np.ndarray | None = None
        self._alpha: np.ndarray | None = None
        self._L: np.ndarray | None = None
        self._signal: float = 1.0
        self._y_mean: float = 0.0
        self._y_std: float = 1.0

    # -- likelihood ------------------------------------------------------------------

    def _nll(self, log_theta: np.ndarray, X: np.ndarray, y: np.ndarray) -> float:
        """Negative log marginal likelihood at log hyperparameters."""
        d = X.shape[1]
        signal = math.exp(2.0 * log_theta[0])
        lengths = np.exp(log_theta[1 : 1 + d])
        noise = math.exp(2.0 * log_theta[1 + d])
        K = signal * self.kernel.with_length_scale(lengths)(X, X)
        K[np.diag_indices_from(K)] += noise + 1e-10
        try:
            L = linalg.cholesky(K, lower=True)
        except linalg.LinAlgError:
            return 1e25
        alpha = linalg.solve_triangular(L, y, lower=True)
        nll = (
            0.5 * float(alpha @ alpha)
            + float(np.log(np.diag(L)).sum())
            + 0.5 * len(y) * math.log(2.0 * math.pi)
        )
        return nll

    def fit(self, X: Any, y: Any) -> "GaussianProcessRegressor":
        X, y = check_fit_inputs(X, y)
        self.n_features_ = X.shape[1]
        self._y_mean = float(y.mean())
        self._y_std = float(y.std()) or 1.0
        y_n = (y - self._y_mean) / self._y_std
        d = X.shape[1]

        log_theta = np.concatenate(
            [[0.0], np.zeros(d), [0.5 * math.log(max(self.noise, 1e-10))]]
        )
        if self.optimize_hyperparams and len(y) >= 3:
            rng = np.random.default_rng(self.random_state)
            bounds = [(-4.0, 4.0)] + [(-4.0, 4.0)] * d + [(-12.0, 1.0)]
            best = None
            starts = [log_theta] + [
                np.array([rng.uniform(lo, hi) for lo, hi in bounds])
                for _ in range(self.n_restarts)
            ]
            for start in starts:
                res = optimize.minimize(
                    self._nll,
                    start,
                    args=(X, y_n),
                    method="L-BFGS-B",
                    bounds=bounds,
                    options={"maxiter": 200},
                )
                if best is None or res.fun < best.fun:
                    best = res
            assert best is not None
            log_theta = best.x

        self._signal = math.exp(2.0 * log_theta[0])
        lengths = np.exp(log_theta[1 : 1 + d])
        fitted_noise = math.exp(2.0 * log_theta[1 + d])
        self.kernel = self.kernel.with_length_scale(lengths)
        self.noise_ = fitted_noise

        K = self._signal * self.kernel(X, X)
        K[np.diag_indices_from(K)] += fitted_noise + 1e-10
        self._L = linalg.cholesky(K, lower=True)
        self._alpha = linalg.cho_solve((self._L, True), y_n)
        self._X = X
        return self

    def predict(
        self, X: Any, return_std: bool = False
    ) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
        X = self._check_predict_input(X)
        if self._X is None or self._alpha is None or self._L is None:
            raise ValidationError("GaussianProcessRegressor is not fitted yet")
        K_star = self._signal * self.kernel(X, self._X)
        mean_n = K_star @ self._alpha
        mean = mean_n * self._y_std + self._y_mean
        if not return_std:
            return mean
        v = linalg.solve_triangular(self._L, K_star.T, lower=True)
        var_n = self._signal - np.sum(v * v, axis=0)
        var_n = np.maximum(var_n, 1e-12)
        std = np.sqrt(var_n) * self._y_std
        return mean, std

    def log_marginal_likelihood(self) -> float:
        """LML of the fitted model (for diagnostics / tests)."""
        if self._X is None or self._alpha is None or self._L is None:
            raise ValidationError("GaussianProcessRegressor is not fitted yet")
        y_n = self._L @ (self._L.T @ self._alpha)  # reconstruct normalized y
        return -(
            0.5 * float(y_n @ self._alpha)
            + float(np.log(np.diag(self._L)).sum())
            + 0.5 * len(y_n) * math.log(2.0 * math.pi)
        )

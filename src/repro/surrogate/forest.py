"""Tree ensembles: Random Forest and Extra-Trees (the paper's surrogate).

Both provide the uncertainty estimate Bayesian optimization needs: the
standard deviation of per-tree predictions (plus a small jitter floor so
acquisition functions never divide by zero on duplicated points).
"""

from __future__ import annotations

from typing import Any, Literal

import numpy as np

from repro.errors import ValidationError
from repro.surrogate.base import SurrogateModel, check_fit_inputs
from repro.surrogate.tree import _LEAF, DecisionTreeRegressor

__all__ = ["RandomForestRegressor", "ExtraTreesRegressor"]


class _BaseForest(SurrogateModel):
    """Shared machinery for bagged tree ensembles."""

    _splitter: Literal["best", "random"] = "best"
    _bootstrap: bool = True

    def __init__(
        self,
        n_estimators: int = 50,
        *,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | Literal["sqrt"] | None = None,
        random_state: int | None = None,
        std_floor: float = 1e-9,
    ) -> None:
        super().__init__()
        if n_estimators < 1:
            raise ValidationError("n_estimators must be >= 1")
        self.n_estimators = int(n_estimators)
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state
        self.std_floor = float(std_floor)
        self.estimators_: list[DecisionTreeRegressor] = []

    def fit(self, X: Any, y: Any) -> "_BaseForest":
        X, y = check_fit_inputs(X, y)
        self.n_features_ = X.shape[1]
        rng = np.random.default_rng(self.random_state)
        self.estimators_ = []
        n = len(y)
        for _ in range(self.n_estimators):
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                splitter=self._splitter,
                random_state=np.random.default_rng(rng.integers(0, 2**63)),
            )
            if self._bootstrap:
                idx = rng.integers(0, n, size=n)
                tree.fit(X[idx], y[idx])
            else:
                tree.fit(X, y)
            self.estimators_.append(tree)
        self._pack()
        return self

    def _pack(self) -> None:
        """Concatenate all trees into one node-array set for joint traversal.

        Prediction walks every (tree, row) pair in a single vectorized loop
        whose iteration count is the *deepest* tree rather than the sum of
        depths — the per-tree Python loop used to dominate acquisition
        scoring over large candidate batches.
        """
        trees = self.estimators_
        offsets = np.cumsum([0] + [t.node_count for t in trees[:-1]])
        self._roots = offsets.astype(np.int64)
        self._cl_all = np.concatenate(
            [np.where(t._cl == _LEAF, _LEAF, t._cl + off) for t, off in zip(trees, offsets)]
        )
        self._cr_all = np.concatenate(
            [np.where(t._cr == _LEAF, _LEAF, t._cr + off) for t, off in zip(trees, offsets)]
        )
        self._feat_all = np.concatenate([t._feat for t in trees])
        self._thr_all = np.concatenate([t._thr for t in trees])
        self._val_all = np.concatenate([t._val for t in trees])

    def predict(
        self, X: Any, return_std: bool = False
    ) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
        X = self._check_predict_input(X)
        if not self.estimators_:
            raise ValidationError(f"{type(self).__name__} is not fitted yet")
        n_rows = len(X)
        n_trees = len(self.estimators_)
        node = np.repeat(self._roots, n_rows)
        rows = np.tile(np.arange(n_rows), n_trees)
        active = np.nonzero(self._cl_all[node] != _LEAF)[0]
        while active.size:
            nodes = node[active]
            go_left = X[rows[active], self._feat_all[nodes]] <= self._thr_all[nodes]
            nxt = np.where(go_left, self._cl_all[nodes], self._cr_all[nodes])
            node[active] = nxt
            active = active[self._cl_all[nxt] != _LEAF]
        preds = self._val_all[node].reshape(n_trees, n_rows)
        mean = preds.mean(axis=0)
        if return_std:
            std = preds.std(axis=0)
            return mean, np.maximum(std, self.std_floor)
        return mean


class RandomForestRegressor(_BaseForest):
    """Breiman-style forest: bootstrap rows + best splits on feature subsets."""

    name = "RF"
    _splitter = "best"
    _bootstrap = True

    def __init__(self, n_estimators: int = 50, **kwargs: Any) -> None:
        kwargs.setdefault("max_features", "sqrt")
        super().__init__(n_estimators, **kwargs)


class ExtraTreesRegressor(_BaseForest):
    """Extremely randomized trees (Geurts 2006): random thresholds, no
    bootstrap — the ``base_estimator='ET'`` of the paper's Listing 1."""

    name = "ET"
    _splitter = "random"
    _bootstrap = False

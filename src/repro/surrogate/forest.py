"""Tree ensembles: Random Forest and Extra-Trees (the paper's surrogate).

Both provide the uncertainty estimate Bayesian optimization needs: the
standard deviation of per-tree predictions (plus a small jitter floor so
acquisition functions never divide by zero on duplicated points).
"""

from __future__ import annotations

from typing import Any, Literal

import numpy as np

from repro.errors import ValidationError
from repro.surrogate.base import SurrogateModel, check_fit_inputs
from repro.surrogate.tree import _LEAF, DecisionTreeRegressor

__all__ = ["RandomForestRegressor", "ExtraTreesRegressor"]


class _BaseForest(SurrogateModel):
    """Shared machinery for bagged tree ensembles."""

    _splitter: Literal["best", "random"] = "best"
    _bootstrap: bool = True

    def __init__(
        self,
        n_estimators: int = 50,
        *,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | Literal["sqrt"] | None = None,
        random_state: int | None = None,
        std_floor: float = 1e-9,
        n_jobs: int | None = None,
    ) -> None:
        super().__init__()
        if n_estimators < 1:
            raise ValidationError("n_estimators must be >= 1")
        if n_jobs is not None and n_jobs != -1 and n_jobs < 1:
            raise ValidationError("n_jobs must be >= 1, -1, or None")
        self.n_estimators = int(n_estimators)
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state
        self.std_floor = float(std_floor)
        self.n_jobs = n_jobs
        self.estimators_: list[DecisionTreeRegressor] = []

    def _worker_count(self) -> int:
        if self.n_jobs is None:
            return 1
        if self.n_jobs == -1:
            import os

            return max(1, (os.cpu_count() or 1) - 1)
        return int(self.n_jobs)

    def fit(self, X: Any, y: Any) -> "_BaseForest":
        X, y = check_fit_inputs(X, y)
        self.n_features_ = X.shape[1]
        rng = np.random.default_rng(self.random_state)
        n = len(y)
        # Per-tree randomness (seed stream, bootstrap rows) is drawn
        # sequentially from the forest rng *before* any tree is fitted, so
        # the ensemble is byte-identical whether the fits below run serially
        # or across a thread pool.
        specs: list[tuple[np.random.Generator, np.ndarray | None]] = []
        for _ in range(self.n_estimators):
            tree_rng = np.random.default_rng(rng.integers(0, 2**63))
            idx = rng.integers(0, n, size=n) if self._bootstrap else None
            specs.append((tree_rng, idx))

        def _build(spec: tuple[np.random.Generator, np.ndarray | None]) -> DecisionTreeRegressor:
            tree_rng, idx = spec
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                splitter=self._splitter,
                random_state=tree_rng,
            )
            if idx is not None:
                tree.fit(X[idx], y[idx])
            else:
                tree.fit(X, y)
            return tree

        workers = min(self._worker_count(), self.n_estimators)
        if workers > 1:
            from concurrent.futures import ThreadPoolExecutor

            with ThreadPoolExecutor(max_workers=workers) as pool:
                estimators = list(pool.map(_build, specs))
        else:
            estimators = [_build(spec) for spec in specs]
        self.estimators_ = estimators
        self._pack()
        return self

    def _pack(self) -> None:
        """Concatenate all trees into one node-array set for joint traversal.

        Prediction walks every (tree, row) pair in a single vectorized loop
        whose iteration count is the *deepest* tree rather than the sum of
        depths — the per-tree Python loop used to dominate acquisition
        scoring over large candidate batches.
        """
        trees = self.estimators_
        offsets = np.cumsum([0] + [t.node_count for t in trees[:-1]])
        self._roots = offsets.astype(np.int64)
        self._cl_all = np.concatenate(
            [np.where(t._cl == _LEAF, _LEAF, t._cl + off) for t, off in zip(trees, offsets)]
        )
        self._cr_all = np.concatenate(
            [np.where(t._cr == _LEAF, _LEAF, t._cr + off) for t, off in zip(trees, offsets)]
        )
        self._feat_all = np.concatenate([t._feat for t in trees])
        self._thr_all = np.concatenate([t._thr for t in trees])
        self._val_all = np.concatenate([t._val for t in trees])
        self._count_all = np.concatenate([t._nsamp for t in trees])

    def _packed_leaves(self, X: np.ndarray) -> np.ndarray:
        """Packed leaf index for every (tree, row) pair, flat ``n_trees*n_rows``."""
        n_rows = len(X)
        n_trees = len(self.estimators_)
        node = np.repeat(self._roots, n_rows)
        rows = np.tile(np.arange(n_rows), n_trees)
        active = np.nonzero(self._cl_all[node] != _LEAF)[0]
        while active.size:
            nodes = node[active]
            go_left = X[rows[active], self._feat_all[nodes]] <= self._thr_all[nodes]
            nxt = np.where(go_left, self._cl_all[nodes], self._cr_all[nodes])
            node[active] = nxt
            active = active[self._cl_all[nxt] != _LEAF]
        return node

    def predict(
        self, X: Any, return_std: bool = False
    ) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
        X = self._check_predict_input(X)
        if not self.estimators_:
            raise ValidationError(f"{type(self).__name__} is not fitted yet")
        node = self._packed_leaves(X)
        preds = self._val_all[node].reshape(len(self.estimators_), len(X))
        mean = preds.mean(axis=0)
        if return_std:
            std = preds.std(axis=0)
            return mean, np.maximum(std, self.std_floor)
        return mean

    # -- incremental updates -------------------------------------------------------

    supports_partial_fit = True

    def partial_fit(self, X: Any, y: Any) -> "_BaseForest":
        """Online insertion into every tree's leaf statistics.

        Each fresh sample is routed through the packed node arrays once and
        shifts the running mean of the leaf it lands in, per tree. Structure
        is frozen until the next full refit; bootstrapped forests fold every
        sample into every tree (the resampling distinction is restored at
        the refit). The packed value array — the only array ``predict``
        reads for outputs — is rebuilt on a copy and swapped in atomically,
        so concurrent predicts never observe a torn update.
        """
        X, y = check_fit_inputs(X, y)
        if not self.estimators_:
            raise ValidationError(f"{type(self).__name__} is not fitted yet")
        X = self._check_predict_input(X)
        node = self._packed_leaves(X)
        n_rows = len(X)
        new_val = self._val_all.copy()
        counts = self._count_all
        for flat, value in zip(node, y[np.tile(np.arange(n_rows), len(self.estimators_))]):
            n = counts[flat]
            new_val[flat] += (value - new_val[flat]) / (n + 1.0)
            counts[flat] = n + 1.0
        self._val_all = new_val  # atomic publish
        return self


class RandomForestRegressor(_BaseForest):
    """Breiman-style forest: bootstrap rows + best splits on feature subsets."""

    name = "RF"
    _splitter = "best"
    _bootstrap = True

    def __init__(self, n_estimators: int = 50, **kwargs: Any) -> None:
        kwargs.setdefault("max_features", "sqrt")
        super().__init__(n_estimators, **kwargs)


class ExtraTreesRegressor(_BaseForest):
    """Extremely randomized trees (Geurts 2006): random thresholds, no
    bootstrap — the ``base_estimator='ET'`` of the paper's Listing 1."""

    name = "ET"
    _splitter = "random"
    _bootstrap = False

"""Surrogate model protocol and name-based lookup."""

from __future__ import annotations

import abc
from typing import Any

import numpy as np

from repro.errors import ValidationError

__all__ = ["SurrogateModel", "get_surrogate", "check_fit_inputs"]


def check_fit_inputs(X: Any, y: Any) -> tuple[np.ndarray, np.ndarray]:
    """Validate and convert training data to float arrays.

    Rows whose objective value is NaN or ±inf are **dropped** rather than
    rejected: a failed measurement (crashed trial, diverged simulation) must
    not poison tree construction — a single NaN turns every split-score SSE
    into NaN, silently producing a stump. Non-finite *features* still raise,
    because they indicate a broken space transform, not a bad measurement.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float).ravel()
    if X.ndim != 2:
        raise ValidationError(f"X must be 2-D, got shape {X.shape}")
    if len(X) != len(y):
        raise ValidationError(f"X has {len(X)} rows but y has {len(y)} values")
    if len(y) == 0:
        raise ValidationError("cannot fit on an empty dataset")
    if not np.isfinite(X).all():
        raise ValidationError("X contains non-finite values")
    finite = np.isfinite(y)
    if not finite.all():
        X = X[finite]
        y = y[finite]
        if len(y) == 0:
            raise ValidationError("all y values are non-finite; nothing to fit")
    return X, y


class SurrogateModel(abc.ABC):
    """Common interface: ``fit`` then ``predict`` (optionally with std)."""

    #: name used in configurations (``base_estimator='ET'``).
    name: str = ""

    #: whether :meth:`partial_fit` performs a real incremental update.
    supports_partial_fit: bool = False

    def __init__(self) -> None:
        self.n_features_: int | None = None

    @abc.abstractmethod
    def fit(self, X: Any, y: Any) -> "SurrogateModel":
        """Train on ``X`` (n, d) / ``y`` (n,); returns self."""

    def partial_fit(self, X: Any, y: Any) -> "SurrogateModel":
        """Fold fresh observations into an already-fitted model.

        Implementations must be *publish-safe*: a concurrent ``predict``
        from another thread may observe the model before or after the
        update, but never a torn intermediate state (the background-refit
        optimizer calls this while asks read the model). The default raises
        — callers gate on :attr:`supports_partial_fit`.
        """
        raise ValidationError(
            f"{type(self).__name__} does not support incremental updates"
        )

    @abc.abstractmethod
    def predict(
        self, X: Any, return_std: bool = False
    ) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
        """Predict ``y`` for rows of ``X``; optionally with uncertainty."""

    # -- shared helpers -----------------------------------------------------------

    def _check_predict_input(self, X: Any) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        if self.n_features_ is None:
            raise ValidationError(f"{type(self).__name__} is not fitted yet")
        if X.shape[1] != self.n_features_:
            raise ValidationError(
                f"expected {self.n_features_} features, got {X.shape[1]}"
            )
        return X

    def score(self, X: Any, y: Any) -> float:
        """Coefficient of determination R² (1 = perfect)."""
        X, y = check_fit_inputs(X, y)
        pred = np.asarray(self.predict(X))
        ss_res = float(np.sum((y - pred) ** 2))
        ss_tot = float(np.sum((y - y.mean()) ** 2))
        if ss_tot == 0:
            return 1.0 if ss_res == 0 else 0.0
        return 1.0 - ss_res / ss_tot


def get_surrogate(name: str, **kwargs: Any) -> SurrogateModel:
    """Resolve a surrogate by its configuration alias.

    Aliases follow scikit-optimize: ``ET`` (extra trees), ``RF`` (random
    forest), ``GBRT``, ``GP`` (Kriging), plus ``tree``, ``poly``, ``knn``
    and ``dummy``.
    """
    from repro.surrogate.dummy import DummyRegressor
    from repro.surrogate.forest import ExtraTreesRegressor, RandomForestRegressor
    from repro.surrogate.gbrt import GBRTQuantile
    from repro.surrogate.gp import GaussianProcessRegressor
    from repro.surrogate.knn import KNeighborsRegressor
    from repro.surrogate.polynomial import PolynomialRegressor
    from repro.surrogate.tree import DecisionTreeRegressor

    aliases: dict[str, type[SurrogateModel]] = {
        "et": ExtraTreesRegressor,
        "extratrees": ExtraTreesRegressor,
        "rf": RandomForestRegressor,
        "randomforest": RandomForestRegressor,
        "gbrt": GBRTQuantile,
        "gp": GaussianProcessRegressor,
        "kriging": GaussianProcessRegressor,
        "tree": DecisionTreeRegressor,
        "poly": PolynomialRegressor,
        "polynomial": PolynomialRegressor,
        "knn": KNeighborsRegressor,
        "dummy": DummyRegressor,
    }
    try:
        cls = aliases[name.lower()]
    except KeyError:
        raise ValidationError(
            f"unknown surrogate {name!r}; available: {sorted(aliases)}"
        ) from None
    return cls(**kwargs)

"""CART regression tree with exhaustive or randomized split selection.

One implementation serves three estimators:

- ``splitter="best"`` → classic CART (scan every threshold) — used by
  :class:`~repro.surrogate.forest.RandomForestRegressor` and standalone.
- ``splitter="random"`` → one uniform-random threshold per candidate
  feature — the *extremely randomized* split rule of Extra-Trees
  (Geurts et al. 2006), the paper's surrogate of choice.

The tree is stored in parallel arrays (children, feature, threshold, value),
which keeps prediction a tight loop and makes ``apply()`` (leaf indices,
needed by gradient boosting's leaf re-estimation) trivial.
"""

from __future__ import annotations

from typing import Any, Literal

import numpy as np

from repro.errors import ValidationError
from repro.surrogate.base import SurrogateModel, check_fit_inputs

__all__ = ["DecisionTreeRegressor"]

_LEAF = -1


class DecisionTreeRegressor(SurrogateModel):
    """Variance-reduction regression tree.

    Parameters mirror the scikit-learn names where they exist:

    - ``max_depth`` — maximum tree depth (``None`` = unbounded).
    - ``min_samples_split`` — minimum samples to attempt a split.
    - ``min_samples_leaf`` — minimum samples in each child.
    - ``max_features`` — number of features considered per split
      (``None`` = all, ``"sqrt"``, or an int).
    - ``splitter`` — ``"best"`` (CART) or ``"random"`` (Extra-Trees rule).
    """

    name = "tree"

    def __init__(
        self,
        *,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | Literal["sqrt"] | None = None,
        splitter: Literal["best", "random"] = "best",
        random_state: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if max_depth is not None and max_depth < 1:
            raise ValidationError("max_depth must be >= 1 or None")
        if min_samples_split < 2:
            raise ValidationError("min_samples_split must be >= 2")
        if min_samples_leaf < 1:
            raise ValidationError("min_samples_leaf must be >= 1")
        if splitter not in ("best", "random"):
            raise ValidationError(f"unknown splitter {splitter!r}")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.splitter = splitter
        self._rng = (
            random_state
            if isinstance(random_state, np.random.Generator)
            else np.random.default_rng(random_state)
        )
        # tree arrays (filled by fit)
        self.children_left_: list[int] = []
        self.children_right_: list[int] = []
        self.feature_: list[int] = []
        self.threshold_: list[float] = []
        self.value_: list[float] = []
        self.n_node_samples_: list[int] = []

    # -- construction -------------------------------------------------------------

    def fit(self, X: Any, y: Any) -> "DecisionTreeRegressor":
        X, y = check_fit_inputs(X, y)
        self.n_features_ = X.shape[1]
        self.children_left_ = []
        self.children_right_ = []
        self.feature_ = []
        self.threshold_ = []
        self.value_ = []
        self.n_node_samples_ = []

        # Iterative construction with an explicit stack of (indices, depth).
        stack: list[tuple[np.ndarray, int, int, bool]] = []
        root = self._new_node(y, np.arange(len(y)))
        stack.append((np.arange(len(y)), 0, root, True))
        while stack:
            idx, depth, node_id, _ = stack.pop()
            split = self._find_split(X, y, idx, depth)
            if split is None:
                continue
            feature, threshold, left_idx, right_idx = split
            self.feature_[node_id] = feature
            self.threshold_[node_id] = threshold
            left_id = self._new_node(y, left_idx)
            right_id = self._new_node(y, right_idx)
            self.children_left_[node_id] = left_id
            self.children_right_[node_id] = right_id
            stack.append((left_idx, depth + 1, left_id, True))
            stack.append((right_idx, depth + 1, right_id, False))
        self._finalize()
        return self

    def _new_node(self, y: np.ndarray, idx: np.ndarray) -> int:
        node_id = len(self.value_)
        self.children_left_.append(_LEAF)
        self.children_right_.append(_LEAF)
        self.feature_.append(_LEAF)
        self.threshold_.append(np.nan)
        self.value_.append(float(y[idx].mean()))
        self.n_node_samples_.append(len(idx))
        return node_id

    def _n_candidate_features(self) -> int:
        assert self.n_features_ is not None
        if self.max_features is None:
            return self.n_features_
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(self.n_features_)))
        return max(1, min(int(self.max_features), self.n_features_))

    def _find_split(
        self, X: np.ndarray, y: np.ndarray, idx: np.ndarray, depth: int
    ) -> tuple[int, float, np.ndarray, np.ndarray] | None:
        n = len(idx)
        if n < self.min_samples_split or n < 2 * self.min_samples_leaf:
            return None
        if self.max_depth is not None and depth >= self.max_depth:
            return None
        y_node = y[idx]
        if np.ptp(y_node) == 0.0:
            return None

        k = self._n_candidate_features()
        assert self.n_features_ is not None
        features = (
            np.arange(self.n_features_)
            if k >= self.n_features_
            else self._rng.choice(self.n_features_, size=k, replace=False)
        )

        best: tuple[float, int, float] | None = None  # (sse, feature, threshold)
        for feature in features:
            x = X[idx, feature]
            lo, hi = x.min(), x.max()
            if lo == hi:
                continue
            if self.splitter == "random":
                candidate = self._score_threshold(
                    x, y_node, float(self._rng.uniform(lo, hi))
                )
                if candidate is not None and (best is None or candidate < best[0]):
                    best = (candidate, int(feature), float(self._last_threshold))
            else:
                result = self._best_threshold(x, y_node)
                if result is not None:
                    sse, threshold = result
                    if best is None or sse < best[0]:
                        best = (sse, int(feature), threshold)
        if best is None:
            return None
        _, feature, threshold = best
        mask = X[idx, feature] <= threshold
        left_idx = idx[mask]
        right_idx = idx[~mask]
        if len(left_idx) < self.min_samples_leaf or len(right_idx) < self.min_samples_leaf:
            return None
        return feature, threshold, left_idx, right_idx

    def _best_threshold(self, x: np.ndarray, y: np.ndarray) -> tuple[float, float] | None:
        """Exhaustive CART scan: minimal total SSE over all thresholds."""
        order = np.argsort(x, kind="stable")
        xs = x[order]
        ys = y[order]
        n = len(xs)
        csum = np.cumsum(ys)
        csum2 = np.cumsum(ys * ys)
        total_sum = csum[-1]
        total_sq = csum2[-1]

        # Valid split positions: after index i (1-based count i+1 on left),
        # honouring min_samples_leaf and distinct x values.
        counts = np.arange(1, n)
        left_sum = csum[:-1]
        left_sq = csum2[:-1]
        right_sum = total_sum - left_sum
        right_sq = total_sq - left_sq
        right_counts = n - counts
        sse = (
            left_sq
            - left_sum**2 / counts
            + right_sq
            - right_sum**2 / right_counts
        )
        valid = (xs[1:] != xs[:-1]) & (counts >= self.min_samples_leaf) & (
            right_counts >= self.min_samples_leaf
        )
        if not valid.any():
            return None
        sse = np.where(valid, sse, np.inf)
        pos = int(np.argmin(sse))
        threshold = float(0.5 * (xs[pos] + xs[pos + 1]))
        return float(sse[pos]), threshold

    _last_threshold: float = np.nan

    def _score_threshold(self, x: np.ndarray, y: np.ndarray, threshold: float) -> float | None:
        """SSE of one explicit threshold (Extra-Trees random split)."""
        mask = x <= threshold
        n_left = int(mask.sum())
        if n_left < self.min_samples_leaf or len(x) - n_left < self.min_samples_leaf:
            return None
        left = y[mask]
        right = y[~mask]
        sse = float(((left - left.mean()) ** 2).sum() + ((right - right.mean()) ** 2).sum())
        self._last_threshold = threshold
        return sse

    def _finalize(self) -> None:
        self._cl = np.asarray(self.children_left_, dtype=np.int64)
        self._cr = np.asarray(self.children_right_, dtype=np.int64)
        self._feat = np.asarray(self.feature_, dtype=np.int64)
        self._thr = np.asarray(self.threshold_, dtype=np.float64)
        self._val = np.asarray(self.value_, dtype=np.float64)
        self._nsamp = np.asarray(self.n_node_samples_, dtype=np.float64)

    # -- incremental updates -------------------------------------------------------

    supports_partial_fit = True

    def partial_fit(self, X: Any, y: Any) -> "DecisionTreeRegressor":
        """Online insertion: route fresh samples to leaves, update leaf means.

        The tree *structure* is frozen — each new sample only shifts the
        running mean of the leaf it lands in, which is the cheap half of a
        Mondrian-style online tree. Structural growth is deferred to the next
        full refit (the optimizer forces one once the dataset has doubled).

        Publish-safety: the updated value array is built on a copy and then
        swapped in with a single attribute assignment, so a concurrent
        ``predict`` sees either the old or the new leaf values, never a torn
        mix of both.
        """
        X, y = check_fit_inputs(X, y)
        if not self.value_:
            raise ValidationError("DecisionTreeRegressor is not fitted yet")
        X = self._check_predict_input(X)
        leaves = self.apply(X)
        new_val = self._val.copy()
        counts = self._nsamp
        for leaf, value in zip(leaves, y):
            n = counts[leaf]
            new_val[leaf] += (value - new_val[leaf]) / (n + 1.0)
            counts[leaf] = n + 1.0
        self._val = new_val  # atomic publish
        for leaf in np.unique(leaves):
            self.value_[int(leaf)] = float(new_val[leaf])
            self.n_node_samples_[int(leaf)] = int(counts[leaf])
        return self

    # -- inference ---------------------------------------------------------------

    def apply(self, X: Any) -> np.ndarray:
        """Leaf node index for each row of ``X``."""
        X = self._check_predict_input(X)
        node = np.zeros(len(X), dtype=np.int64)
        active = self._cl[node] != _LEAF
        while active.any():
            rows = np.nonzero(active)[0]
            nodes = node[rows]
            go_left = X[rows, self._feat[nodes]] <= self._thr[nodes]
            node[rows] = np.where(go_left, self._cl[nodes], self._cr[nodes])
            active = self._cl[node] != _LEAF
        return node

    def predict(
        self, X: Any, return_std: bool = False
    ) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
        leaves = self.apply(X)
        mean = self._val[leaves]
        if return_std:
            # A single tree has no ensemble spread; report zeros.
            return mean, np.zeros_like(mean)
        return mean

    @property
    def node_count(self) -> int:
        return len(self.value_)

    @property
    def depth(self) -> int:
        """Actual depth of the fitted tree."""
        depths = np.zeros(self.node_count, dtype=int)
        for node in range(self.node_count):
            left = self.children_left_[node]
            right = self.children_right_[node]
            for child in (left, right):
                if child != _LEAF:
                    depths[child] = depths[node] + 1
        return int(depths.max()) if self.node_count else 0

    def set_leaf_values(self, leaf_values: dict[int, float]) -> None:
        """Overwrite leaf predictions (gradient boosting leaf re-estimation)."""
        for leaf, value in leaf_values.items():
            if self.children_left_[leaf] != _LEAF:
                raise ValidationError(f"node {leaf} is not a leaf")
            self.value_[leaf] = float(value)
        self._finalize()

"""Polynomial (ridge) regression surrogate (Ostertagová 2012, paper's [29])."""

from __future__ import annotations

from itertools import combinations_with_replacement
from typing import Any

import numpy as np

from repro.errors import ValidationError
from repro.surrogate.base import SurrogateModel, check_fit_inputs

__all__ = ["PolynomialRegressor"]


class PolynomialRegressor(SurrogateModel):
    """Least-squares polynomial surface with L2 regularization.

    Expands inputs to all monomials up to ``degree`` and solves the ridge
    normal equations. ``predict(return_std=True)`` reports the training
    residual standard deviation — a constant (aleatoric-style) estimate,
    honest about this model family having no pointwise epistemic variance.
    """

    name = "poly"

    def __init__(self, degree: int = 2, *, alpha: float = 1e-8) -> None:
        super().__init__()
        if degree < 1:
            raise ValidationError("degree must be >= 1")
        if alpha < 0:
            raise ValidationError("alpha must be >= 0")
        self.degree = int(degree)
        self.alpha = float(alpha)
        self.coef_: np.ndarray | None = None
        self.residual_std_: float = 0.0
        self._powers: list[tuple[int, ...]] = []
        self._x_mean: np.ndarray | None = None
        self._x_scale: np.ndarray | None = None

    def _expand(self, X: np.ndarray) -> np.ndarray:
        n, d = X.shape
        columns = [np.ones(n)]
        for deg in range(1, self.degree + 1):
            for combo in combinations_with_replacement(range(d), deg):
                col = np.ones(n)
                for j in combo:
                    col = col * X[:, j]
                columns.append(col)
        return np.stack(columns, axis=1)

    def fit(self, X: Any, y: Any) -> "PolynomialRegressor":
        X, y = check_fit_inputs(X, y)
        self.n_features_ = X.shape[1]
        self._x_mean = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0] = 1.0
        self._x_scale = scale
        Phi = self._expand((X - self._x_mean) / self._x_scale)
        A = Phi.T @ Phi + self.alpha * np.eye(Phi.shape[1])
        b = Phi.T @ y
        self.coef_ = np.linalg.solve(A, b)
        residuals = y - Phi @ self.coef_
        dof = max(1, len(y) - Phi.shape[1])
        self.residual_std_ = float(np.sqrt((residuals @ residuals) / dof))
        return self

    def predict(
        self, X: Any, return_std: bool = False
    ) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
        X = self._check_predict_input(X)
        if self.coef_ is None:
            raise ValidationError("PolynomialRegressor is not fitted yet")
        assert self._x_mean is not None and self._x_scale is not None
        Phi = self._expand((X - self._x_mean) / self._x_scale)
        mean = Phi @ self.coef_
        if return_std:
            return mean, np.full(len(mean), max(self.residual_std_, 1e-9))
        return mean

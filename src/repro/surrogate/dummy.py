"""Constant-prediction baseline surrogate (sanity floor for ablations)."""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import ValidationError
from repro.surrogate.base import SurrogateModel, check_fit_inputs

__all__ = ["DummyRegressor"]


class DummyRegressor(SurrogateModel):
    """Predicts the training mean with the training std as uncertainty."""

    name = "dummy"

    def __init__(self) -> None:
        super().__init__()
        self.mean_: float = 0.0
        self.std_: float = 0.0

    def fit(self, X: Any, y: Any) -> "DummyRegressor":
        X, y = check_fit_inputs(X, y)
        self.n_features_ = X.shape[1]
        self.mean_ = float(y.mean())
        self.std_ = float(y.std())
        return self

    def predict(
        self, X: Any, return_std: bool = False
    ) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
        X = self._check_predict_input(X)
        if self.n_features_ is None:
            raise ValidationError("DummyRegressor is not fitted yet")
        mean = np.full(len(X), self.mean_)
        if return_std:
            return mean, np.full(len(X), max(self.std_, 1e-9))
        return mean

"""k-nearest-neighbours regression surrogate (cheap non-parametric option)."""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import ValidationError
from repro.surrogate.base import SurrogateModel, check_fit_inputs

__all__ = ["KNeighborsRegressor"]


class KNeighborsRegressor(SurrogateModel):
    """Inverse-distance-weighted kNN with neighbour-spread uncertainty."""

    name = "knn"

    def __init__(self, n_neighbors: int = 5, *, weights: str = "distance") -> None:
        super().__init__()
        if n_neighbors < 1:
            raise ValidationError("n_neighbors must be >= 1")
        if weights not in ("uniform", "distance"):
            raise ValidationError(f"unknown weights {weights!r}")
        self.n_neighbors = int(n_neighbors)
        self.weights = weights
        self._X: np.ndarray | None = None
        self._y: np.ndarray | None = None
        self._scale: np.ndarray | None = None

    def fit(self, X: Any, y: Any) -> "KNeighborsRegressor":
        X, y = check_fit_inputs(X, y)
        self.n_features_ = X.shape[1]
        scale = X.std(axis=0)
        scale[scale == 0] = 1.0
        self._scale = scale
        self._X = X / scale
        self._y = y
        return self

    def predict(
        self, X: Any, return_std: bool = False
    ) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
        X = self._check_predict_input(X)
        if self._X is None or self._y is None or self._scale is None:
            raise ValidationError("KNeighborsRegressor is not fitted yet")
        Xs = X / self._scale
        k = min(self.n_neighbors, len(self._y))
        mean = np.empty(len(Xs))
        std = np.empty(len(Xs))
        for i, row in enumerate(Xs):
            d = np.sqrt(np.sum((self._X - row) ** 2, axis=1))
            nearest = np.argpartition(d, k - 1)[:k]
            ny = self._y[nearest]
            if self.weights == "distance":
                w = 1.0 / np.maximum(d[nearest], 1e-12)
                w /= w.sum()
            else:
                w = np.full(k, 1.0 / k)
            mean[i] = float(w @ ny)
            std[i] = float(np.sqrt(np.maximum(w @ (ny - mean[i]) ** 2, 0.0)))
        if return_std:
            return mean, np.maximum(std, 1e-9)
        return mean

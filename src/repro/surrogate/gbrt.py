"""Gradient Boosting Regression Trees (Friedman 2001, the paper's [27]).

Two estimators:

- :class:`GradientBoostingRegressor` — stage-wise boosting of shallow CART
  trees with least-squares or quantile (pinball) loss. Quantile loss uses
  the standard leaf re-estimation: each stage's tree is fitted to the loss
  gradient, then its leaf values are replaced by the residual quantile of
  the samples falling in that leaf.
- :class:`GBRTQuantile` — the scikit-optimize-style wrapper bundling the
  0.16 / 0.50 / 0.84 quantile models so ``predict(return_std=True)`` yields
  a mean and a ±1σ-equivalent spread for acquisition functions.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import ValidationError
from repro.surrogate.base import SurrogateModel, check_fit_inputs
from repro.surrogate.tree import DecisionTreeRegressor

__all__ = ["GradientBoostingRegressor", "GBRTQuantile"]


class GradientBoostingRegressor(SurrogateModel):
    """Stage-wise additive model of shallow regression trees."""

    name = "gbrt-single"

    def __init__(
        self,
        n_estimators: int = 100,
        *,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        min_samples_leaf: int = 3,
        subsample: float = 1.0,
        loss: str = "ls",
        quantile: float = 0.5,
        random_state: int | None = None,
    ) -> None:
        super().__init__()
        if n_estimators < 1:
            raise ValidationError("n_estimators must be >= 1")
        if not 0 < learning_rate <= 1:
            raise ValidationError("learning_rate must be in (0, 1]")
        if not 0 < subsample <= 1:
            raise ValidationError("subsample must be in (0, 1]")
        if loss not in ("ls", "quantile"):
            raise ValidationError(f"unknown loss {loss!r}")
        if not 0 < quantile < 1:
            raise ValidationError("quantile must be in (0, 1)")
        self.n_estimators = int(n_estimators)
        self.learning_rate = float(learning_rate)
        self.max_depth = int(max_depth)
        self.min_samples_leaf = int(min_samples_leaf)
        self.subsample = float(subsample)
        self.loss = loss
        self.quantile = float(quantile)
        self.random_state = random_state
        self.estimators_: list[DecisionTreeRegressor] = []
        self.init_: float = 0.0

    # -- loss helpers --------------------------------------------------------------

    def _initial_prediction(self, y: np.ndarray) -> float:
        if self.loss == "ls":
            return float(y.mean())
        return float(np.quantile(y, self.quantile))

    def _negative_gradient(self, y: np.ndarray, pred: np.ndarray) -> np.ndarray:
        if self.loss == "ls":
            return y - pred
        return np.where(y > pred, self.quantile, self.quantile - 1.0)

    def _leaf_update(self, residual: np.ndarray) -> float:
        if self.loss == "ls":
            return float(residual.mean())
        return float(np.quantile(residual, self.quantile))

    # -- fitting ---------------------------------------------------------------------

    def fit(self, X: Any, y: Any) -> "GradientBoostingRegressor":
        X, y = check_fit_inputs(X, y)
        self.n_features_ = X.shape[1]
        rng = np.random.default_rng(self.random_state)
        self.init_ = self._initial_prediction(y)
        pred = np.full(len(y), self.init_)
        self.estimators_ = []
        self._boost(X, y, pred, rng, self.n_estimators)
        # Retained for incremental stage appends (partial_fit).
        self._X, self._y, self._rng = X, y, rng
        return self

    def _boost(
        self,
        X: np.ndarray,
        y: np.ndarray,
        pred: np.ndarray,
        rng: np.random.Generator,
        n_stages: int,
    ) -> None:
        """Append ``n_stages`` boosting stages to the current ensemble."""
        n = len(y)
        for _ in range(n_stages):
            grad = self._negative_gradient(y, pred)
            if self.subsample < 1.0:
                idx = rng.choice(n, size=max(2, int(self.subsample * n)), replace=False)
            else:
                idx = np.arange(n)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                random_state=np.random.default_rng(rng.integers(0, 2**63)),
            )
            tree.fit(X[idx], grad[idx])
            # Leaf re-estimation on the residuals of the FULL training set.
            leaves = tree.apply(X)
            residual = y - pred
            updates: dict[int, float] = {}
            for leaf in np.unique(leaves):
                updates[int(leaf)] = self._leaf_update(residual[leaves == leaf])
            tree.set_leaf_values(updates)
            pred = pred + self.learning_rate * tree.predict(X)
            self.estimators_.append(tree)

    # -- incremental updates -------------------------------------------------------

    supports_partial_fit = True

    #: soft cap on incremental growth: once the ensemble holds this many
    #: times ``n_estimators`` stages, ``partial_fit`` refits from scratch.
    _MAX_STAGE_FACTOR = 2

    def partial_fit(self, X: Any, y: Any) -> "GradientBoostingRegressor":
        """Fold fresh observations in by appending boosting stages.

        Boosting is naturally incremental: a new stage fitted on the
        residuals of the *accumulated* dataset updates the model for the
        fresh observations at O(n) cost instead of the O(n_estimators · n
        log n) of a from-scratch refit. Growth is bounded — once the
        ensemble doubles its configured stage budget the whole model is
        refitted, which also restores the fixed-size shape. Stages are
        appended one at a time and each tree is fully built before it
        becomes reachable, so concurrent predicts see a consistent prefix
        of the ensemble.
        """
        X, y = check_fit_inputs(X, y)
        if not self.estimators_:
            return self.fit(X, y)
        X = self._check_predict_input(X)
        X_all = np.vstack([self._X, X])
        y_all = np.concatenate([self._y, y])
        if len(self.estimators_) >= self.n_estimators * self._MAX_STAGE_FACTOR:
            return self.fit(X_all, y_all)
        self._X, self._y = X_all, y_all
        pred = np.asarray(self.predict(X_all))
        self._boost(X_all, y_all, pred, self._rng, max(1, self.n_estimators // 25))
        return self

    def predict(
        self, X: Any, return_std: bool = False
    ) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
        X = self._check_predict_input(X)
        if not self.estimators_:
            raise ValidationError("GradientBoostingRegressor is not fitted yet")
        pred = np.full(len(X), self.init_)
        for tree in self.estimators_:
            pred += self.learning_rate * tree.predict(X)
        if return_std:
            return pred, np.zeros_like(pred)
        return pred


class GBRTQuantile(SurrogateModel):
    """Three quantile GBRT models giving mean ± spread (skopt's GBRT mode)."""

    name = "GBRT"

    def __init__(
        self,
        n_estimators: int = 100,
        *,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        random_state: int | None = None,
        quantiles: tuple[float, float, float] = (0.16, 0.5, 0.84),
    ) -> None:
        super().__init__()
        lo, mid, hi = quantiles
        if not 0 < lo < mid < hi < 1:
            raise ValidationError("quantiles must be increasing within (0, 1)")
        self.quantiles = quantiles
        self._models = [
            GradientBoostingRegressor(
                n_estimators,
                learning_rate=learning_rate,
                max_depth=max_depth,
                loss="quantile",
                quantile=q,
                random_state=None if random_state is None else random_state + i,
            )
            for i, q in enumerate(quantiles)
        ]

    def fit(self, X: Any, y: Any) -> "GBRTQuantile":
        X, y = check_fit_inputs(X, y)
        self.n_features_ = X.shape[1]
        for model in self._models:
            model.fit(X, y)
        return self

    supports_partial_fit = True

    def partial_fit(self, X: Any, y: Any) -> "GBRTQuantile":
        """Incremental stage appends across the three quantile models."""
        X, y = check_fit_inputs(X, y)
        if self.n_features_ is None:
            return self.fit(X, y)
        for model in self._models:
            model.partial_fit(X, y)
        return self

    def predict(
        self, X: Any, return_std: bool = False
    ) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
        X = self._check_predict_input(X)
        lo = self._models[0].predict(X)
        mid = self._models[1].predict(X)
        hi = self._models[2].predict(X)
        if return_std:
            # (q84 - q16) / 2 ≈ one standard deviation for a Gaussian.
            std = np.maximum((hi - lo) / 2.0, 1e-9)
            return mid, std
        return mid

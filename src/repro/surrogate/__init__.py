"""Surrogate regression models, written from scratch on numpy.

The methodology (paper Sec. III-B1) lists the surrogate families usable in
the optimization cycle: Gaussian processes (Kriging), decision trees, random
forests, extremely randomized trees (the paper's experiments use *Extra
Trees*), gradient boosting regression trees, and polynomial regression.
This package implements each of them with the two-method contract the
Bayesian optimizer needs::

    model.fit(X, y)
    mean, std = model.predict(X, return_std=True)

``std`` is the model's epistemic uncertainty estimate — ensembles use the
spread across trees, the GP uses the posterior variance, simple models fall
back to residual variance.
"""

from repro.surrogate.base import SurrogateModel, get_surrogate
from repro.surrogate.tree import DecisionTreeRegressor
from repro.surrogate.forest import ExtraTreesRegressor, RandomForestRegressor
from repro.surrogate.gbrt import GradientBoostingRegressor, GBRTQuantile
from repro.surrogate.gp import GaussianProcessRegressor, Matern, RBF
from repro.surrogate.polynomial import PolynomialRegressor
from repro.surrogate.knn import KNeighborsRegressor
from repro.surrogate.dummy import DummyRegressor

__all__ = [
    "SurrogateModel",
    "get_surrogate",
    "DecisionTreeRegressor",
    "RandomForestRegressor",
    "ExtraTreesRegressor",
    "GradientBoostingRegressor",
    "GBRTQuantile",
    "GaussianProcessRegressor",
    "Matern",
    "RBF",
    "PolynomialRegressor",
    "KNeighborsRegressor",
    "DummyRegressor",
]

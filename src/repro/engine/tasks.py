"""Identification pipeline tasks (paper Table I)."""

from __future__ import annotations

from enum import Enum

__all__ = ["TaskType", "PIPELINE_ORDER", "WAIT_TASKS", "SERVICE_TASKS"]


class TaskType(str, Enum):
    """The nine identification processing steps, in execution order.

    Names follow paper Table I. ``WAIT_*`` tasks measure queueing for a
    pool thread; the rest are service tasks on CPU or GPU.
    """

    PRE_PROCESS = "pre-process"
    WAIT_DOWNLOAD = "wait-download"
    DOWNLOAD = "download"
    WAIT_EXTRACT = "wait-extract"
    EXTRACT = "extract"
    PROCESS = "process"
    WAIT_SIMSEARCH = "wait-simsearch"
    SIMSEARCH = "simsearch"
    POST_PROCESS = "post-process"

    def __str__(self) -> str:
        return self.value


#: Execution order of the pipeline (paper Table I).
PIPELINE_ORDER: tuple[TaskType, ...] = (
    TaskType.PRE_PROCESS,
    TaskType.WAIT_DOWNLOAD,
    TaskType.DOWNLOAD,
    TaskType.WAIT_EXTRACT,
    TaskType.EXTRACT,
    TaskType.PROCESS,
    TaskType.WAIT_SIMSEARCH,
    TaskType.SIMSEARCH,
    TaskType.POST_PROCESS,
)

WAIT_TASKS: frozenset[TaskType] = frozenset(
    {TaskType.WAIT_DOWNLOAD, TaskType.WAIT_EXTRACT, TaskType.WAIT_SIMSEARCH}
)

SERVICE_TASKS: tuple[TaskType, ...] = tuple(t for t in PIPELINE_ORDER if t not in WAIT_TASKS)

"""Engine configuration: thread pools, workload, and model parameters."""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass, replace
from typing import Any, Mapping

from repro.engine.schedule import ArrivalSchedule
from repro.errors import ValidationError

__all__ = [
    "ThreadPoolConfig",
    "WorkloadSpec",
    "EngineModelParams",
    "BASELINE_CONFIG",
    "PAPER_SPACE_BOUNDS",
]


@dataclass(frozen=True, order=True)
class ThreadPoolConfig:
    """Sizes of the four Pl@ntNet thread pools (the optimization variables).

    The paper's search space (Eq. 2) bounds http/download/simsearch to
    [20, 60] and extract to [3, 9]; :meth:`validate_paper_bounds` checks a
    configuration against those bounds without making them mandatory (the
    baseline itself is built with plain :meth:`__init__`).
    """

    http: int
    download: int
    extract: int
    simsearch: int

    def __post_init__(self) -> None:
        for name in ("http", "download", "extract", "simsearch"):
            value = getattr(self, name)
            if not isinstance(value, (int,)) or isinstance(value, bool):
                raise ValidationError(f"pool size {name} must be an int, got {value!r}")
            if value < 1:
                raise ValidationError(f"pool size {name} must be >= 1, got {value}")

    def validate_paper_bounds(self) -> "ThreadPoolConfig":
        """Raise unless within the paper's Eq. 2 bounds; returns self."""
        lo, hi = PAPER_SPACE_BOUNDS["http"]
        for name in ("http", "download", "simsearch"):
            v = getattr(self, name)
            lo, hi = PAPER_SPACE_BOUNDS[name]
            if not lo <= v <= hi:
                raise ValidationError(f"{name}={v} outside paper bounds [{lo}, {hi}]")
        lo, hi = PAPER_SPACE_BOUNDS["extract"]
        if not lo <= self.extract <= hi:
            raise ValidationError(f"extract={self.extract} outside paper bounds [{lo}, {hi}]")
        return self

    def replace(self, **changes: int) -> "ThreadPoolConfig":
        """Copy with some pools changed (used heavily by OAT analysis)."""
        return replace(self, **changes)

    def to_dict(self) -> dict[str, int]:
        return {
            "http": self.http,
            "download": self.download,
            "extract": self.extract,
            "simsearch": self.simsearch,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ThreadPoolConfig":
        try:
            return cls(
                http=int(data["http"]),
                download=int(data["download"]),
                extract=int(data["extract"]),
                simsearch=int(data["simsearch"]),
            )
        except KeyError as missing:
            raise ValidationError(f"thread pool config missing key {missing}") from None

    def __str__(self) -> str:
        return (
            f"(http={self.http}, download={self.download}, "
            f"extract={self.extract}, simsearch={self.simsearch})"
        )


#: The production configuration (paper Table II) used as the baseline.
BASELINE_CONFIG = ThreadPoolConfig(http=40, download=40, extract=7, simsearch=40)

#: The paper's Eq. 2 search-space bounds (inclusive).
PAPER_SPACE_BOUNDS: dict[str, tuple[int, int]] = {
    "http": (20, 60),
    "download": (20, 60),
    "simsearch": (20, 60),
    "extract": (3, 9),
}


@dataclass(frozen=True)
class WorkloadSpec:
    """The workload driving the engine. Three modes:

    - **closed loop** (the paper's protocol, default): a fixed population
      of ``simultaneous_requests`` clients, each resubmitting immediately
      upon response;
    - **scheduled closed loop**: ``population_schedule`` gives piecewise-
      constant populations as ``((t0, n0), (t1, n1), ...)`` — E2Clab's
      "transparent scaling of the scenario" / experiment-variation
      feature. ``simultaneous_requests`` must equal the schedule maximum;
    - **open loop**: ``arrival_rate`` requests/s arrive as a Poisson
      process, each client submits once (production-like traffic instead
      of a saturation test);
    - **scheduled open loop**: ``arrival_schedule`` drives the same
      Poisson source with a time-varying rate — piecewise/diurnal curves,
      flash-crowd ramps, or trace replay (see
      :class:`~repro.engine.schedule.ArrivalSchedule`). A schedule with a
      single constant segment is byte-identical to plain
      ``arrival_rate``.

    Defaults follow the paper's measurement protocol: 23-minute runs
    (1380 s), metrics sampled every 10 s. ``warmup`` seconds are excluded
    from aggregates so ramp-in does not bias the statistics (the paper's
    long runs make its warm-up share negligible; ours is explicit).
    """

    simultaneous_requests: int = 80
    duration: float = 1380.0
    sample_interval: float = 10.0
    warmup: float = 60.0
    arrival_rate: float | None = None
    arrival_schedule: ArrivalSchedule | None = None
    population_schedule: tuple[tuple[float, int], ...] | None = None

    def __post_init__(self) -> None:
        if self.simultaneous_requests < 1:
            raise ValidationError("need at least one client")
        if self.duration <= 0:
            raise ValidationError("duration must be positive")
        if self.sample_interval <= 0:
            raise ValidationError("sample_interval must be positive")
        if not 0 <= self.warmup < self.duration:
            raise ValidationError("warmup must be in [0, duration)")
        if self.arrival_rate is not None:
            if not math.isfinite(self.arrival_rate):
                raise ValidationError(
                    f"arrival_rate must be finite, got {self.arrival_rate}"
                )
            if self.arrival_rate <= 0:
                raise ValidationError("arrival_rate must be positive")
            if self.arrival_schedule is not None:
                raise ValidationError("arrival_rate and arrival_schedule are exclusive")
            if self.population_schedule is not None:
                raise ValidationError("arrival_rate and population_schedule are exclusive")
        if self.arrival_schedule is not None:
            if not isinstance(self.arrival_schedule, ArrivalSchedule):
                raise ValidationError(
                    "arrival_schedule must be an ArrivalSchedule, "
                    f"got {self.arrival_schedule!r}"
                )
            if self.population_schedule is not None:
                raise ValidationError(
                    "arrival_schedule and population_schedule are exclusive"
                )
        if self.population_schedule is not None:
            schedule = self.population_schedule
            if not schedule:
                raise ValidationError("population_schedule must not be empty")
            times = [t for t, _ in schedule]
            if times != sorted(times) or len(set(times)) != len(times):
                raise ValidationError("schedule times must be strictly increasing")
            if times[0] != 0.0:
                raise ValidationError("schedule must start at t=0")
            populations = [n for _, n in schedule]
            if any(n < 0 for n in populations):
                raise ValidationError("schedule populations must be >= 0")
            if max(populations) != self.simultaneous_requests:
                raise ValidationError(
                    "simultaneous_requests must equal the schedule maximum "
                    f"({max(populations)}), got {self.simultaneous_requests}"
                )
            object.__setattr__(self, "_schedule_times", tuple(times))

    @property
    def mode(self) -> str:
        """``closed`` | ``scheduled`` | ``open``."""
        if self.arrival_rate is not None or self.arrival_schedule is not None:
            return "open"
        if self.population_schedule is not None:
            return "scheduled"
        return "closed"

    def population_at(self, time: float) -> int:
        """Target closed-loop population at ``time`` (scheduled mode)."""
        if self.population_schedule is None:
            return self.simultaneous_requests
        index = bisect_right(self._schedule_times, time) - 1  # type: ignore[attr-defined]
        return self.population_schedule[max(0, index)][1]

    def arrival_rate_at(self, time: float) -> float:
        """Open-loop arrival rate in effect at ``time`` (0 when closed)."""
        if self.arrival_rate is not None:
            return self.arrival_rate
        if self.arrival_schedule is not None and not self.arrival_schedule.is_trace:
            return self.arrival_schedule.rate_at(time)
        return 0.0

    @property
    def samples_per_run(self) -> int:
        """Number of metric samples a full run produces (paper: 138)."""
        return int((self.duration - self.warmup) // self.sample_interval)


@dataclass(frozen=True)
class EngineModelParams:
    """Free constants of the engine performance model.

    Calibrated against the paper's measurements (see
    :mod:`repro.engine.calibration` for targets and rationale). Times are
    seconds; CPU weights are cores consumed while a task of that type is
    active.
    """

    #: CPU cores available to the engine container (paper Sec. II-A: 40).
    cpu_cores: float = 40.0

    # -- base (uncontended) service times -------------------------------------
    t_preprocess: float = 0.012
    t_download_cpu: float = 0.015
    #: preprocessed image payload downloaded by the engine (bytes).
    image_bytes: float = 120e3
    #: effective engine-side download bandwidth per active download (bytes/s).
    download_bandwidth: float = 12e6
    #: single-stream GPU inference latency.
    t_extract_gpu: float = 0.008
    #: relative per-inference slowdown per extra concurrent GPU stream.
    gpu_concurrency_penalty: float = 0.1492
    #: CPU-side share of the extract task (tensor prep, result decode).
    t_extract_cpu: float = 0.1616
    t_process: float = 0.020
    #: base similarity-search time over the botanical database.
    t_simsearch: float = 0.9846
    t_postprocess: float = 0.010

    # -- CPU demand weights (cores consumed while active, uncontended) ----------
    w_http_misc: float = 1.0
    w_download: float = 0.25
    #: cores a GPU-feeding thread consumes while its inference runs (busy
    #: polling / data staging — paced by the GPU, not stretched by CPU
    #: contention).
    w_extract_spin: float = 1.0
    #: cores the CPU-side phase of extract consumes uncontended.
    w_extract: float = 1.0
    w_simsearch: float = 0.6322
    #: standing CPU cost per extract pool thread (pinned polling threads of
    #: the inference runtime exist whether or not they hold work) — this is
    #: what makes oversized extract pools (8–9) drive the node to 100 % CPU.
    extract_standby_cores: float = 1.7463
    #: engine runtime background load (GC, serving, monitoring).
    background_cores: float = 0.2557

    #: CPU slowdown as a function of utilization ρ = draw / cores:
    #: ``I(ρ) = 1 + scale · ρ**sharpness / (1 - min(ρ, rho_max))``.
    #: ≈ 1 until high load, then rises sharply toward saturation — the
    #: degradation the paper observes when CPU usage pins at 100 % for
    #: extract pools of 8–9 threads.
    contention_scale: float = 0.002
    contention_sharpness: float = 3.976
    #: ρ clamp bounding the maximum slowdown (keeps the closed loop stable).
    contention_rho_max: float = 0.9944
    #: defensive post-saturation exponent (ρ > 1 transients only).
    contention_kappa: float = 1.5

    #: lognormal coefficient of variation applied to every service time.
    service_cv: float = 0.12

    # -- GPU model -------------------------------------------------------------
    #: GPUs used by the engine node (chifflot carries 2 V100s; production
    #: Pl@ntNet pins one — re-optimize when changing this, as the paper
    #: notes for any hardware change).
    gpus_per_node: int = 1
    gpu_total_memory_gb: float = 32.0
    #: memory model: base + linear*E + quad*E**2, calibrated so E=7 → ~10 GB
    #: and E=6 → ~7 GB (the paper's "30% less GPU memory" claim).
    gpu_mem_base_gb: float = 0.0
    gpu_mem_linear_gb: float = -0.405
    gpu_mem_quad_gb: float = 0.2619
    #: GPU utilization per active inference stream (paper: 35–60 % overall).
    gpu_util_per_stream: float = 0.085
    gpu_idle_power_w: float = 38.0
    gpu_power_per_util_w: float = 75.0

    # -- node power model (for energy objectives, paper Sec. II-B) --------------
    #: node power draw at idle and at full CPU load (chifflot-class server).
    node_idle_power_w: float = 120.0
    node_max_power_w: float = 420.0

    # -- system memory model (engine container, GB) ----------------------------
    sys_mem_base_gb: float = 6.0
    sys_mem_per_extract_gb: float = 0.9
    sys_mem_per_thread_gb: float = 0.02

    def __post_init__(self) -> None:
        for name in (
            "cpu_cores",
            "t_preprocess",
            "t_download_cpu",
            "image_bytes",
            "download_bandwidth",
            "t_extract_gpu",
            "t_extract_cpu",
            "t_process",
            "t_simsearch",
            "t_postprocess",
        ):
            if getattr(self, name) <= 0:
                raise ValidationError(f"{name} must be positive")
        if self.gpu_concurrency_penalty < 0:
            raise ValidationError("gpu_concurrency_penalty must be >= 0")
        if self.gpus_per_node < 1:
            raise ValidationError("gpus_per_node must be >= 1")
        if self.service_cv < 0:
            raise ValidationError("service_cv must be >= 0")
        if self.contention_scale < 0:
            raise ValidationError("contention_scale must be >= 0")
        if self.contention_sharpness < 0:
            raise ValidationError("contention_sharpness must be >= 0")
        if not 0 < self.contention_rho_max < 1:
            raise ValidationError("contention_rho_max must be in (0, 1)")
        if self.contention_kappa < 1:
            raise ValidationError("contention_kappa must be >= 1")

    @property
    def t_download(self) -> float:
        """Total uncontended download time (network + CPU share)."""
        return self.image_bytes / self.download_bandwidth + self.t_download_cpu

    def to_dict(self) -> dict[str, float]:
        from dataclasses import asdict

        return asdict(self)

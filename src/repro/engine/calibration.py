"""Calibration of the engine model against the paper's measurements.

The engine model (:class:`repro.engine.config.EngineModelParams`) has free
constants that cannot be derived from the paper alone (the real Pl@ntNet
service times are not published). They were fitted offline by minimizing a
weighted least-squares loss over the *calibration targets* below, evaluated
with the analytic model and validated with the DES. The fitted values are
the dataclass defaults.

This module records the targets (so the fit is reproducible and auditable)
and provides :func:`calibration_report` to re-measure them with either model.

What was fitted and why
-----------------------
- ``t_simsearch``, ``t_extract_*``, ``gpu_concurrency_penalty`` — set the
  absolute response-time scale and the extract-pool capacity curve.
- ``w_simsearch``, ``extract_standby_cores``, ``background_cores`` — set
  where CPU saturation occurs as pools grow (the Fig. 9 mechanism).
- ``contention_scale`` / ``contention_sharpness`` / ``contention_rho_max``
  — shape of the CPU slowdown knee.

``extract_standby_cores`` deserves a note: the fit assigns a substantial
standing CPU cost (~1.75 cores) per extract pool thread. This plays the
role of the paper's observation that growing the extract pool alone drives
the node to 100 % CPU (Fig. 9c) — in the real system that cost is the
inference runtime's pinned worker/loader threads per stream.

Known residuals (also recorded in EXPERIMENTS.md)
--------------------------------------------------
- The simsearch OAT (paper Fig. 10a) shows a ~4 % dip at 55 threads that
  the model renders as essentially flat; the paper's own Table IV keeps
  simsearch at 53, suggesting that dip sits within run-to-run variance.
- The paper's Fig. 9a reports an 8.5 % gain for extract=6 over extract=7
  while its Table IV reports 0.3 % for the same change; the model lands
  between (≈ 0.5–2 %), preserving the ordering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Literal

from repro.engine.analytic import AnalyticEngineModel
from repro.engine.config import BASELINE_CONFIG, EngineModelParams, ThreadPoolConfig
from repro.engine.engine import simulate_engine

__all__ = [
    "CalibrationTarget",
    "CALIBRATION_TARGETS",
    "PRELIMINARY_OPTIMUM",
    "REFINED_OPTIMUM",
    "calibration_report",
]

#: Table III / IV configurations.
PRELIMINARY_OPTIMUM = ThreadPoolConfig(http=54, download=54, extract=7, simsearch=53)
REFINED_OPTIMUM = ThreadPoolConfig(http=54, download=54, extract=6, simsearch=53)


@dataclass(frozen=True)
class CalibrationTarget:
    """One paper measurement the model was fitted against."""

    name: str
    config: ThreadPoolConfig
    simultaneous_requests: int
    paper_value: float
    source: str
    #: relative tolerance used to judge the fit in tests/reports.
    rel_tol: float = 0.10


CALIBRATION_TARGETS: tuple[CalibrationTarget, ...] = (
    CalibrationTarget(
        "baseline@80", BASELINE_CONFIG, 80, 2.657, "Table III / IV", 0.08
    ),
    CalibrationTarget(
        "preliminary@80", PRELIMINARY_OPTIMUM, 80, 2.484, "Table III / IV", 0.08
    ),
    CalibrationTarget(
        "refined@80", REFINED_OPTIMUM, 80, 2.476, "Table IV", 0.08
    ),
    CalibrationTarget(
        "baseline@120", BASELINE_CONFIG, 120, 3.86, "Fig. 3 (3.86 ± 0.13)", 0.08
    ),
    CalibrationTarget(
        "preliminary@120", PRELIMINARY_OPTIMUM, 120, 3.775, "Fig. 8 (−2.2 %)", 0.10
    ),
    CalibrationTarget(
        "baseline@140", BASELINE_CONFIG, 140, 4.90, "Fig. 8 (read off)", 0.15
    ),
    CalibrationTarget(
        "preliminary@140", PRELIMINARY_OPTIMUM, 140, 4.57, "Fig. 8 (−6.7 %)", 0.15
    ),
)


def calibration_report(
    params: EngineModelParams | None = None,
    *,
    evaluator: Literal["analytic", "des"] = "analytic",
    duration: float = 400.0,
    seed: int = 0,
) -> list[dict[str, float | str | bool]]:
    """Measure every calibration target and report model-vs-paper.

    Returns one record per target with the measured value, the paper value,
    the relative error and whether it is within the target's tolerance.
    """
    params = params or EngineModelParams()
    measure: Callable[[ThreadPoolConfig, int], float]
    if evaluator == "analytic":
        model = AnalyticEngineModel(params)
        measure = lambda cfg, r: model.evaluate(cfg, r).user_response_time  # noqa: E731
    elif evaluator == "des":
        measure = lambda cfg, r: simulate_engine(  # noqa: E731
            cfg, r, duration=duration, warmup=60.0, params=params, seed=seed
        ).user_response_time.mean
    else:
        raise ValueError(f"unknown evaluator {evaluator!r}")

    report: list[dict[str, float | str | bool]] = []
    for target in CALIBRATION_TARGETS:
        measured = measure(target.config, target.simultaneous_requests)
        rel_err = (measured - target.paper_value) / target.paper_value
        report.append(
            {
                "target": target.name,
                "source": target.source,
                "paper": target.paper_value,
                "measured": measured,
                "relative_error": rel_err,
                "within_tolerance": abs(rel_err) <= target.rel_tol,
            }
        )
    return report

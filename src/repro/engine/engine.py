"""Discrete-event simulation of the Pl@ntNet Identification Engine.

One :class:`IdentificationEngine` instance simulates one engine node serving
a closed-loop population of ``simultaneous_requests`` clients. Each request
executes the Table I pipeline::

    pre-process → [wait-download] → download → [wait-extract] → extract
    → process → [wait-simsearch] → simsearch → post-process

holding an HTTP pool thread end-to-end (the HTTP pool size is "the number of
simultaneous requests being processed", paper Table II) and claiming
Download / Extract / Simsearch threads for the bracketed stages.

Performance couplings modelled (see DESIGN.md §5 for calibration):

- **CPU contention** — CPU-bound stage times inflate when aggregate demand
  (weighted active tasks + background) exceeds the node's cores.
- **GPU concurrency** — per-inference latency grows with the number of
  concurrent extract streams; GPU memory is a function of the pool size.
- **Closed loop** — clients resubmit immediately on response, so response
  time and throughput obey Little's law (``R = X · T``) at steady state.
"""

from __future__ import annotations

import math
from typing import Any, Generator, Optional

from repro import simcore
from repro.engine.config import EngineModelParams, ThreadPoolConfig, WorkloadSpec
from repro.observability.metrics import get_registry
from repro.observability.trace import get_tracer
from repro.engine.cpumodel import CpuContentionModel
from repro.engine.gpu import GpuModel
from repro.engine.metrics import EngineRunResult, MetricsCollector, POOL_NAMES
from repro.engine.tasks import TaskType
from repro.testbed.network import NetworkPath
from repro.utils.seeding import derive_seed, spawn_rng

__all__ = ["IdentificationEngine", "simulate_engine", "EngineRunResult"]

#: inter-arrival gaps drawn per batch in open-loop mode — large enough to
#: amortize the numpy call, small enough that short runs don't over-draw.
_ARRIVAL_BATCH = 256


class IdentificationEngine:
    """Simulates one engine node under a closed-loop workload."""

    def __init__(
        self,
        config: ThreadPoolConfig,
        workload: WorkloadSpec | None = None,
        params: EngineModelParams | None = None,
        *,
        seed: int = 0,
        client_path: Optional[NetworkPath] = None,
        trace: bool = False,
        fast_lane: bool = True,
    ) -> None:
        self.config = config
        self.workload = workload or WorkloadSpec()
        self.params = params or EngineModelParams()
        self.seed = int(seed)
        self.client_path = client_path
        #: when True, plain-delay waits yield raw numbers so the simcore
        #: fast lane recycles the carrier event instead of allocating a
        #: Timeout per simulated stage. Both lanes push one NORMAL heap
        #: entry per wait, so the event ordering — and therefore every
        #: simulated metric — is identical either way.
        self._fast_lane = bool(fast_lane)

        self.env = simcore.Environment()
        self.cpu = CpuContentionModel(
            self.params.cpu_cores,
            base_load=(
                self.params.background_cores
                + self.params.extract_standby_cores * config.extract
            ),
            scale=self.params.contention_scale,
            sharpness=self.params.contention_sharpness,
            rho_max=self.params.contention_rho_max,
            kappa=self.params.contention_kappa,
        )
        self.gpu = GpuModel(self.params)
        if not self.gpu.fits_in_memory(config.extract):
            raise ValueError(
                f"extract pool of {config.extract} needs "
                f"{self.gpu.memory_gb(config.extract):.1f} GB GPU memory, "
                f"only {self.params.gpu_total_memory_gb} GB available"
            )
        env = self.env
        self.pools = {
            "http": simcore.Resource(env, config.http, name="http"),
            "download": simcore.Resource(env, config.download, name="download"),
            "extract": simcore.Resource(env, config.extract, name="extract"),
            "simsearch": simcore.Resource(env, config.simsearch, name="simsearch"),
        }
        self.metrics = MetricsCollector(self.workload.warmup, trace=trace)
        self._rng = spawn_rng(self.seed)
        # Pre-computed lognormal noise parameters (mean 1, given CV).
        cv = self.params.service_cv
        if cv > 0:
            self._sigma = math.sqrt(math.log(1.0 + cv * cv))
            self._mu = -0.5 * self._sigma * self._sigma
        else:
            self._sigma = 0.0
            self._mu = 0.0
        self._client_rtt = client_path.round_trip_time() if client_path else 0.0

    # -- service-time noise -------------------------------------------------------

    def _noise(self) -> float:
        if self._sigma == 0.0:
            return 1.0
        return float(self._rng.lognormal(self._mu, self._sigma))

    def _delay(self, duration: float) -> Any:
        """A plain virtual delay: raw number on the fast lane, else a Timeout."""
        if self._fast_lane:
            return duration
        return self.env.timeout(duration)

    # -- pipeline stages ------------------------------------------------------------

    def _cpu_stage(
        self, task: TaskType, base: float, weight: float
    ) -> Generator[simcore.Event, None, None]:
        """A CPU-bound stage.

        A task that would draw ``weight`` cores uncontended is slowed by the
        current contention factor ``I``: it runs ``I`` times longer while
        drawing ``weight / I`` cores, keeping its CPU work invariant.
        """
        env = self.env
        slowdown = self.cpu.inflation()
        draw = weight / slowdown
        self.cpu.acquire(draw, env.now)
        try:
            duration = base * slowdown * self._noise()
            yield self._delay(duration)
        finally:
            self.cpu.release(draw, env.now)
        self.metrics.record_task(task, duration, env.now)

    def _download_stage(self) -> Generator[simcore.Event, None, None]:
        """Download: fixed network transfer + CPU-slowed decode part."""
        env = self.env
        p = self.params
        slowdown = self.cpu.inflation()
        draw = p.w_download / slowdown
        self.cpu.acquire(draw, env.now)
        try:
            network = p.image_bytes / p.download_bandwidth
            duration = (network + p.t_download_cpu * slowdown) * self._noise()
            yield self._delay(duration)
        finally:
            self.cpu.release(draw, env.now)
        self.metrics.record_task(TaskType.DOWNLOAD, duration, env.now)

    def _extract_stage(self) -> Generator[simcore.Event, None, None]:
        """DNN inference: GPU-paced phase, then CPU-side decode phase.

        The GPU phase draws ``w_extract_spin`` cores at GPU pace (CPU
        contention does not stretch it); the CPU phase behaves like any
        other CPU stage.
        """
        env = self.env
        p = self.params
        concurrency = self.gpu.stream_started()
        start = env.now
        self.cpu.acquire(p.w_extract_spin, env.now)
        try:
            gpu_time = self.gpu.inference_time(concurrency) * self._noise()
            yield self._delay(gpu_time)
        finally:
            self.gpu.stream_finished()
            self.cpu.release(p.w_extract_spin, env.now)

        slowdown = self.cpu.inflation()
        draw = p.w_extract / slowdown
        self.cpu.acquire(draw, env.now)
        try:
            yield self._delay(p.t_extract_cpu * slowdown * self._noise())
        finally:
            self.cpu.release(draw, env.now)
        self.metrics.record_task(TaskType.EXTRACT, env.now - start, env.now)

    # -- request lifecycle -------------------------------------------------------------

    def _lifecycle(self) -> Generator[simcore.Event, None, None]:
        """One request through the full Table I pipeline."""
        env = self.env
        p = self.params
        pools = self.pools
        metrics = self.metrics
        submitted = env.now
        stamps: dict[str, float] = {}

        def stamp(task: TaskType, start: float) -> None:
            if metrics.trace_enabled:
                stamps[str(task)] = env.now - start

        http_req = pools["http"].request()
        yield http_req
        try:
            t0 = env.now
            yield from self._cpu_stage(TaskType.PRE_PROCESS, p.t_preprocess, p.w_http_misc)
            stamp(TaskType.PRE_PROCESS, t0)

            t0 = env.now
            dl_req = pools["download"].request()
            yield dl_req
            metrics.record_task(TaskType.WAIT_DOWNLOAD, env.now - t0, env.now)
            stamp(TaskType.WAIT_DOWNLOAD, t0)
            try:
                t0 = env.now
                yield from self._download_stage()
                stamp(TaskType.DOWNLOAD, t0)
            finally:
                pools["download"].release(dl_req)

            t0 = env.now
            ex_req = pools["extract"].request()
            yield ex_req
            metrics.record_task(TaskType.WAIT_EXTRACT, env.now - t0, env.now)
            stamp(TaskType.WAIT_EXTRACT, t0)
            try:
                t0 = env.now
                yield from self._extract_stage()
                stamp(TaskType.EXTRACT, t0)
            finally:
                pools["extract"].release(ex_req)

            t0 = env.now
            yield from self._cpu_stage(TaskType.PROCESS, p.t_process, p.w_http_misc)
            stamp(TaskType.PROCESS, t0)

            t0 = env.now
            ss_req = pools["simsearch"].request()
            yield ss_req
            metrics.record_task(TaskType.WAIT_SIMSEARCH, env.now - t0, env.now)
            stamp(TaskType.WAIT_SIMSEARCH, t0)
            try:
                t0 = env.now
                yield from self._cpu_stage(TaskType.SIMSEARCH, p.t_simsearch, p.w_simsearch)
                stamp(TaskType.SIMSEARCH, t0)
            finally:
                pools["simsearch"].release(ss_req)

            t0 = env.now
            yield from self._cpu_stage(TaskType.POST_PROCESS, p.t_postprocess, p.w_http_misc)
            stamp(TaskType.POST_PROCESS, t0)
        finally:
            pools["http"].release(http_req)

        response_time = env.now - submitted + self._client_rtt
        metrics.record_response(response_time, env.now)
        if metrics.trace_enabled:
            from repro.engine.metrics import RequestTrace

            metrics.record_trace(
                RequestTrace(submitted=submitted, response_time=response_time, tasks=stamps),
                env.now,
            )

    def _client(self, index: int = 0) -> Generator[simcore.Event, None, None]:
        """A closed-loop client: resubmit immediately upon each response.

        In scheduled mode the client parks itself whenever its index is at
        or above the current target population and resumes when the
        schedule readmits it — shrinking and growing the closed-loop
        population without tearing down state (E2Clab's transparent
        scenario scaling).
        """
        env = self.env
        while env.now < self.workload.duration:
            while index >= self._allowed_population:
                gate = env.event()
                self._parked[index] = gate
                yield gate
                if env.now >= self.workload.duration:
                    return
            yield from self._lifecycle()

    def _population_controller(self) -> Generator[simcore.Event, None, None]:
        """Applies the population schedule (scheduled mode only)."""
        env = self.env
        assert self.workload.population_schedule is not None
        for start, population in self.workload.population_schedule:
            if start > env.now:
                yield self._delay(start - env.now)
            self._allowed_population = population
            for index in sorted(self._parked):
                if index < population:
                    self._parked.pop(index).succeed()

    def _open_loop_source(self) -> Generator[simcore.Event, None, None]:
        """Poisson arrivals; each arrival is an independent request.

        Inter-arrival gaps are drawn in batches from a dedicated arrival
        RNG (derived from the run seed) instead of one scalar draw per
        request from the shared stream. Batch draws from a numpy Generator
        produce the same sequence as repeated scalar draws, so the arrival
        process itself is unchanged — but keeping arrivals off the shared
        RNG means batching cannot perturb the service-noise stream.
        """
        env = self.env
        rate = self.workload.arrival_rate
        assert rate is not None
        scale = 1.0 / rate
        duration = self.workload.duration
        rng = spawn_rng(derive_seed(self.seed, "arrivals"))
        while env.now < duration:
            for gap in rng.exponential(scale, size=_ARRIVAL_BATCH):
                yield self._delay(float(gap))
                env.process(self._lifecycle(), name="request")
                if env.now >= duration:
                    return

    def _trace_source(self) -> Generator[simcore.Event, None, None]:
        """Replay an arrival trace verbatim (timestamps, no RNG draws)."""
        env = self.env
        duration = self.workload.duration
        assert self.workload.arrival_schedule is not None
        trace = self.workload.arrival_schedule.trace
        assert trace is not None
        for stamp in trace:
            if stamp >= duration:
                return
            if stamp > env.now:
                yield self._delay(stamp - env.now)
            env.process(self._lifecycle(), name="request")

    def _scheduled_source(self) -> Generator[simcore.Event, None, None]:
        """Non-homogeneous Poisson arrivals following an ArrivalSchedule.

        Within a segment, gaps are drawn in batches at the segment's rate
        through the same calls as :meth:`_open_loop_source` — a schedule
        with one constant segment is byte-identical to plain
        ``arrival_rate`` mode. At a segment boundary the residual of the
        gap in flight is rescaled by the old/new rate ratio (memoryless
        rescaling), which makes the piecewise process an exact NHPP;
        undrawn gaps of the batch are discarded so every segment samples
        at its own scale.
        """
        env = self.env
        duration = self.workload.duration
        assert self.workload.arrival_schedule is not None
        segments = self.workload.arrival_schedule.segments(duration)
        rng = spawn_rng(derive_seed(self.seed, "arrivals"))
        index = 0
        carry = 0.0  # unit-exponential work left over from a boundary crossing
        while env.now < duration and index < len(segments):
            _, end, rate = segments[index]
            if rate <= 0.0:
                # idle segment: no arrivals, the pending work is preserved
                if end >= duration:
                    return
                yield self._delay(end - env.now)
                index += 1
                continue
            if carry > 0.0:
                gap = carry / rate
                carry = 0.0
                if env.now + gap >= end and end < duration:
                    carry = (env.now + gap - end) * rate
                    yield self._delay(end - env.now)
                    index += 1
                    continue
                yield self._delay(gap)
                env.process(self._lifecycle(), name="request")
                if env.now >= duration:
                    return
                continue
            scale = 1.0 / rate
            for gap in rng.exponential(scale, size=_ARRIVAL_BATCH):
                gap = float(gap)
                if env.now + gap >= end and end < duration:
                    carry = (env.now + gap - end) * rate
                    yield self._delay(end - env.now)
                    index += 1
                    break
                yield self._delay(gap)
                env.process(self._lifecycle(), name="request")
                if env.now >= duration:
                    return

    # -- monitoring ------------------------------------------------------------------------

    def _monitor(self) -> Generator[simcore.Event, None, None]:
        """Sample every metric each ``sample_interval`` (paper: 10 s)."""
        env = self.env
        wl = self.workload
        interval = wl.sample_interval
        cfg = self.config
        gpu_mem = self.gpu.memory_gb(cfg.extract)
        sys_mem = self._system_memory_gb()
        prev_cpu = self.cpu.usage_integral(env.now)
        prev_busy = {name: self.pools[name].busy_integral() for name in POOL_NAMES}

        while env.now < wl.duration:
            yield self._delay(interval)
            now = env.now
            cpu_int = self.cpu.usage_integral(now)
            cpu_usage = (cpu_int - prev_cpu) / interval
            prev_cpu = cpu_int

            busy: dict[str, float] = {}
            for name in POOL_NAMES:
                integral = self.pools[name].busy_integral()
                busy[name] = (integral - prev_busy[name]) / (interval * self.pools[name].capacity)
                prev_busy[name] = integral

            mean_streams = busy["extract"] * cfg.extract
            gpu_util = self.gpu.utilization(active_streams=mean_streams)  # type: ignore[arg-type]
            gpu_power = self.gpu.power_draw_w(active_streams=mean_streams)  # type: ignore[arg-type]
            node_power = (
                self.params.node_idle_power_w
                + (self.params.node_max_power_w - self.params.node_idle_power_w) * cpu_usage
            )

            if now >= wl.warmup:
                self.metrics.sample_window(
                    now,
                    interval,
                    cpu_usage=cpu_usage,
                    gpu_utilization=gpu_util,
                    gpu_power_w=gpu_power,
                    node_power_w=node_power,
                    gpu_memory_gb=gpu_mem,
                    system_memory_gb=sys_mem,
                    pool_busy=busy,
                )

    def _system_memory_gb(self) -> float:
        p = self.params
        cfg = self.config
        threads = cfg.http + cfg.download + cfg.simsearch
        return p.sys_mem_base_gb + p.sys_mem_per_extract_gb * cfg.extract + p.sys_mem_per_thread_gb * threads

    # -- entry point ------------------------------------------------------------------------

    def run(self) -> EngineRunResult:
        """Run the simulation for the workload's duration and aggregate.

        When the process-global tracer/registry are enabled (they are no-ops
        by default) the run additionally emits an ``engine.run`` span with
        per-pool wait/service children, event-loop statistics, and uniform
        engine metrics — at zero cost for untraced runs.
        """
        env = self.env
        workload = self.workload
        tracer = get_tracer()
        registry = get_registry()
        observing = tracer.enabled or registry.enabled
        if observing:
            env.enable_stats()
        run_span = (
            tracer.start_span(
                "engine.run",
                sim_clock=lambda: env.now,
                config=str(self.config),
                requests=workload.simultaneous_requests,
                seed=self.seed,
            )
            if tracer.enabled
            else None
        )
        self._parked: dict[int, simcore.Event] = {}
        if workload.mode == "open":
            self._allowed_population = 0
            if workload.arrival_schedule is None:
                source = self._open_loop_source()
            elif workload.arrival_schedule.is_trace:
                source = self._trace_source()
            else:
                source = self._scheduled_source()
            env.process(source, name="arrivals")
        else:
            self._allowed_population = workload.population_at(0.0)
            for index in range(workload.simultaneous_requests):
                env.process(self._client(index), name="client")
            if workload.mode == "scheduled":
                env.process(self._population_controller(), name="population")
        env.process(self._monitor(), name="monitor")
        env.run(until=workload.duration)
        if observing:
            self._publish_observability(tracer, registry, run_span)
        return self._result()

    def _publish_observability(self, tracer: Any, registry: Any, run_span: Any) -> None:
        """Emit pool spans + uniform metrics after one engine run."""
        env = self.env
        loop = env.stats.snapshot(env.now) if env.stats is not None else {}
        for name, pool in self.pools.items():
            stats = pool.stats
            waits = stats.wait_times.summary()
            occupancy = pool.occupancy()
            if run_span is not None:
                span = tracer.start_span(
                    f"pool:{name}",
                    parent=run_span,
                    start=run_span.start_s,
                    capacity=pool.capacity,
                    grants=stats.grants,
                    wait_mean_s=waits.mean,
                    service_mean_s=(
                        stats.busy_integral / stats.releases if stats.releases else 0.0
                    ),
                    occupancy=occupancy,
                    mean_queue_length=stats.mean_queue_length(env.now),
                )
                tracer.end_span(span)
            if registry.enabled:
                registry.gauge(
                    "engine_pool_busy", "mean fraction of pool threads occupied", ("pool",)
                ).set(occupancy, pool=name)
                registry.gauge(
                    "engine_pool_wait_mean_s", "mean wait for a pool thread", ("pool",)
                ).set(waits.mean, pool=name)
                registry.histogram(
                    "engine_pool_wait_seconds",
                    "distribution of waits for a pool thread",
                    ("pool",),
                ).observe(waits.mean, pool=name)
                registry.counter(
                    "engine_pool_grants_total", "pool thread grants", ("pool",)
                ).inc(stats.grants, pool=name)
        if registry.enabled:
            registry.counter(
                "engine_requests_completed_total", "requests served past warm-up"
            ).inc(self.metrics.completed)
            if loop:
                registry.counter(
                    "engine_loop_events_total", "DES events processed"
                ).inc(loop["events_processed"])
                registry.gauge(
                    "engine_loop_sim_wall_ratio", "simulated-vs-wall speed of the last run"
                ).set(loop["sim_wall_ratio"])
                registry.gauge(
                    "engine_loop_max_queue_depth", "peak event-heap depth of the last run"
                ).set(loop["max_queue_depth"])
        if run_span is not None:
            for key, value in loop.items():
                run_span.set(key, value)
            run_span.set("completed_requests", self.metrics.completed)
            tracer.end_span(run_span)

    def _result(self) -> EngineRunResult:
        wl = self.workload
        m = self.metrics
        measured = wl.duration - wl.warmup
        throughput = m.completed / measured if measured > 0 else float("nan")
        percentiles = (
            m.response_reservoir.percentiles() if len(m.response_reservoir) else {}
        )
        node_energy_wh = m.series.node_power_w.summary().mean * measured / 3600.0 if len(
            m.series.node_power_w
        ) else 0.0
        gpu_energy_wh = m.series.gpu_power_w.summary().mean * measured / 3600.0 if len(
            m.series.gpu_power_w
        ) else 0.0
        return EngineRunResult(
            config=self.config,
            workload=wl,
            seed=self.seed,
            user_response_time=m.series.user_response_time.summary(),
            throughput=throughput,
            completed_requests=m.completed,
            task_times={str(t): m.task_stats[t].summary() for t in TaskType},
            pool_busy={name: self.pools[name].occupancy() for name in POOL_NAMES},
            gpu_memory_gb=self.gpu.memory_gb(self.config.extract),
            system_memory_gb=self._system_memory_gb(),
            cpu_usage=m.series.cpu_usage.summary(),
            gpu_utilization=m.series.gpu_utilization.summary(),
            response_percentiles=percentiles,
            node_energy_wh=node_energy_wh,
            gpu_energy_wh=gpu_energy_wh,
            series=m.series,
            traces=list(m.traces),
        )


def simulate_engine(
    config: ThreadPoolConfig,
    simultaneous_requests: int = 80,
    *,
    duration: float = 1380.0,
    warmup: float = 60.0,
    sample_interval: float = 10.0,
    params: EngineModelParams | None = None,
    seed: int = 0,
    client_path: Optional[NetworkPath] = None,
    fast_lane: bool = True,
) -> EngineRunResult:
    """Convenience one-call engine simulation (one repetition)."""
    workload = WorkloadSpec(
        simultaneous_requests=simultaneous_requests,
        duration=duration,
        sample_interval=sample_interval,
        warmup=warmup,
    )
    engine = IdentificationEngine(
        config, workload, params, seed=seed, client_path=client_path, fast_lane=fast_lane
    )
    return engine.run()

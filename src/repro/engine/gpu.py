"""GPU performance, memory and power model for the extract pool.

Paper observations this model is built to reproduce (Sec. IV-C / Fig. 9):

- per-inference *extract* time does **not** drop when the pool grows — the
  GPU time-shares concurrent streams, so per-stream latency grows roughly
  linearly with concurrency while aggregate throughput grows sub-linearly;
- GPU **memory** grows with the extract pool size and stays constant during
  the run (activation buffers are pre-allocated per stream); the refined
  optimum (6 threads) uses ~7 GB against ~10 GB for 7 threads (−30 %);
- GPU **utilization** stays in the 35–60 % band (the V100 is never the
  bottleneck — the CPU side is) and power draw between ~50 and 80 W.
"""

from __future__ import annotations

from repro.engine.config import EngineModelParams
from repro.errors import ValidationError

__all__ = ["GpuModel"]


class GpuModel:
    """Latency/memory/utilization model of one V100 running the extractor."""

    def __init__(self, params: EngineModelParams) -> None:
        self.params = params
        self._active_streams = 0

    # -- latency ---------------------------------------------------------------

    def inference_time(self, concurrency: int) -> float:
        """Per-inference GPU latency with ``concurrency`` active streams.

        ``t(k) = t_gpu * (1 + penalty * (k - 1) / n_gpus)`` — single-stream
        latency plus a linear sharing penalty spread over the node's GPUs
        (streams are balanced across boards). Aggregate throughput
        ``k / t(k)`` still increases with ``k`` but saturates at
        ``n_gpus / (t_gpu * penalty)``.
        """
        if concurrency < 1:
            raise ValidationError(f"concurrency must be >= 1, got {concurrency}")
        p = self.params
        sharing = p.gpu_concurrency_penalty * (concurrency - 1) / p.gpus_per_node
        return p.t_extract_gpu * (1.0 + sharing)

    def max_throughput(self, pool_size: int) -> float:
        """Upper bound on inferences/s with ``pool_size`` always-busy streams."""
        return pool_size / self.inference_time(pool_size)

    # -- stream bookkeeping ------------------------------------------------------

    @property
    def active_streams(self) -> int:
        return self._active_streams

    def stream_started(self) -> int:
        """Register a new inference; returns the concurrency including it."""
        self._active_streams += 1
        return self._active_streams

    def stream_finished(self) -> None:
        if self._active_streams <= 0:
            raise ValidationError("stream_finished without matching stream_started")
        self._active_streams -= 1

    # -- memory -------------------------------------------------------------------

    def memory_gb(self, pool_size: int) -> float:
        """Resident GPU memory for an extract pool of ``pool_size`` threads.

        Quadratic in the pool size, calibrated so that 7 threads occupy
        ~10 GB and 6 threads ~7 GB (paper Sec. IV-C summary). Memory is
        allocated at startup and constant during the run, as the paper
        observes in Fig. 9d.
        """
        if pool_size < 1:
            raise ValidationError(f"pool_size must be >= 1, got {pool_size}")
        import math

        p = self.params
        # streams are balanced across boards; the quadratic buffer growth
        # applies per board, so multi-GPU nodes are memory-cheaper per slot.
        per_gpu = math.ceil(pool_size / p.gpus_per_node)
        mem = p.gpu_mem_base_gb + p.gpu_mem_linear_gb * per_gpu + p.gpu_mem_quad_gb * per_gpu**2
        return max(mem, 0.35 * per_gpu)

    def fits_in_memory(self, pool_size: int) -> bool:
        """Whether the per-board footprint fits (Table II: the extract size
        is "the maximum number of threads which fit in GPU memory")."""
        return self.memory_gb(pool_size) <= self.params.gpu_total_memory_gb

    # -- utilization & power --------------------------------------------------------

    def utilization(self, active_streams: int | float | None = None) -> float:
        """Instantaneous per-board GPU utilization fraction."""
        k = self._active_streams if active_streams is None else active_streams
        return min(1.0, self.params.gpu_util_per_stream * k / self.params.gpus_per_node)

    def power_draw_w(self, active_streams: int | float | None = None) -> float:
        """Total GPU power draw across boards (paper band: ~50–80 W/board)."""
        p = self.params
        per_board = p.gpu_idle_power_w + p.gpu_power_per_util_w * self.utilization(active_streams)
        return per_board * p.gpus_per_node

"""Metric collection for engine runs.

Mirrors the paper's measurement protocol: every metric is sampled at a fixed
interval (10 s) over the run, and the reported value is ``mean (± std)`` over
all samples. The collector therefore exposes, per run:

- ``user_response_time`` — mean response time of requests completed in each
  sampling window (the paper's headline metric);
- per-task processing times (Table I / Fig. 9b, 10b);
- ``cpu_usage`` (Fig. 9c), ``gpu_memory_gb`` (9d), ``system_memory_gb``
  (9e), ``gpu_utilization`` and ``gpu_power_w`` (discussed in text);
- pool busy time percentages (Figs. 9f, 9g, 10c, 10d);
- achieved throughput (requests/s).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.engine.tasks import TaskType
from repro.utils.reservoir import ReservoirSampler
from repro.utils.stats import RunningStats, Summary
from repro.utils.timeseries import TimeSeries

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.config import ThreadPoolConfig, WorkloadSpec

__all__ = ["MetricSeries", "EngineRunResult", "RequestTrace"]

#: Pool names in reporting order.
POOL_NAMES = ("http", "download", "extract", "simsearch")


@dataclass
class MetricSeries:
    """All sampled time series of one engine run."""

    user_response_time: TimeSeries = field(
        default_factory=lambda: TimeSeries("user_response_time")
    )
    throughput: TimeSeries = field(default_factory=lambda: TimeSeries("throughput"))
    cpu_usage: TimeSeries = field(default_factory=lambda: TimeSeries("cpu_usage"))
    gpu_utilization: TimeSeries = field(default_factory=lambda: TimeSeries("gpu_utilization"))
    gpu_power_w: TimeSeries = field(default_factory=lambda: TimeSeries("gpu_power_w"))
    gpu_memory_gb: TimeSeries = field(default_factory=lambda: TimeSeries("gpu_memory_gb"))
    system_memory_gb: TimeSeries = field(default_factory=lambda: TimeSeries("system_memory_gb"))
    node_power_w: TimeSeries = field(default_factory=lambda: TimeSeries("node_power_w"))
    pool_busy: dict[str, TimeSeries] = field(
        default_factory=lambda: {name: TimeSeries(f"busy_{name}") for name in POOL_NAMES}
    )

    def as_dict(self) -> dict[str, TimeSeries]:
        out: dict[str, TimeSeries] = {
            "user_response_time": self.user_response_time,
            "throughput": self.throughput,
            "cpu_usage": self.cpu_usage,
            "gpu_utilization": self.gpu_utilization,
            "gpu_power_w": self.gpu_power_w,
            "gpu_memory_gb": self.gpu_memory_gb,
            "system_memory_gb": self.system_memory_gb,
            "node_power_w": self.node_power_w,
        }
        for name, series in self.pool_busy.items():
            out[f"busy_{name}"] = series
        return out


@dataclass(frozen=True)
class RequestTrace:
    """Per-request timeline (collected when tracing is enabled)."""

    submitted: float
    response_time: float
    #: Table I task name → duration (seconds) for this request.
    tasks: dict[str, float] = field(default_factory=dict)


@dataclass
class EngineRunResult:
    """Aggregated outcome of one engine simulation run."""

    config: "ThreadPoolConfig"
    workload: "WorkloadSpec"
    seed: int
    #: mean ± std over the per-window response-time samples (paper metric).
    user_response_time: Summary
    #: requests completed per second after warm-up.
    throughput: float
    #: total requests completed after warm-up.
    completed_requests: int
    #: mean ± std per pipeline task (keys are Table I task names).
    task_times: dict[str, Summary]
    #: lifetime pool busy fractions.
    pool_busy: dict[str, float]
    #: resident GPU memory for this configuration (constant during run).
    gpu_memory_gb: float
    #: engine container memory (constant during run).
    system_memory_gb: float
    #: mean CPU usage fraction over sampled windows.
    cpu_usage: Summary
    #: mean GPU utilization fraction over sampled windows.
    gpu_utilization: Summary
    #: response-time percentile estimates (p50/p95/p99) post-warm-up.
    response_percentiles: dict[str, float]
    #: node + GPU energy over the measured window (watt-hours).
    node_energy_wh: float
    gpu_energy_wh: float
    #: all raw sampled series.
    series: MetricSeries
    #: per-request timelines (only when the engine ran with ``trace=True``).
    traces: list[RequestTrace] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        """JSON-able record (used by Phase III archives)."""
        return {
            "config": self.config.to_dict(),
            "simultaneous_requests": self.workload.simultaneous_requests,
            "duration": self.workload.duration,
            "seed": self.seed,
            "user_response_time_mean": self.user_response_time.mean,
            "user_response_time_std": self.user_response_time.std,
            "throughput": self.throughput,
            "completed_requests": self.completed_requests,
            "task_times": {k: {"mean": v.mean, "std": v.std} for k, v in self.task_times.items()},
            "pool_busy": dict(self.pool_busy),
            "gpu_memory_gb": self.gpu_memory_gb,
            "system_memory_gb": self.system_memory_gb,
            "cpu_usage_mean": self.cpu_usage.mean,
            "gpu_utilization_mean": self.gpu_utilization.mean,
            "response_percentiles": dict(self.response_percentiles),
            "node_energy_wh": self.node_energy_wh,
            "gpu_energy_wh": self.gpu_energy_wh,
        }


    def export_csv(self, directory) -> list:
        """Write every sampled series (and traces, if any) as CSV files.

        Returns the written paths. Files are plain two-column
        ``time,value`` CSVs — loadable by any plotting tool, fulfilling the
        E2Clab goal of archiving experiment data in open formats.
        """
        from pathlib import Path

        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        written = []
        for name, series in self.series.as_dict().items():
            path = directory / f"{name}.csv"
            lines = ["time,value"]
            lines += [f"{t},{v}" for t, v in series]
            path.write_text("\n".join(lines) + "\n")
            written.append(path)
        if self.traces:
            task_names = list(self.traces[0].tasks)
            path = directory / "traces.csv"
            header = "submitted,response_time," + ",".join(task_names)
            rows = [header]
            for trace in self.traces:
                cells = [f"{trace.submitted}", f"{trace.response_time}"]
                cells += [f"{trace.tasks.get(name, '')}" for name in task_names]
                rows.append(",".join(cells))
            path.write_text("\n".join(rows) + "\n")
            written.append(path)
        return written


class MetricsCollector:
    """Accumulates raw observations and samples windows; engine-internal."""

    def __init__(self, warmup: float, *, trace: bool = False) -> None:
        self.warmup = warmup
        self.series = MetricSeries()
        self.task_stats: dict[TaskType, RunningStats] = {t: RunningStats() for t in TaskType}
        self.response_stats = RunningStats()
        self.response_reservoir = ReservoirSampler(capacity=20000, seed=0)
        self.completed = 0
        self.trace_enabled = trace
        self.traces: list[RequestTrace] = []
        # window accumulators
        self._win_responses = RunningStats()
        self._win_completed = 0

    # -- raw observations -------------------------------------------------------

    def record_task(self, task: TaskType, duration: float, now: float) -> None:
        if now >= self.warmup:
            self.task_stats[task].add(duration)

    def record_response(self, response_time: float, now: float) -> None:
        if now >= self.warmup:
            self.response_stats.add(response_time)
            self.response_reservoir.add(response_time)
            self.completed += 1
            self._win_responses.add(response_time)
            self._win_completed += 1

    def record_trace(self, trace: RequestTrace, now: float) -> None:
        if self.trace_enabled and now >= self.warmup:
            self.traces.append(trace)

    # -- window sampling ----------------------------------------------------------

    def sample_window(
        self,
        now: float,
        interval: float,
        *,
        cpu_usage: float,
        gpu_utilization: float,
        gpu_power_w: float,
        node_power_w: float,
        gpu_memory_gb: float,
        system_memory_gb: float,
        pool_busy: dict[str, float],
    ) -> None:
        """Close the current window and append one sample per series."""
        if self._win_responses.count:
            self.series.user_response_time.append(now, self._win_responses.mean)
        self.series.throughput.append(now, self._win_completed / interval)
        self.series.cpu_usage.append(now, cpu_usage)
        self.series.gpu_utilization.append(now, gpu_utilization)
        self.series.gpu_power_w.append(now, gpu_power_w)
        self.series.node_power_w.append(now, node_power_w)
        self.series.gpu_memory_gb.append(now, gpu_memory_gb)
        self.series.system_memory_gb.append(now, system_memory_gb)
        for name, busy in pool_busy.items():
            self.series.pool_busy[name].append(now, busy)
        self._win_responses = RunningStats()
        self._win_completed = 0

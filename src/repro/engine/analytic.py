"""Analytic (fluid / approximate mean-value) twin of the engine simulator.

Solves the closed queueing network of the Identification Engine without
event simulation — roughly three orders of magnitude faster than the DES.
It shares every model parameter with the DES
(:class:`repro.engine.config.EngineModelParams`), so the two are directly
comparable; the DES-vs-analytic agreement is one of the ablations DESIGN.md
calls out.

Model
-----
Let ``X`` be the throughput. CPU *work* per request (core-seconds) is
invariant under contention, so utilization is::

    ρ(X) = (X · work(X) + background + standby·E) / cores
    work(X) = t_ss·w_ss + t_misc·w_misc + t_dl_cpu·w_dl
              + t_gpu(k(X))·w_spin + t_ex_cpu·w_ex

CPU-bound wall times inflate by ``I(ρ)`` (see
:func:`repro.engine.cpumodel.inflation_factor`); the GPU concurrency
``k(X) = min(E, X·t_gpu(k))`` has a closed form for the linear sharing
penalty; pool queueing is approximated with the Sakasegawa M/M/c
waiting-time formula, capped by the closed population.

Every quantity above is a function of ``X`` alone, so the closed loop
``X = min(R, H) / T_service(X)`` is a **scalar** fixed point. Since
``T_service`` is non-decreasing in ``X``, ``g(X) = X·T_service(X) - min(R,H)``
is strictly increasing and the root is unique — found by bisection, which
converges unconditionally (no damping heuristics).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.engine.config import EngineModelParams, ThreadPoolConfig
from repro.engine.cpumodel import inflation_factor
from repro.engine.gpu import GpuModel
from repro.engine.schedule import ArrivalSchedule
from repro.errors import ValidationError

__all__ = ["AnalyticResult", "AnalyticEngineModel", "OpenEpochResult", "SATURATION_RHO"]

#: utilization at which the Sakasegawa pole is clamped for numeric stability;
#: any pool at or beyond it is reported as *saturated* rather than silently
#: capped (see :attr:`AnalyticResult.saturated`).
SATURATION_RHO = 0.999


def _sakasegawa_wait(service_time: float, servers: int, utilization: float) -> float:
    """Approximate M/M/c mean waiting time (Sakasegawa, 1977).

    ``W ≈ t · ρ^(√(2(c+1)) − 1) / (c · (1 − ρ))`` — exact for M/M/1,
    asymptotically correct in heavy traffic for M/M/c. Utilizations at or
    above :data:`SATURATION_RHO` are clamped there so the pole stays
    finite; callers surface that regime through the ``saturated`` flag on
    their results instead of relying on the cap.
    """
    if servers < 1:
        raise ValidationError(f"servers must be >= 1, got {servers}")
    rho = min(utilization, SATURATION_RHO)
    if rho <= 0:
        return 0.0
    exponent = math.sqrt(2.0 * (servers + 1.0)) - 1.0
    return service_time * (rho**exponent) / (servers * (1.0 - rho))


@dataclass(frozen=True)
class AnalyticResult:
    """Converged steady-state solution of the analytic model."""

    config: ThreadPoolConfig
    simultaneous_requests: int
    user_response_time: float
    throughput: float
    service_time: float
    #: per-stage effective service times (contention included).
    stage_times: dict[str, float] = field(default_factory=dict)
    #: per-pool waiting times (the paper's ``wait-*`` tasks).
    wait_times: dict[str, float] = field(default_factory=dict)
    #: per-pool utilization (busy fraction).
    pool_utilization: dict[str, float] = field(default_factory=dict)
    cpu_usage: float = 0.0
    cpu_inflation: float = 1.0
    gpu_concurrency: float = 0.0
    gpu_memory_gb: float = 0.0
    iterations: int = 0
    converged: bool = True
    #: True when a pool hit the Sakasegawa clamp (ρ ≥ 0.999) or CPU demand
    #: reached the node's cores — the formulas are pinned at their pole, so
    #: waits are lower bounds rather than point estimates.
    saturated: bool = False


@dataclass(frozen=True)
class OpenEpochResult:
    """One epoch of the open-loop (time-varying) fluid model.

    Produced by :meth:`AnalyticEngineModel.evaluate_open` /
    :meth:`AnalyticEngineModel.evaluate_schedule`. Unlike
    :class:`AnalyticResult` the population is unbounded: demand beyond
    the service :meth:`~AnalyticEngineModel.capacity` accumulates as
    ``backlog`` (requests of un-served fluid) that drains in later epochs.
    """

    config: ThreadPoolConfig
    #: offered arrival rate for this epoch (requests/s).
    arrival_rate: float
    #: served rate — ``min(arrival_rate + backlog/dt, capacity)``.
    throughput: float
    #: un-served fluid carried into the next epoch (requests).
    backlog: float
    #: Little's-law in-service concurrency at this throughput.
    concurrency: float
    service_time: float
    #: mean response including backlog drain delay.
    response_time: float
    #: model-side p95 estimate (lognormal service tail; DES-calibrated
    #: by the hybrid engine).
    response_p95: float
    cpu_usage: float
    #: highest inner-pool utilization (download/extract/simsearch).
    bottleneck_rho: float
    #: True when offered demand reached capacity (backlog growth regime).
    saturated: bool
    #: epoch length (seconds); ``inf`` for a steady-state query.
    dt: float = float("inf")


class _State:
    """All derived quantities of the network at a candidate throughput X."""

    __slots__ = (
        "X",
        "inflation",
        "ratio",
        "t_pre",
        "t_dl",
        "t_ex",
        "t_gpu",
        "t_proc",
        "t_ss",
        "t_post",
        "gpu_k",
        "rho_dl",
        "rho_ex",
        "rho_ss",
        "w_dl",
        "w_ex",
        "w_ss",
        "t_service",
    )

    def __init__(self, params: EngineModelParams, config: ThreadPoolConfig, R: int, X: float):
        p = params
        H, D_pool, E, S = config.http, config.download, config.extract, config.simsearch
        t_net = p.image_bytes / p.download_bandwidth
        t_misc_base = p.t_preprocess + p.t_process + p.t_postprocess

        # GPU concurrency fixed point k = X·t_gpu(k) with
        # t_gpu(k) = t0·(1 + α(k-1)/n_gpus): closed form, clamped to [1, E]
        # (the sharing penalty spreads over the node's GPU boards).
        alpha = p.gpu_concurrency_penalty / p.gpus_per_node
        t0 = p.t_extract_gpu
        denom = 1.0 - X * t0 * alpha
        if denom <= 1e-9:
            gpu_k = float(E)
        else:
            gpu_k = min(float(E), max(1.0, X * t0 * (1.0 - alpha) / denom))
        t_gpu = t0 * (1.0 + alpha * (gpu_k - 1.0))

        # CPU utilization from invariant work per request.
        work = (
            p.t_simsearch * p.w_simsearch
            + t_misc_base * p.w_http_misc
            + p.t_download_cpu * p.w_download
            + t_gpu * p.w_extract_spin
            + p.t_extract_cpu * p.w_extract
        )
        demand = X * work + p.background_cores + p.extract_standby_cores * E
        ratio = demand / p.cpu_cores
        inflation = inflation_factor(
            ratio,
            p.contention_scale,
            p.contention_sharpness,
            p.contention_rho_max,
            p.contention_kappa,
        )

        t_pre = p.t_preprocess * inflation
        t_proc = p.t_process * inflation
        t_post = p.t_postprocess * inflation
        t_dl = t_net + p.t_download_cpu * inflation
        t_ss = p.t_simsearch * inflation
        t_ex = t_gpu + p.t_extract_cpu * inflation

        rho_dl = X * t_dl / D_pool
        rho_ex = X * t_ex / E
        rho_ss = X * t_ss / S
        # Waits are capped by the closed population: at most min(R, H)
        # requests can ever queue at an inner pool.
        in_service = float(min(R, H))
        w_dl = min(_sakasegawa_wait(t_dl, D_pool, rho_dl), in_service * t_dl / D_pool)
        w_ex = min(_sakasegawa_wait(t_ex, E, rho_ex), in_service * t_ex / E)
        w_ss = min(_sakasegawa_wait(t_ss, S, rho_ss), in_service * t_ss / S)

        self.X = X
        self.inflation = inflation
        self.ratio = ratio
        self.t_pre = t_pre
        self.t_dl = t_dl
        self.t_gpu = t_gpu
        self.t_ex = t_ex
        self.t_proc = t_proc
        self.t_ss = t_ss
        self.t_post = t_post
        self.gpu_k = gpu_k
        self.rho_dl = rho_dl
        self.rho_ex = rho_ex
        self.rho_ss = rho_ss
        self.w_dl = w_dl
        self.w_ex = w_ex
        self.w_ss = w_ss
        self.t_service = t_pre + w_dl + t_dl + w_ex + t_ex + t_proc + w_ss + t_ss + t_post


class AnalyticEngineModel:
    """Bisection solver for the engine's closed queueing network."""

    def __init__(
        self,
        params: EngineModelParams | None = None,
        *,
        max_iterations: int = 200,
        tolerance: float = 1e-10,
    ) -> None:
        self.params = params or EngineModelParams()
        self.max_iterations = int(max_iterations)
        self.tolerance = float(tolerance)
        self._gpu = GpuModel(self.params)
        self._capacity_cache: dict[ThreadPoolConfig, float] = {}

    def evaluate(
        self, config: ThreadPoolConfig, simultaneous_requests: int
    ) -> AnalyticResult:
        """Solve for steady state under ``simultaneous_requests`` clients."""
        if simultaneous_requests < 1:
            raise ValidationError("need at least one client")
        p = self.params
        R = simultaneous_requests
        in_service = float(min(R, config.http))

        # g(X) = X·T_service(X) − min(R, H) is strictly increasing.
        def g(X: float) -> float:
            return X * _State(p, config, R, X).t_service - in_service

        lo = 1e-6
        hi = in_service / (
            p.t_preprocess + p.t_process + p.t_postprocess + p.t_extract_gpu
        )
        # Ensure the bracket: expand hi until g(hi) >= 0 (bounded loop).
        for _ in range(60):
            if g(hi) >= 0:
                break
            hi *= 2.0
        iterations = 0
        converged = False
        for iterations in range(1, self.max_iterations + 1):
            mid = 0.5 * (lo + hi)
            if g(mid) < 0:
                lo = mid
            else:
                hi = mid
            if hi - lo < self.tolerance * max(1.0, hi):
                converged = True
                break
        X = 0.5 * (lo + hi)
        s = _State(p, config, R, X)

        response_time = R / X
        return AnalyticResult(
            config=config,
            simultaneous_requests=R,
            user_response_time=response_time,
            throughput=X,
            service_time=s.t_service,
            stage_times={
                "pre-process": s.t_pre,
                "download": s.t_dl,
                "extract": s.t_ex,
                "process": s.t_proc,
                "simsearch": s.t_ss,
                "post-process": s.t_post,
            },
            wait_times={
                "wait-download": s.w_dl,
                "wait-extract": s.w_ex,
                "wait-simsearch": s.w_ss,
                "wait-http": max(0.0, response_time - s.t_service),
            },
            pool_utilization={
                "http": min(1.0, R / config.http),
                "download": min(1.0, s.rho_dl),
                "extract": min(1.0, s.rho_ex),
                "simsearch": min(1.0, s.rho_ss),
            },
            cpu_usage=min(1.0, s.ratio),
            cpu_inflation=s.inflation,
            gpu_concurrency=s.gpu_k,
            gpu_memory_gb=self._gpu.memory_gb(config.extract),
            iterations=iterations,
            converged=converged,
            saturated=(
                max(s.rho_dl, s.rho_ex, s.rho_ss) >= SATURATION_RHO or s.ratio >= 1.0
            ),
        )

    def response_time(self, config: ThreadPoolConfig, simultaneous_requests: int) -> float:
        """Shortcut returning only the user response time."""
        return self.evaluate(config, simultaneous_requests).user_response_time

    # -- open-loop (time-varying) mode ----------------------------------------------

    def capacity(self, config: ThreadPoolConfig) -> float:
        """Maximum sustainable throughput (requests/s) of ``config``.

        The open-loop service capacity equals the closed-loop fixed point
        at a population of ``http`` — the HTTP pool bounds how many
        requests can ever be in service, so offered load beyond this rate
        accumulates as backlog instead of throughput.
        """
        cached = self._capacity_cache.get(config)
        if cached is None:
            cached = self.evaluate(config, config.http).throughput
            self._capacity_cache[config] = cached
        return cached

    def evaluate_open(
        self,
        config: ThreadPoolConfig,
        arrival_rate: float,
        *,
        backlog: float = 0.0,
        dt: float = float("inf"),
    ) -> OpenEpochResult:
        """One fluid epoch of the open-loop model at ``arrival_rate``.

        With the default infinite ``dt`` this is the steady state: the
        system serves ``min(rate, capacity)`` and, when stable, responds
        in the contention-inflated service time at that throughput. With a
        finite ``dt`` it is one step of the epoch-stepped fluid model::

            X       = min(rate + backlog/dt, capacity)
            backlog'= max(0, backlog + (rate − X)·dt)
            T       = t_service(X) + mean_backlog/X

        which is how the fluid twin tracks a *changing* arrival rate:
        throughput follows the schedule while the system is stable, and
        around saturation the un-served fluid accumulates as backlog whose
        drain delay is added to the response time (a fluid M/G/c view of
        the queue the DES builds up request by request).
        """
        if not math.isfinite(arrival_rate) or arrival_rate < 0:
            raise ValidationError(f"arrival_rate must be finite and >= 0, got {arrival_rate}")
        if backlog < 0:
            raise ValidationError(f"backlog must be >= 0, got {backlog}")
        if dt <= 0:
            raise ValidationError(f"dt must be positive, got {dt}")
        p = self.params
        cap = self.capacity(config)
        demand = arrival_rate + (backlog / dt if math.isfinite(dt) else 0.0)
        throughput = min(demand, cap)
        if math.isfinite(dt):
            new_backlog = max(0.0, backlog + (arrival_rate - throughput) * dt)
        else:
            new_backlog = 0.0 if arrival_rate <= cap else float("inf")
        saturated = demand >= cap * 0.999999
        if throughput <= 0.0:
            t_idle = (
                p.t_preprocess
                + p.t_download
                + p.t_extract_gpu
                + p.t_extract_cpu
                + p.t_process
                + p.t_simsearch
                + p.t_postprocess
            )
            return OpenEpochResult(
                config=config,
                arrival_rate=arrival_rate,
                throughput=0.0,
                backlog=new_backlog,
                concurrency=0.0,
                service_time=t_idle,
                response_time=t_idle,
                response_p95=t_idle * self._p95_factor(),
                cpu_usage=min(
                    1.0,
                    (p.background_cores + p.extract_standby_cores * config.extract)
                    / p.cpu_cores,
                ),
                bottleneck_rho=0.0,
                saturated=False,
                dt=dt,
            )
        s = _State(p, config, config.http, throughput)
        mean_backlog = 0.5 * (backlog + new_backlog) if math.isfinite(new_backlog) else backlog
        queue_delay = mean_backlog / throughput if mean_backlog > 0 else 0.0
        response = s.t_service + queue_delay
        return OpenEpochResult(
            config=config,
            arrival_rate=arrival_rate,
            throughput=throughput,
            backlog=new_backlog,
            concurrency=throughput * s.t_service,
            service_time=s.t_service,
            response_time=response,
            response_p95=response * self._p95_factor(),
            cpu_usage=min(1.0, s.ratio),
            bottleneck_rho=max(s.rho_dl, s.rho_ex, s.rho_ss),
            saturated=saturated or max(s.rho_dl, s.rho_ex, s.rho_ss) >= SATURATION_RHO,
            dt=dt,
        )

    def evaluate_schedule(
        self,
        config: ThreadPoolConfig,
        schedule: ArrivalSchedule,
        duration: float,
        *,
        epoch: float = 60.0,
    ) -> list[OpenEpochResult]:
        """Epoch-stepped fluid solution of a whole arrival schedule.

        Splits ``[0, duration)`` into ``epoch``-sized steps aligned to the
        schedule's rate breakpoints and chains :meth:`evaluate_open`
        through them, carrying backlog forward — the pure-fluid twin of a
        scheduled open-loop DES run (and the fluid half of the
        :class:`~repro.engine.hybrid.HybridEngine`).
        """
        if epoch <= 0:
            raise ValidationError(f"epoch must be positive, got {epoch}")
        results: list[OpenEpochResult] = []
        backlog = 0.0
        for start, end, rate in iter_epochs(schedule, duration, epoch):
            step = self.evaluate_open(config, rate, backlog=backlog, dt=end - start)
            backlog = step.backlog
            results.append(step)
        return results

    def _p95_factor(self) -> float:
        """Model-side p95/mean response ratio from the lognormal service CV.

        A deliberate first-order estimate (the per-stage noise is lognormal
        with CV ``service_cv``; queueing variance is not modelled) — the
        hybrid engine calibrates it against DES sampling windows.
        """
        cv = self.params.service_cv
        if cv <= 0:
            return 1.0
        sigma = math.sqrt(math.log(1.0 + cv * cv))
        return math.exp(1.6449 * sigma - 0.5 * sigma * sigma)


def iter_epochs(
    schedule: ArrivalSchedule, duration: float, epoch: float
) -> list[tuple[float, float, float]]:
    """Split ``[0, duration)`` into fluid epochs ``(start, end, rate)``.

    Epoch boundaries fall on the ``epoch`` grid *and* on every schedule
    breakpoint, so each returned span has one constant rate and no span is
    longer than ``epoch`` seconds.
    """
    if epoch <= 0:
        raise ValidationError(f"epoch must be positive, got {epoch}")
    out: list[tuple[float, float, float]] = []
    for start, end, rate in schedule.segments(duration):
        t = start
        while t < end:
            t_next = min(end, t + epoch)
            out.append((t, t_next, rate))
            t = t_next
    return out

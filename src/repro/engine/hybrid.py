"""Hybrid fluid/DES simulation of open-loop arrival schedules.

The DES (:mod:`repro.engine.engine`) simulates every request — exact but
~10³ simulated seconds per wall second; the analytic twin
(:mod:`repro.engine.analytic`) solves a fixed point in microseconds but
only describes (quasi-)steady state. Internet-scale open-loop scenarios
(1M+ users over a day) are long stretches of near-steady demand punctuated
by regime changes — exactly the split this engine exploits:

- **fluid epochs** — while the arrival rate moves slowly and the system is
  away from saturation, each epoch is one step of the epoch-stepped fluid
  model (:meth:`~repro.engine.analytic.AnalyticEngineModel.evaluate_open`),
  costing microseconds of wall time;
- **DES windows** — around regime changes (rate discontinuities, entering
  or leaving saturation) and periodically in between, the engine drops
  into the event simulator for a short window: the system is *primed* with
  the fluid model's concurrency estimate, warmed, measured, then drained,
  and the event-loop clock is fast-forwarded across the next fluid span
  (:meth:`repro.simcore.core.Environment.fast_forward`).

Each sampling window doubles as an **error probe**: the DES measurement is
compared against the fluid prediction for the same epoch, the relative
error is reported per window (and its maximum over the run), and EWMA
correction factors (throughput, mean, p95) continuously re-calibrate the
fluid epochs between windows. When a window's error exceeds the configured
bound, the sampling cadence tightens until predictions are back within it.

Determinism: window arrivals draw from ``derive_seed(seed, "hybrid",
epoch_index)`` and service noise from the inner engine's own stream, so a
hybrid run is exactly reproducible from ``(config, workload, seed)``.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Any, Generator, Optional

from repro import simcore
from repro.engine.analytic import AnalyticEngineModel, OpenEpochResult, iter_epochs
from repro.engine.config import EngineModelParams, ThreadPoolConfig, WorkloadSpec
from repro.engine.engine import IdentificationEngine
from repro.engine.metrics import EngineRunResult, MetricsCollector, POOL_NAMES
from repro.engine.schedule import ArrivalSchedule
from repro.engine.tasks import TaskType
from repro.errors import ValidationError
from repro.monitoring.hybrid import EpochSample, HybridAggregator
from repro.observability.digest import get_perf
from repro.observability.metrics import get_registry
from repro.observability.trace import get_tracer
from repro.utils.seeding import derive_seed, spawn_rng
from repro.utils.stats import RunningStats

__all__ = ["HybridKnobs", "HybridRunResult", "HybridEngine", "simulate_hybrid"]


@dataclass(frozen=True)
class HybridKnobs:
    """Tuning knobs of the hybrid engine (defaults favor the ≥50× target)."""

    #: fluid step length (seconds); also the granularity of mode decisions.
    epoch: float = 300.0
    #: run a DES sampling window every this many epochs when nothing else
    #: forces one.
    sample_every: int = 8
    #: measured span of a DES window (seconds), after its warm-up.
    window: float = 20.0
    #: minimum warm-up inside a DES window before measurement starts; the
    #: actual warm-up also covers a few fluid service times so the primed
    #: cohort has drained.
    window_warmup: float = 8.0
    #: relative error (throughput or p95 vs the DES window) above which the
    #: sampling cadence tightens and the run is flagged.
    error_bound: float = 0.05
    #: relative arrival-rate jump between epochs that forces a DES window.
    regime_threshold: float = 0.25
    #: EWMA weight of each new DES/fluid correction observation.
    correction_alpha: float = 0.4
    #: minimum completed requests in a window for it to update corrections.
    min_window_samples: int = 20
    #: priming cap, as a multiple of the HTTP pool size.
    prime_cap: float = 4.0
    #: extra simulated seconds allowed for in-flight requests to drain
    #: after a window before the engine is rebuilt instead.
    drain_grace: float = 30.0
    #: sampling-noise allowance, in multiples of ``1/√N`` for a window with
    #: ``N`` completions: a window can only *resolve* model error down to
    #: its own statistical noise, so cadence tightening triggers on
    #: ``|error| − allowance·N^-1/2 > error_bound`` rather than on raw
    #: error. Run-level bias (mean signed error across windows) is judged
    #: against the bound directly — noise cancels there.
    noise_allowance: float = 2.0

    def __post_init__(self) -> None:
        if self.epoch <= 0 or not math.isfinite(self.epoch):
            raise ValidationError(f"epoch must be positive and finite, got {self.epoch}")
        if self.sample_every < 1:
            raise ValidationError(f"sample_every must be >= 1, got {self.sample_every}")
        if self.window <= 0:
            raise ValidationError(f"window must be positive, got {self.window}")
        if self.window_warmup < 0:
            raise ValidationError(f"window_warmup must be >= 0, got {self.window_warmup}")
        if not 0.0 < self.error_bound < 1.0:
            raise ValidationError(f"error_bound must be in (0, 1), got {self.error_bound}")
        if self.regime_threshold <= 0:
            raise ValidationError(
                f"regime_threshold must be positive, got {self.regime_threshold}"
            )
        if not 0.0 < self.correction_alpha <= 1.0:
            raise ValidationError(
                f"correction_alpha must be in (0, 1], got {self.correction_alpha}"
            )
        if self.prime_cap < 0:
            raise ValidationError(f"prime_cap must be >= 0, got {self.prime_cap}")
        if self.drain_grace < 0:
            raise ValidationError(f"drain_grace must be >= 0, got {self.drain_grace}")
        if self.noise_allowance < 0:
            raise ValidationError(
                f"noise_allowance must be >= 0, got {self.noise_allowance}"
            )


@dataclass
class HybridRunResult(EngineRunResult):
    """An :class:`EngineRunResult` plus hybrid-mode accounting."""

    #: every epoch, in order, with the mode that produced it.
    epochs: list[EpochSample] = field(default_factory=list)
    fluid_epochs: int = 0
    des_epochs: int = 0
    #: fraction of simulated time actually event-simulated (window spans).
    des_time_fraction: float = 0.0
    #: per-window relative errors (fluid prediction vs DES measurement);
    #: each includes that window's sampling noise (~N^-1/2).
    window_errors: list[float] = field(default_factory=list)
    max_window_error: float = 0.0
    mean_window_error: float = 0.0
    #: run-level model bias: |mean signed error| across windows, where the
    #: per-window sampling noise cancels. This (less its own residual noise
    #: floor below) is what the bound judges.
    error_throughput_bias: float = 0.0
    error_p95_bias: float = 0.0
    #: residual sampling noise of the bias estimates themselves (the
    #: ``noise_allowance``-scaled standard error of the mean signed error):
    #: with few windows of few completions, the measured bias cannot be
    #: resolved below this floor.
    error_throughput_noise: float = 0.0
    error_p95_noise: float = 0.0
    #: the configured bound those errors are compared against.
    error_bound: float = 0.05
    #: final EWMA correction factors applied to fluid epochs.
    corrections: dict[str, float] = field(default_factory=dict)
    #: inner DES engines discarded because a window failed to drain.
    engine_rebuilds: int = 0
    #: wall-clock time of the whole hybrid run (seconds).
    wall_time_s: float = 0.0

    @property
    def within_bound(self) -> bool:
        """True when the run-level fluid-model bias is within the bound.

        Individual windows are noise-limited (a 20 s window at 10 req/s can
        only resolve ~7% throughput error), so the bound is enforced on the
        signed-mean bias across all windows, where sampling noise cancels —
        down to the bias estimate's own standard error, which is debited
        before the comparison (a run with few low-rate windows cannot
        resolve bias below that floor).
        """
        thr = max(0.0, self.error_throughput_bias - self.error_throughput_noise)
        p95 = max(0.0, self.error_p95_bias - self.error_p95_noise)
        return max(thr, p95) <= self.error_bound

    def to_dict(self) -> dict[str, Any]:
        out = super().to_dict()
        out.update(
            {
                "fluid_epochs": self.fluid_epochs,
                "des_epochs": self.des_epochs,
                "des_time_fraction": self.des_time_fraction,
                "max_window_error": self.max_window_error,
                "mean_window_error": self.mean_window_error,
                "error_throughput_bias": self.error_throughput_bias,
                "error_p95_bias": self.error_p95_bias,
                "error_throughput_noise": self.error_throughput_noise,
                "error_p95_noise": self.error_p95_noise,
                "error_bound": self.error_bound,
                "within_bound": self.within_bound,
                "corrections": dict(self.corrections),
                "engine_rebuilds": self.engine_rebuilds,
                "wall_time_s": self.wall_time_s,
            }
        )
        return out


class HybridEngine:
    """Per-epoch fluid/DES mode switching over an arrival schedule."""

    def __init__(
        self,
        config: ThreadPoolConfig,
        workload: WorkloadSpec,
        params: EngineModelParams | None = None,
        *,
        knobs: HybridKnobs | None = None,
        seed: int = 0,
        fast_lane: bool = True,
    ) -> None:
        if workload.mode != "open":
            raise ValidationError("HybridEngine needs an open-loop workload")
        schedule = workload.arrival_schedule
        if schedule is None:
            assert workload.arrival_rate is not None
            schedule = ArrivalSchedule.constant(workload.arrival_rate)
        elif schedule.is_trace:
            raise ValidationError(
                "trace-replay schedules have no rate curve for the fluid model; "
                "run them through IdentificationEngine directly"
            )
        self.config = config
        self.workload = workload
        self.params = params or EngineModelParams()
        self.knobs = knobs or HybridKnobs()
        self.seed = int(seed)
        self.schedule = schedule
        self._fast_lane = bool(fast_lane)
        self.analytic = AnalyticEngineModel(self.params)
        self._engine: Optional[IdentificationEngine] = None
        self._rebuilds = 0
        self._task_stats: dict[TaskType, RunningStats] = {t: RunningStats() for t in TaskType}
        self._last_window_responses: list[float] = []
        #: signed per-window relative errors (DES − prediction)/DES.
        self._signed_errors: dict[str, list[float]] = {"throughput": [], "p95": []}
        #: completions of the window behind each signed error (noise floor).
        self._error_samples: dict[str, list[int]] = {"throughput": [], "p95": []}
        #: simulated seconds actually run through the DES (window spans).
        self._des_sim_time = 0.0

    # -- inner DES management -------------------------------------------------

    def _des_engine(self, now: float) -> IdentificationEngine:
        """The persistent inner DES, aligned to simulated time ``now``."""
        engine = self._engine
        if engine is None:
            engine = IdentificationEngine(
                self.config,
                WorkloadSpec(duration=self.workload.duration, warmup=0.0),
                self.params,
                seed=derive_seed(self.seed, "hybrid-engine", self._rebuilds),
                fast_lane=self._fast_lane,
            )
            self._engine = engine
        if engine.env.now < now:
            engine.env.fast_forward(now - engine.env.now)
        return engine

    def _window_arrivals(
        self, engine: IdentificationEngine, rate: float, until: float, epoch_index: int
    ) -> Generator[Any, None, None]:
        """Poisson arrivals at ``rate`` for one DES window.

        Each window draws from its own derived stream so windows are
        independent of how many epochs ran fluid in between — the run
        stays deterministic under any mode sequence.
        """
        env = engine.env
        rng = spawn_rng(derive_seed(self.seed, "hybrid", epoch_index))
        scale = 1.0 / rate
        while True:
            gap = float(rng.exponential(scale))
            if env.now + gap >= until:
                return
            yield engine._delay(gap)
            env.process(engine._lifecycle(), name="request")

    def _prime(self, engine: IdentificationEngine, count: int) -> None:
        """Inject the fluid model's in-flight cohort at window start.

        The primed requests occupy pools and CPU immediately; the window
        warm-up is sized so measurement starts only after this cohort has
        blended into the arrival flow.
        """
        for _ in range(count):
            engine.env.process(engine._lifecycle(), name="request")

    # -- mode decision --------------------------------------------------------

    def _des_reason(
        self,
        index: int,
        rate: float,
        prev_rate: Optional[float],
        fluid: OpenEpochResult,
        prev_saturated: bool,
        since_sample: int,
        sample_due: int,
    ) -> Optional[str]:
        if rate <= 0.0:
            return None  # nothing arrives; fluid (idle) is exact
        if index == 0:
            return "startup"
        if prev_rate is not None and prev_rate > 0:
            if abs(rate - prev_rate) > self.knobs.regime_threshold * prev_rate:
                return "regime-change"
        elif prev_rate == 0.0:
            return "regime-change"  # waking from an idle segment
        if fluid.saturated != prev_saturated:
            return "saturation-edge"
        if since_sample >= sample_due:
            return "sampling"
        return None

    # -- entry point ----------------------------------------------------------

    def run(self) -> HybridRunResult:
        wall_start = time.perf_counter()
        tracer = get_tracer()
        perf = get_perf()
        registry = get_registry()
        knobs = self.knobs
        duration = self.workload.duration
        agg = HybridAggregator()

        run_span = (
            tracer.start_span(
                "hybrid.run",
                config=str(self.config),
                duration=duration,
                seed=self.seed,
            )
            if tracer.enabled
            else None
        )

        corrections = {"throughput": 1.0, "mean": 1.0, "p95": 1.0}
        backlog = 0.0
        prev_rate: Optional[float] = None
        prev_saturated = False
        since_sample = 0
        sample_due = 1  # force an early calibration window
        for index, (start, end, rate) in enumerate(
            iter_epochs(self.schedule, duration, knobs.epoch)
        ):
            epoch_wall = time.perf_counter()
            entering_backlog = backlog
            fluid = self.analytic.evaluate_open(
                self.config, rate, backlog=backlog, dt=end - start
            )
            backlog = fluid.backlog
            reason = self._des_reason(
                index, rate, prev_rate, fluid, prev_saturated, since_sample, sample_due
            )
            span = (
                tracer.start_span(
                    "hybrid.epoch",
                    parent=run_span,
                    mode="des" if reason else "fluid",
                    reason=reason or "steady",
                    epoch_index=index,
                    start=start,
                    rate=rate,
                )
                if tracer.enabled
                else None
            )
            # Flow conservation makes un-saturated open-loop throughput exact
            # (served = offered); the DES-calibrated correction only carries
            # information where the fluid model prices capacity — at
            # saturation. Latency corrections apply everywhere.
            thr_corr = corrections["throughput"] if fluid.saturated else 1.0
            if reason is None:
                since_sample += 1
                agg.add_fluid(
                    EpochSample(
                        index=index,
                        start=start,
                        end=end,
                        mode="fluid",
                        rate=rate,
                        throughput=fluid.throughput * thr_corr,
                        response_mean=fluid.response_time * corrections["mean"],
                        response_p95=fluid.response_p95 * corrections["p95"],
                        cpu_usage=fluid.cpu_usage,
                        backlog=backlog,
                        saturated=fluid.saturated,
                    )
                )
            else:
                since_sample = 0
                sample_due = knobs.sample_every
                sample, excess = self._des_window(
                    index, start, end, rate, entering_backlog, fluid, corrections
                )
                agg.add_des(sample, self._last_window_responses)
                if excess is not None and excess > knobs.error_bound:
                    # prediction error beyond what window noise can explain:
                    # tighten the cadence until a window comes back inside.
                    sample_due = max(1, knobs.sample_every // 4)
            if span is not None:
                span.set("throughput", agg.epochs[-1].throughput)
                span.set("backlog", backlog)
                tracer.end_span(span)
            perf.record("hybrid_epoch", time.perf_counter() - epoch_wall)
            prev_rate = rate
            prev_saturated = fluid.saturated

        result = self._result(agg, corrections, time.perf_counter() - wall_start)
        if registry.enabled:
            counts = agg.mode_counts()
            epochs_total = registry.counter(
                "hybrid_epochs_total", "hybrid epochs by execution mode", ("mode",)
            )
            epochs_total.inc(counts["fluid"], mode="fluid")
            epochs_total.inc(counts["des"], mode="des")
            registry.gauge(
                "hybrid_des_time_fraction", "fraction of simulated time run as DES"
            ).set(result.des_time_fraction)
            registry.gauge(
                "hybrid_window_error_max", "worst fluid-vs-DES relative error"
            ).set(result.max_window_error)
            registry.gauge(
                "hybrid_error_bias", "run-level fluid-model bias", ("metric",)
            ).set(result.error_throughput_bias, metric="throughput")
            registry.gauge(
                "hybrid_error_bias", "run-level fluid-model bias", ("metric",)
            ).set(result.error_p95_bias, metric="p95")
            registry.gauge(
                "hybrid_error_bound", "configured relative error bound"
            ).set(knobs.error_bound)
        if run_span is not None:
            run_span.set("fluid_epochs", result.fluid_epochs)
            run_span.set("des_epochs", result.des_epochs)
            run_span.set("max_window_error", result.max_window_error)
            run_span.set("within_bound", result.within_bound)
            tracer.end_span(run_span)
        return result

    # -- DES sampling window --------------------------------------------------

    def _des_window(
        self,
        index: int,
        start: float,
        end: float,
        rate: float,
        entering_backlog: float,
        fluid: OpenEpochResult,
        corrections: dict[str, float],
    ) -> tuple[EpochSample, Optional[float]]:
        """Run one DES window at the head of epoch ``index``.

        Returns the epoch sample (DES-measured, extrapolated over the
        epoch) and the window's *noise-adjusted* error overage — raw
        relative error minus the window's own sampling-noise allowance
        (``None`` when the window completed too few requests to judge).
        """
        knobs = self.knobs
        engine = self._des_engine(start)
        env = engine.env

        # Warm-up long enough for the primed cohort to blend into the flow.
        warm = max(knobs.window_warmup, 3.0 * fluid.service_time)
        span_total = min(end - start, warm + knobs.window)
        warm = min(warm, 0.5 * span_total)
        win_end = start + span_total
        measure_start = start + warm

        prime = fluid.concurrency + min(entering_backlog, float(self.config.http))
        prime_n = min(int(round(prime)), int(knobs.prime_cap * self.config.http))
        self._prime(engine, prime_n)

        collector = MetricsCollector(warmup=measure_start)
        engine.metrics = collector
        env.process(
            self._window_arrivals(engine, rate, win_end, index), name="arrivals"
        )
        env.run(until=win_end)

        measured = win_end - measure_start
        des_thr = collector.completed / measured if measured > 0 else 0.0
        des_mean = collector.response_stats.mean if collector.completed else 0.0
        if collector.completed:
            percentiles = collector.response_reservoir.percentiles()
            des_p95 = percentiles["p95"]
            self._last_window_responses = [
                float(v) for v in collector.response_reservoir.values()
            ]
        else:
            des_p95 = 0.0
            self._last_window_responses = []
        for task, stats in collector.task_stats.items():
            self._task_stats[task].merge(stats)

        # Error probe: compare the corrected fluid prediction for this epoch
        # against what the DES actually measured. Signed errors accumulate
        # for the run-level bias (noise cancels); the noise-adjusted excess
        # drives cadence tightening.
        error: Optional[float] = None
        excess: Optional[float] = None
        enough = collector.completed >= knobs.min_window_samples
        thr_corr = corrections["throughput"] if fluid.saturated else 1.0
        if enough and fluid.throughput > 0:
            pred_thr = fluid.throughput * thr_corr
            pred_p95 = fluid.response_p95 * corrections["p95"]
            # one-sigma relative noise of the window's own estimators:
            # Poisson count for throughput, ~2× that for a tail quantile.
            sigma = 1.0 / math.sqrt(collector.completed)
            error = 0.0
            excess = 0.0
            if des_thr > 0:
                err_thr = (des_thr - pred_thr) / des_thr
                self._signed_errors["throughput"].append(err_thr)
                self._error_samples["throughput"].append(collector.completed)
                error = abs(err_thr)
                excess = max(0.0, abs(err_thr) - knobs.noise_allowance * sigma)
            if des_p95 > 0:
                err_p95 = (des_p95 - pred_p95) / des_p95
                self._signed_errors["p95"].append(err_p95)
                self._error_samples["p95"].append(collector.completed)
                error = max(error, abs(err_p95))
                excess = max(
                    0.0, abs(err_p95) - 2.0 * knobs.noise_allowance * sigma, excess
                )
            # Re-calibrate the fluid corrections (EWMA). The throughput
            # correction only learns from saturated windows — in stable
            # regime the ratio is 1 by conservation and any deviation the
            # window sees is its own sampling noise.
            a = knobs.correction_alpha
            if fluid.saturated and des_thr > 0:
                corrections["throughput"] += a * (
                    des_thr / fluid.throughput - corrections["throughput"]
                )
            if fluid.response_time > 0 and des_mean > 0:
                corrections["mean"] += a * (des_mean / fluid.response_time - corrections["mean"])
            if fluid.response_p95 > 0 and des_p95 > 0:
                corrections["p95"] += a * (des_p95 / fluid.response_p95 - corrections["p95"])

        # Drain in-flight requests without recording, then release the
        # engine for the next fluid span. A window that cannot drain within
        # the grace (deep saturation) discards the engine instead — the
        # next window starts from a freshly primed state.
        engine.metrics = MetricsCollector(warmup=math.inf)
        env.run(until=min(end, win_end + knobs.drain_grace))
        self._des_sim_time += env.now - start
        if env.peek() < math.inf:
            self._engine = None
            self._rebuilds += 1

        # In stable regime the fluid throughput (rate + backlog drain) is the
        # better epoch-level estimator than a 20 s window count extrapolated
        # 15×; the window's measurement enters through window_error and the
        # latency corrections instead. At saturation the DES count is the
        # ground truth the fluid model is being corrected toward.
        thr = des_thr if enough and fluid.saturated else fluid.throughput * thr_corr
        mean = des_mean if enough else fluid.response_time * corrections["mean"]
        p95 = des_p95 if enough else fluid.response_p95 * corrections["p95"]
        return (
            EpochSample(
                index=index,
                start=start,
                end=end,
                mode="des",
                rate=rate,
                throughput=thr,
                response_mean=mean,
                response_p95=p95,
                cpu_usage=fluid.cpu_usage,
                backlog=fluid.backlog,
                saturated=fluid.saturated,
                window_error=error,
            ),
            excess,
        )

    # -- result assembly ------------------------------------------------------

    def _result(
        self, agg: HybridAggregator, corrections: dict[str, float], wall: float
    ) -> HybridRunResult:
        duration = self.workload.duration
        counts = agg.mode_counts()
        errors = agg.window_errors()
        signed_thr = self._signed_errors["throughput"]
        signed_p95 = self._signed_errors["p95"]

        def noise_floor(samples: list[int], scale: float) -> float:
            # standard error of the mean signed error: each window's relative
            # error carries ~scale/√N sampling noise, independent across
            # windows, so the mean's noise is √(Σ 1/Nᵢ)·scale/W.
            if not samples:
                return 0.0
            sem = math.sqrt(sum(1.0 / n for n in samples)) / len(samples)
            return self.knobs.noise_allowance * scale * sem

        engine = self._engine
        pool_busy = (
            {name: engine.pools[name].occupancy() for name in POOL_NAMES}
            if engine is not None
            else {name: 0.0 for name in POOL_NAMES}
        )
        cpu = agg.cpu_summary()
        p = self.params
        node_power = p.node_idle_power_w + (
            p.node_max_power_w - p.node_idle_power_w
        ) * (cpu.mean if cpu.count else 0.0)
        try:
            percentiles = agg.percentiles()
        except ValidationError:
            percentiles = {}
        gpu_model = engine.gpu if engine is not None else None
        return HybridRunResult(
            config=self.config,
            workload=self.workload,
            seed=self.seed,
            user_response_time=agg.response_summary(),
            throughput=agg.completed / duration if duration > 0 else 0.0,
            completed_requests=agg.completed,
            task_times={str(t): s.summary() for t, s in self._task_stats.items()},
            pool_busy=pool_busy,
            gpu_memory_gb=(
                gpu_model.memory_gb(self.config.extract) if gpu_model is not None else 0.0
            ),
            system_memory_gb=(
                engine._system_memory_gb() if engine is not None else 0.0
            ),
            cpu_usage=cpu,
            gpu_utilization=RunningStats().summary(),
            response_percentiles=percentiles,
            node_energy_wh=node_power * duration / 3600.0,
            gpu_energy_wh=0.0,
            series=agg.series(),
            epochs=list(agg.epochs),
            fluid_epochs=counts["fluid"],
            des_epochs=counts["des"],
            des_time_fraction=self._des_sim_time / duration if duration > 0 else 0.0,
            window_errors=errors,
            max_window_error=max(errors) if errors else 0.0,
            mean_window_error=sum(errors) / len(errors) if errors else 0.0,
            error_throughput_bias=(
                abs(sum(signed_thr) / len(signed_thr)) if signed_thr else 0.0
            ),
            error_p95_bias=abs(sum(signed_p95) / len(signed_p95)) if signed_p95 else 0.0,
            error_throughput_noise=noise_floor(self._error_samples["throughput"], 1.0),
            error_p95_noise=noise_floor(self._error_samples["p95"], 2.0),
            error_bound=self.knobs.error_bound,
            corrections=dict(corrections),
            engine_rebuilds=self._rebuilds,
            wall_time_s=wall,
        )


def simulate_hybrid(
    config: ThreadPoolConfig,
    schedule: ArrivalSchedule,
    *,
    duration: float = 86400.0,
    params: EngineModelParams | None = None,
    knobs: HybridKnobs | None = None,
    seed: int = 0,
    fast_lane: bool = True,
) -> HybridRunResult:
    """Convenience one-call hybrid simulation of an arrival schedule."""
    workload = WorkloadSpec(
        arrival_schedule=schedule,
        duration=duration,
        warmup=0.0,
    )
    engine = HybridEngine(
        config, workload, params, knobs=knobs, seed=seed, fast_lane=fast_lane
    )
    return engine.run()

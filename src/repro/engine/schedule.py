"""Arrival-rate schedules for open-loop workloads.

The paper's protocol is a closed loop of N simultaneous clients — a
saturation test. Internet-scale services instead see *open-loop* demand
whose intensity varies over time: diurnal curves, spring campaign peaks
(paper Fig. 2), flash crowds when a species trends, and recorded
production traces. :class:`ArrivalSchedule` describes that demand as
either

- a **piecewise-constant rate curve** — tuples ``(start, rate)`` in
  requests/s, covering ``[0, ∞)``; the constructors
  :meth:`ArrivalSchedule.constant`, :meth:`ArrivalSchedule.piecewise`,
  :meth:`ArrivalSchedule.diurnal` and :meth:`ArrivalSchedule.flash_crowd`
  all build this form, or
- a **trace replay** — explicit arrival timestamps
  (:meth:`ArrivalSchedule.from_trace`, optionally loaded from a file of
  one timestamp per line), replayed verbatim.

Rate-curve schedules drive the engine's batched Poisson source on the
dedicated ``derive_seed(seed, "arrivals")`` stream: within a segment,
inter-arrival gaps are drawn in batches exactly as for a plain
``arrival_rate`` (a single constant segment is therefore byte-identical
to plain open-loop mode), and at a segment boundary the residual gap is
rescaled by the old/new rate ratio — the memoryless-rescaling
construction of an exact non-homogeneous Poisson process.

The same segment view feeds the fluid side: the epoch-stepped analytic
model and the :class:`~repro.engine.hybrid.HybridEngine` iterate
:meth:`segments` to track the changing rate without simulating events.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from repro.errors import ValidationError

__all__ = ["ArrivalSchedule"]

#: number of piecewise steps a continuous (diurnal) curve is discretized to.
_DIURNAL_STEPS = 96


def _check_rate(rate: float, where: str) -> float:
    rate = float(rate)
    if not math.isfinite(rate) or rate < 0:
        raise ValidationError(f"{where} must be finite and >= 0, got {rate}")
    return rate


@dataclass(frozen=True)
class ArrivalSchedule:
    """A time-varying open-loop demand description (see module docstring).

    Exactly one of :attr:`points` (piecewise-constant ``(start, rate)``
    steps) or :attr:`trace` (explicit arrival timestamps) is set. Use the
    classmethod constructors rather than ``__init__`` directly.
    """

    #: piecewise-constant steps ``((t0, r0), (t1, r1), ...)``, t0 == 0.
    points: tuple[tuple[float, float], ...] | None = None
    #: explicit arrival timestamps (trace replay), non-decreasing.
    trace: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        if (self.points is None) == (self.trace is None):
            raise ValidationError(
                "exactly one of points/trace must be set "
                "(use the ArrivalSchedule constructors)"
            )
        if self.points is not None:
            if not self.points:
                raise ValidationError("schedule must have at least one segment")
            times = [float(t) for t, _ in self.points]
            if any(not math.isfinite(t) for t in times):
                raise ValidationError("segment times must be finite")
            if times != sorted(times) or len(set(times)) != len(times):
                raise ValidationError("segment times must be strictly increasing")
            if times[0] != 0.0:
                raise ValidationError("schedule must start at t=0")
            rates = [_check_rate(r, "segment rate") for _, r in self.points]
            if not any(rates):
                raise ValidationError("schedule must have at least one positive rate")
            object.__setattr__(
                self, "points", tuple((t, r) for t, r in zip(times, rates))
            )
            object.__setattr__(self, "_times", tuple(times))
        if self.trace is not None:
            stamps = tuple(float(t) for t in self.trace)
            if not stamps:
                raise ValidationError("trace must contain at least one arrival")
            if any(not math.isfinite(t) or t < 0 for t in stamps):
                raise ValidationError("trace timestamps must be finite and >= 0")
            if any(b < a for a, b in zip(stamps, stamps[1:])):
                raise ValidationError("trace timestamps must be non-decreasing")
            object.__setattr__(self, "trace", stamps)

    # -- constructors ---------------------------------------------------------

    @classmethod
    def constant(cls, rate: float) -> "ArrivalSchedule":
        """A fixed ``rate`` (requests/s) — equivalent to plain ``arrival_rate``."""
        if _check_rate(rate, "rate") <= 0:
            raise ValidationError("constant rate must be positive")
        return cls(points=((0.0, float(rate)),))

    @classmethod
    def piecewise(cls, points: Iterable[tuple[float, float]]) -> "ArrivalSchedule":
        """Piecewise-constant steps ``[(t0, rate0), (t1, rate1), ...]``."""
        return cls(points=tuple((float(t), float(r)) for t, r in points))

    @classmethod
    def diurnal(
        cls,
        base_rate: float,
        peak_rate: float,
        *,
        period: float = 86400.0,
        peak_time: float = 0.58,
        steps: int = _DIURNAL_STEPS,
    ) -> "ArrivalSchedule":
        """A day/night sinusoid between ``base_rate`` and ``peak_rate``.

        ``peak_time`` places the peak as a fraction of the period (0.58 ≈
        14:00 for a midnight-anchored day). The curve repeats every
        ``period`` and is discretized into ``steps`` piecewise-constant
        segments per period — the same epochs the fluid model steps.
        """
        base = _check_rate(base_rate, "base_rate")
        peak = _check_rate(peak_rate, "peak_rate")
        if peak < base:
            raise ValidationError("peak_rate must be >= base_rate")
        if period <= 0 or not math.isfinite(period):
            raise ValidationError("period must be positive and finite")
        if steps < 2:
            raise ValidationError("steps must be >= 2")
        mid = 0.5 * (base + peak)
        amp = 0.5 * (peak - base)
        points = []
        for i in range(int(steps)):
            t = i / steps
            # segment rate at its midpoint, so the discretization is unbiased
            phase = 2.0 * math.pi * ((t + 0.5 / steps) - peak_time)
            points.append((t * period, mid + amp * math.cos(phase)))
        return cls(points=tuple(points))

    @classmethod
    def flash_crowd(
        cls,
        base_rate: float,
        peak_rate: float,
        *,
        at: float,
        ramp: float = 60.0,
        hold: float = 300.0,
        decay: float = 600.0,
        steps: int = 8,
    ) -> "ArrivalSchedule":
        """A flash crowd: ramp from ``base_rate`` to ``peak_rate`` at ``at``,
        hold, then decay back — each ramp discretized into ``steps``."""
        base = _check_rate(base_rate, "base_rate")
        peak = _check_rate(peak_rate, "peak_rate")
        if peak <= base:
            raise ValidationError("peak_rate must exceed base_rate")
        if at < 0 or ramp <= 0 or hold < 0 or decay <= 0:
            raise ValidationError("flash-crowd times must be positive (at >= 0)")
        if steps < 1:
            raise ValidationError("steps must be >= 1")
        points: list[tuple[float, float]] = [(0.0, base)] if at > 0 else []
        for i in range(int(steps)):  # linear ramp up, midpoint-sampled
            frac = (i + 0.5) / steps
            points.append((at + ramp * i / steps, base + (peak - base) * frac))
        points.append((at + ramp, peak))
        for i in range(int(steps)):  # linear decay down
            frac = 1.0 - (i + 0.5) / steps
            points.append((at + ramp + hold + decay * i / steps, base + (peak - base) * frac))
        points.append((at + ramp + hold + decay, base))
        return cls(points=tuple(points))

    @classmethod
    def from_trace(cls, source: str | Path | Sequence[float]) -> "ArrivalSchedule":
        """Trace replay from timestamps (or a file of one timestamp per line).

        Blank lines and ``#`` comments are skipped when reading a file.
        """
        if isinstance(source, (str, Path)):
            stamps = []
            for line_no, line in enumerate(Path(source).read_text().splitlines(), 1):
                text = line.split("#", 1)[0].strip()
                if not text:
                    continue
                try:
                    stamps.append(float(text))
                except ValueError:
                    raise ValidationError(
                        f"{source}:{line_no}: not a timestamp: {text!r}"
                    ) from None
            return cls(trace=tuple(stamps))
        return cls(trace=tuple(float(t) for t in source))

    # -- queries --------------------------------------------------------------

    @property
    def is_trace(self) -> bool:
        return self.trace is not None

    def rate_at(self, time: float) -> float:
        """Arrival rate (requests/s) in effect at ``time`` (O(log n))."""
        if self.points is None:
            raise ValidationError("trace schedules have no rate curve")
        index = bisect_right(self._times, time) - 1  # type: ignore[attr-defined]
        return self.points[max(0, index)][1]

    def segments(self, duration: float) -> tuple[tuple[float, float, float], ...]:
        """Piecewise-constant ``(start, end, rate)`` spans covering
        ``[0, duration)`` — the epochs the fluid model and the arrival
        source step through. Trace schedules have no segment view."""
        if self.points is None:
            raise ValidationError("trace schedules have no rate curve")
        if duration <= 0:
            raise ValidationError("duration must be positive")
        out: list[tuple[float, float, float]] = []
        for i, (start, rate) in enumerate(self.points):
            if start >= duration:
                break
            end = self.points[i + 1][0] if i + 1 < len(self.points) else duration
            out.append((start, min(end, duration), rate))
        return tuple(out)

    def arrivals_in(self, duration: float) -> float:
        """Expected arrivals over ``[0, duration)`` (exact for traces)."""
        if self.trace is not None:
            return float(sum(1 for t in self.trace if t < duration))
        return sum((end - start) * rate for start, end, rate in self.segments(duration))

    def mean_rate(self, duration: float) -> float:
        """Time-averaged arrival rate over ``[0, duration)``."""
        if duration <= 0:
            raise ValidationError("duration must be positive")
        return self.arrivals_in(duration) / duration

    def peak_rate(self, duration: float) -> float:
        """Highest segment rate over ``[0, duration)`` (trace: mean rate)."""
        if self.trace is not None:
            return self.mean_rate(duration)
        return max(rate for _, _, rate in self.segments(duration))

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        if self.trace is not None:
            return {"trace": list(self.trace)}
        return {"points": [[t, r] for t, r in self.points or ()]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ArrivalSchedule":
        if "trace" in data:
            return cls.from_trace(list(data["trace"]))
        if "points" in data:
            return cls.piecewise([(p[0], p[1]) for p in data["points"]])
        raise ValidationError("arrival schedule dict needs 'points' or 'trace'")

"""Quasi-static CPU contention model (utilization-based).

The engine node exposes a fixed number of cores. The model tracks *actual*
core consumption: a CPU-bound task that would use ``w`` cores uncontended
and is slowed down by a factor ``I`` draws ``w / I`` cores for ``I`` times
as long — its CPU *work* (core-seconds) is invariant, as in real processor
sharing. This keeps the feedback loop stable and physical: utilization ρ can
approach but not meaningfully exceed 1, and the slowdown is a function of ρ::

    I(ρ) = 1 + c · ρⁿ / (1 - min(ρ, ρ_max))      (ρ ≤ 1)
    I(ρ) = I(ρ_max) · ρ ** κ                     (ρ > 1, defensive)

The Hill-type numerator ρⁿ keeps the slowdown ≈ 1 until high load, while the
``1/(1-ρ)`` pole makes it rise sharply toward saturation — the knee shape
measured on time-shared multicore nodes. ``c`` scales the effect, ``n``
controls how late the knee appears, ρ_max bounds the maximum slowdown so the
closed loop stays numerically stable.

The model is *quasi-static*: a task's slowdown is computed once, when it
starts, from the utilization at that instant. Over the paper's 23-minute
steady-state runs this approximates processor sharing closely while keeping
the event loop O(1) per event.
"""

from __future__ import annotations

from repro.utils.validation import check_in_range, check_positive

__all__ = ["CpuContentionModel", "inflation_factor"]


def inflation_factor(
    ratio: float,
    scale: float,
    sharpness: float,
    rho_max: float = 0.97,
    kappa: float = 1.5,
) -> float:
    """Service-time slowdown for a CPU utilization ``ratio``.

    Shared by the DES (:class:`CpuContentionModel`) and the analytic model
    (:class:`repro.engine.analytic.AnalyticEngineModel`) so the two stay in
    exact agreement on the contention curve.
    """
    ratio = min(ratio, 8.0)  # defensive clamp for analytic transients
    inflation = 1.0
    if scale != 0.0 and ratio > 0.0:
        rho = ratio if ratio < rho_max else rho_max
        inflation = 1.0 + scale * rho**sharpness / (1.0 - rho)
    if ratio > 1.0:
        inflation *= ratio**kappa
    return inflation


class CpuContentionModel:
    """Tracks actual core draw and converts utilization to slowdown."""

    __slots__ = (
        "cores",
        "scale",
        "sharpness",
        "rho_max",
        "kappa",
        "_demand",
        "_base_load",
        "_last_time",
        "_usage_integral",
    )

    def __init__(
        self,
        cores: float,
        *,
        base_load: float = 0.0,
        scale: float = 0.05,
        sharpness: float = 6.0,
        rho_max: float = 0.97,
        kappa: float = 1.5,
    ) -> None:
        self.cores = check_positive("cores", cores)
        if scale < 0:
            raise ValueError(f"scale must be >= 0, got {scale}")
        if sharpness < 0:
            raise ValueError(f"sharpness must be >= 0, got {sharpness}")
        self.scale = float(scale)
        self.sharpness = float(sharpness)
        self.rho_max = check_in_range("rho_max", rho_max, 0.0, 1.0, inclusive=False)
        if kappa < 1:
            raise ValueError(f"kappa must be >= 1, got {kappa}")
        self.kappa = float(kappa)
        if base_load < 0:
            raise ValueError("base_load must be >= 0")
        self._base_load = float(base_load)
        self._demand = float(base_load)
        self._last_time = 0.0
        self._usage_integral = 0.0

    @property
    def demand(self) -> float:
        """Current core draw (incl. base load: background + pool standby)."""
        return self._demand

    def usage(self) -> float:
        """Instantaneous CPU usage fraction in [0, 1]."""
        return min(1.0, self._demand / self.cores)

    def inflation(self) -> float:
        """Slowdown multiplier for CPU-bound work starting *now*."""
        return inflation_factor(
            self._demand / self.cores,
            self.scale,
            self.sharpness,
            self.rho_max,
            self.kappa,
        )

    # -- draw bookkeeping --------------------------------------------------------

    def acquire(self, draw: float, now: float) -> None:
        """A task drawing ``draw`` actual cores becomes active."""
        if draw < 0:
            raise ValueError("core draw must be >= 0")
        self._advance(now)
        self._demand += draw

    def release(self, draw: float, now: float) -> None:
        """A task drawing ``draw`` cores finished."""
        self._advance(now)
        self._demand = max(self._base_load, self._demand - draw)

    def _advance(self, now: float) -> None:
        dt = now - self._last_time
        if dt > 0:
            self._usage_integral += self.usage() * dt
            self._last_time = now

    # -- monitoring ----------------------------------------------------------------

    def usage_integral(self, now: float) -> float:
        """∫ usage dt up to ``now`` (for exact windowed averages)."""
        self._advance(now)
        return self._usage_integral

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CpuContentionModel(cores={self.cores}, demand={self._demand:.2f}, "
            f"usage={self.usage():.0%})"
        )

"""Simulation of the Pl@ntNet Identification Engine.

The engine (paper Sec. II-A) identifies plant species from user photos. Its
performance is governed by four thread pools (paper Table II):

============ ===== ============================================= ========
Thread pool  Size  Role                                          Hardware
============ ===== ============================================= ========
HTTP         40    simultaneous requests being processed         CPU
Download     40    simultaneous images being downloaded          CPU
Extract      7     simultaneous DNN inferences on one GPU        GPU
Simsearch    40    simultaneous similarity searches              CPU
============ ===== ============================================= ========

Each request runs the nine-step pipeline of paper Table I (pre-process,
wait-download, download, wait-extract, extract, process, wait-simsearch,
simsearch, post-process). This module reproduces that system as a
discrete-event simulation with:

- a closed-loop workload of N simultaneous requests,
- a CPU-contention model (40 available cores; service-time inflation when
  aggregate demand exceeds supply),
- a GPU model (per-inference latency growing with concurrency; memory
  footprint growing with the extract pool size),
- a monitor sampling every metric the paper reports at 10 s intervals.

The free constants of the model are calibrated against the paper's measured
numbers — see :mod:`repro.engine.calibration`.

A fast analytic (fluid / approximate-MVA) twin of the same model lives in
:mod:`repro.engine.analytic` for cheap search-space exploration and for the
DES-vs-analytic ablation.
"""

from repro.engine.config import (
    EngineModelParams,
    ThreadPoolConfig,
    WorkloadSpec,
    BASELINE_CONFIG,
    PAPER_SPACE_BOUNDS,
)
from repro.engine.tasks import TaskType
from repro.engine.engine import IdentificationEngine, EngineRunResult, simulate_engine
from repro.engine.analytic import (
    AnalyticEngineModel,
    AnalyticResult,
    OpenEpochResult,
    SATURATION_RHO,
)
from repro.engine.schedule import ArrivalSchedule
from repro.engine.hybrid import HybridEngine, HybridKnobs, HybridRunResult, simulate_hybrid
from repro.engine.gpu import GpuModel
from repro.engine.cpumodel import CpuContentionModel

__all__ = [
    "EngineModelParams",
    "ThreadPoolConfig",
    "WorkloadSpec",
    "BASELINE_CONFIG",
    "PAPER_SPACE_BOUNDS",
    "TaskType",
    "IdentificationEngine",
    "EngineRunResult",
    "simulate_engine",
    "AnalyticEngineModel",
    "AnalyticResult",
    "OpenEpochResult",
    "SATURATION_RHO",
    "ArrivalSchedule",
    "HybridEngine",
    "HybridKnobs",
    "HybridRunResult",
    "simulate_hybrid",
    "GpuModel",
    "CpuContentionModel",
]

"""Phase III: the reproducibility summary.

At the end of computations the methodology emits everything another
researcher needs to reproduce the result: the optimization problem
definition, the sample-selection method, the search algorithm with its
hyperparameters, every point evaluated, and the best configuration found
(paper Sec. III-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.utils.tables import Table

__all__ = ["ReproducibilitySummary"]


@dataclass
class ReproducibilitySummary:
    """The Phase III summary of one optimization campaign."""

    #: Phase I: variables, objectives, constraints (problem.describe()).
    problem: dict[str, Any]
    #: sample-selection method (e.g. ``{"generator": "lhs", "n_points": 45}``).
    sampling: dict[str, Any]
    #: search algorithm and hyperparameters.
    algorithm: dict[str, Any]
    #: every evaluated point: [{"configuration": ..., "metrics": ..., "value": ...}].
    evaluations: list[dict[str, Any]] = field(default_factory=list)
    #: best configuration found and its metrics.
    best_configuration: dict[str, Any] = field(default_factory=dict)
    best_value: float = float("nan")
    #: wall-clock of the whole campaign (for the parallel-speedup claims).
    wall_clock_s: float = 0.0
    #: how many evaluations were needed until the incumbent stopped improving.
    convergence_evaluation: int | None = None
    #: where the campaign's time went: pooled suggest/evaluate/tell seconds
    #: (see :mod:`repro.observability.profile`) — a summary that explains
    #: its own cost.
    cost_profile: dict[str, Any] = field(default_factory=dict)
    #: live-watchdog rollup (``CampaignWatchdog.summary()``): alert totals
    #: by kind plus the structured alerts themselves. Empty when no
    #: watchdog was armed.
    alerts: dict[str, Any] = field(default_factory=dict)

    @property
    def n_evaluations(self) -> int:
        return len(self.evaluations)

    def to_dict(self) -> dict[str, Any]:
        return {
            "problem": self.problem,
            "sampling": self.sampling,
            "algorithm": self.algorithm,
            "evaluations": self.evaluations,
            "best_configuration": self.best_configuration,
            "best_value": self.best_value,
            "wall_clock_s": self.wall_clock_s,
            "convergence_evaluation": self.convergence_evaluation,
            "cost_profile": dict(self.cost_profile),
            "alerts": dict(self.alerts),
        }

    def render(self) -> str:
        """Human-readable summary (what ``e2clab optimize`` prints)."""
        lines = ["=== Optimization summary (Phase III) ==="]
        lines.append(f"objectives:   {self.problem.get('objectives')}")
        lines.append(f"constraints:  {self.problem.get('constraints')}")
        lines.append(f"sampling:     {self.sampling}")
        lines.append(f"algorithm:    {self.algorithm}")
        lines.append(
            f"evaluations:  {self.n_evaluations}"
            + (
                f" (converged after {self.convergence_evaluation})"
                if self.convergence_evaluation is not None
                else ""
            )
        )
        lines.append(f"wall clock:   {self.wall_clock_s:.2f} s")
        if self.cost_profile:
            fractions = self.cost_profile.get("fractions", {})
            lines.append(
                "cost profile: "
                f"suggest {self.cost_profile.get('suggest_s', 0.0):.3f} s "
                f"({fractions.get('suggest_s', 0.0):.0%}) | "
                f"evaluate {self.cost_profile.get('evaluate_s', 0.0):.3f} s "
                f"({fractions.get('evaluate_s', 0.0):.0%}) | "
                f"tell {self.cost_profile.get('tell_s', 0.0):.3f} s "
                f"({fractions.get('tell_s', 0.0):.0%})"
            )
            percentiles = self.cost_profile.get("percentiles") or {}
            for key in ("suggest_s", "evaluate_s", "tell_s", "queue_wait_s"):
                stats = percentiles.get(key)
                if not stats:
                    continue
                label = key[: -len("_s")].replace("_", "-")
                lines.append(
                    f"  {label + ':':<12s}"
                    f"p50 {stats.get('p50', float('nan')):.4f} s | "
                    f"p90 {stats.get('p90', float('nan')):.4f} s | "
                    f"p99 {stats.get('p99', float('nan')):.4f} s"
                )
            retries = int(self.cost_profile.get("retries", 0))
            timeouts = int(self.cost_profile.get("timeouts", 0))
            if retries or timeouts:
                lines.append(
                    f"fault tolerance: {retries} retried attempts, {timeouts} timeouts"
                )
        if self.alerts:
            by_kind = self.alerts.get("by_kind", {})
            detail = ", ".join(f"{k}={v}" for k, v in by_kind.items()) or "none"
            lines.append(
                f"watchdog:     {self.alerts.get('total', 0)} alerts ({detail})"
            )
        lines.append(f"best value:   {self.best_value:.6g}")
        table = Table(["variable", "best value"], title="best configuration")
        for key, value in self.best_configuration.items():
            table.add_row([key, value])
        lines.append(table.render())
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()

"""The ``optimizer_conf`` configuration file (paper Sec. V-A).

The whole optimization cycle is defined through a configuration structure
that "can be easily adapted to different optimization problems". This
module parses that structure (a dict, or a JSON file) into typed pieces:
the search :class:`~repro.bayesopt.space.Space`, the
:class:`~repro.optimizer.problem.OptimizationProblem`, the search
algorithm, and the trial scheduler.

Example::

    conf = OptimizerConf.from_dict({
        "name": "plantnet_engine",
        "variables": [
            {"name": "http", "type": "integer", "low": 20, "high": 60},
            {"name": "download", "type": "integer", "low": 20, "high": 60},
            {"name": "simsearch", "type": "integer", "low": 20, "high": 60},
            {"name": "extract", "type": "integer", "low": 3, "high": 9},
        ],
        "objectives": [{"metric": "user_resp_time", "mode": "min"}],
        "algorithm": {
            "base_estimator": "ET",
            "n_initial_points": 45,
            "initial_point_generator": "lhs",
            "acq_func": "gp_hedge",
        },
        "max_concurrent": 2,
        "num_samples": 10,
    })
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.bayesopt.space import Categorical, Dimension, Integer, Real, Space
from repro.errors import ValidationError
from repro.faults import FaultInjector, FaultSpec
from repro.optimizer.problem import MetricConstraint, Objective, OptimizationProblem
from repro.search.algos import SearchAlgorithm, SurrogateSearch
from repro.search.schedulers import AsyncHyperBandScheduler, FIFOScheduler, TrialScheduler
from repro.utils.serialization import load_json

__all__ = ["OptimizerConf"]


def _parse_dimension(spec: Mapping[str, Any]) -> Dimension:
    kind = str(spec.get("type", "")).lower()
    name = spec.get("name", "")
    if not name:
        raise ValidationError(f"variable needs a name: {spec}")
    if kind == "integer":
        return Integer(int(spec["low"]), int(spec["high"]), name=name)
    if kind == "real":
        return Real(
            float(spec["low"]),
            float(spec["high"]),
            prior=spec.get("prior", "uniform"),
            name=name,
        )
    if kind == "categorical":
        return Categorical(list(spec["categories"]), name=name)
    raise ValidationError(f"unknown variable type {kind!r} for {name!r}")


@dataclass
class OptimizerConf:
    """Typed view of an ``optimizer_conf`` document."""

    name: str
    variables: list[dict[str, Any]]
    objectives: list[dict[str, Any]]
    constraints: list[dict[str, Any]] = field(default_factory=list)
    algorithm: dict[str, Any] = field(default_factory=dict)
    scheduler: dict[str, Any] = field(default_factory=dict)
    num_samples: int = 10
    max_concurrent: int | None = None
    executor: str = "sync"
    max_workers: int = 4
    seed: int | None = None
    #: repeat count and duration for the final validation campaign
    #: (``e2clab optimize --repeat 6 --duration 1380``).
    repeat: int = 0
    duration: float | None = None
    workdir: str = ".repro-optimizations"
    #: trace + meter the whole run and export ``spans.jsonl`` /
    #: ``metrics.json`` / ``metrics.prom`` into the experiment directory
    #: (the ``e2clab-repro optimize --trace`` switch).
    observability: bool = False
    #: attach the live HTTP monitor to the campaign: a port (``8080``) or
    #: ``"HOST:PORT"`` string (the ``optimize --serve`` switch; port ``0``
    #: binds an ephemeral port published in the run dir's ``monitor.json``).
    #: Implies span recording for the event stream. ``None`` disables.
    serve: str | int | None = None
    #: fault tolerance — how many times a failed/hung trial is retried
    #: before surrendering to the search algorithm's ``on_trial_error``.
    max_retries: int = 0
    #: base of the exponential backoff between retry attempts (seconds).
    retry_backoff_s: float = 0.0
    #: per-trial wall-clock timeout in seconds (``None`` disables).
    trial_timeout_s: float | None = None
    #: persist campaign state every N completed trials (``--resume`` input).
    checkpoint_every: int = 1
    #: deterministic fault-injection rates (see ``repro.faults.FaultSpec``),
    #: e.g. ``{"transient": 0.2, "straggler": 0.1}``. Empty disables.
    faults: dict[str, Any] = field(default_factory=dict)
    #: live-watchdog thresholds (see ``repro.observability.WatchdogConfig``),
    #: e.g. ``{"straggler_zscore": 3.0, "stall_patience": 10}``. A non-empty
    #: block arms the watchdog (and implies span recording for its stream);
    #: pass ``{"enabled": True}`` to arm it with pure defaults.
    watchdog: dict[str, Any] = field(default_factory=dict)
    #: distributed-execution options for ``executor: "store"`` (see
    #: ``repro.search.backends.StoreBackend``), e.g. ``{"lease_s": 30,
    #: "local_workers": 2, "spawn": "cli"}``. ``store_dir`` and ``run_dir``
    #: default to the campaign's experiment directory; ``spawn: "none"``
    #: relies entirely on elastic ``python -m repro worker`` joiners.
    store: dict[str, Any] = field(default_factory=dict)
    #: evaluation memoization (see ``repro.search.evalcache.EvalCache``),
    #: e.g. ``{"enabled": True, "min_replicates": 1}``. Duplicate
    #: configurations proposed by the search are then served from the cache
    #: instead of re-simulated; the cache persists as ``evalcache.jsonl`` in
    #: the run directory so ``--resume`` starts warm. Empty disables.
    eval_cache: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.variables:
            raise ValidationError("optimizer_conf declares no variables")
        if not self.objectives:
            raise ValidationError("optimizer_conf declares no objectives")
        if self.num_samples < 1:
            raise ValidationError("num_samples must be >= 1")
        if self.repeat < 0:
            raise ValidationError("repeat must be >= 0")
        if self.max_retries < 0:
            raise ValidationError("max_retries must be >= 0")
        if self.retry_backoff_s < 0:
            raise ValidationError("retry_backoff_s must be >= 0")
        if self.trial_timeout_s is not None and self.trial_timeout_s <= 0:
            raise ValidationError("trial_timeout_s must be > 0")
        if self.checkpoint_every < 1:
            raise ValidationError("checkpoint_every must be >= 1")
        if self.serve is not None:
            from repro.observability.live import parse_serve_spec

            parse_serve_spec(self.serve)  # validate the spec early
        if self.faults:
            self.build_fault_injector()  # validate rates early
        if self.watchdog:
            self.build_watchdog()  # validate thresholds early
        if self.eval_cache:
            self.build_eval_cache()  # validate the block early

    # -- constructors ----------------------------------------------------------------

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "OptimizerConf":
        known = {f for f in cls.__dataclass_fields__}  # type: ignore[attr-defined]
        unknown = set(data) - known
        if unknown:
            raise ValidationError(f"unknown optimizer_conf keys: {sorted(unknown)}")
        return cls(**dict(data))  # type: ignore[arg-type]

    @classmethod
    def from_json(cls, path: str | Path) -> "OptimizerConf":
        return cls.from_dict(load_json(path))

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form, round-trippable through :meth:`from_dict`.

        Saved next to the archive on fresh runs so ``--resume`` can rebuild
        the exact campaign without the user re-passing the conf file.
        """
        import dataclasses

        return dataclasses.asdict(self)

    # -- builders ---------------------------------------------------------------------

    def build_space(self) -> Space:
        return Space([_parse_dimension(spec) for spec in self.variables])

    def build_problem(self) -> OptimizationProblem:
        objectives = [
            Objective(
                metric=o["metric"],
                mode=o.get("mode", "min"),
                weight=float(o.get("weight", 1.0)),
            )
            for o in self.objectives
        ]
        constraints = [
            MetricConstraint(
                metric=c["metric"], bound=float(c["bound"]), kind=c.get("kind", "<=")
            )
            for c in self.constraints
        ]
        return OptimizationProblem(self.build_space(), objectives, constraints=constraints)

    def build_search(self, space: Space) -> SearchAlgorithm:
        """Build the search algorithm from the ``algorithm`` block.

        Unrecognized keys forward to :class:`SurrogateSearch` and on to
        :class:`repro.bayesopt.Optimizer`, so the suggest hot-path knobs —
        ``batch_size``, ``refit_every``, ``incremental``,
        ``background_refit``, ``fit_jobs`` — are all configurable here.
        """
        algo = dict(self.algorithm)
        kind = algo.pop("search", "surrogate").lower()
        if kind in ("surrogate", "skopt"):
            algo.setdefault("base_estimator", "ET")
            algo.setdefault("initial_point_generator", "lhs")
            algo.setdefault("acq_func", "gp_hedge")
            algo.setdefault("random_state", self.seed)
            return SurrogateSearch(space, mode="min", **algo)
        if kind == "random":
            from repro.search.algos import RandomSearch

            return RandomSearch(space, mode="min", seed=self.seed)
        raise ValidationError(f"unknown search algorithm {kind!r}")

    def build_scheduler(self) -> TrialScheduler:
        sched = dict(self.scheduler)
        kind = sched.pop("type", "fifo").lower()
        if kind == "fifo":
            return FIFOScheduler("min")
        if kind in ("asha", "async_hyperband", "asynchyperband"):
            return AsyncHyperBandScheduler(mode="min", **sched)
        raise ValidationError(f"unknown scheduler {kind!r}")

    def build_fault_injector(self) -> FaultInjector | None:
        """A deterministic fault injector for the declared rates, or ``None``."""
        if not self.faults:
            return None
        spec = dict(self.faults)
        spec.setdefault("seed", self.seed or 0)
        return FaultInjector(FaultSpec.from_dict(spec))

    def build_eval_cache(self, path: str | Path | None = None) -> "Any | None":
        """A memoizing :class:`~repro.search.evalcache.EvalCache`, or ``None``.

        The cache key covers the configuration *and* a fingerprint of
        everything else that determines a result — the conf name, the
        campaign seed, and any user-supplied ``fingerprint`` entry — so two
        campaigns with different seeds never share entries.
        """
        if not self.eval_cache:
            return None
        spec = dict(self.eval_cache)
        if not spec.pop("enabled", True):
            return None
        from repro.search.evalcache import EvalCache

        fingerprint = {
            "name": self.name,
            "seed": self.seed,
            "extra": spec.pop("fingerprint", None),
        }
        min_replicates = int(spec.pop("min_replicates", 1))
        if spec:
            raise ValidationError(f"unknown eval_cache keys: {sorted(spec)}")
        return EvalCache(
            path=path, fingerprint=fingerprint, min_replicates=min_replicates
        )

    def build_watchdog(self) -> "Any | None":
        """A configured live watchdog, or ``None`` when the block is empty."""
        if not self.watchdog:
            return None
        from repro.observability.watchdog import CampaignWatchdog, WatchdogConfig

        spec = dict(self.watchdog)
        spec.pop("enabled", None)  # {"enabled": True} arms pure defaults
        return CampaignWatchdog(WatchdogConfig.from_dict(spec))

    def algorithm_info(self) -> dict[str, Any]:
        info = {"search": self.algorithm.get("search", "surrogate")}
        info.update({k: v for k, v in self.algorithm.items() if k != "search"})
        return info

    def sampling_info(self) -> dict[str, Any]:
        return {
            "generator": self.algorithm.get("initial_point_generator", "lhs"),
            "n_points": self.algorithm.get("n_initial_points", 10),
        }

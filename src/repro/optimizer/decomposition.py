"""Sub-problem decomposition (paper Fig. 4, left / Sec. III-A option 1).

"One may focus the optimization on specific parts of the infrastructure
[...] by defining multiple, per infrastructure, optimization problems.
This approach reduces the search space complexity (in case of use cases
with large search spaces) and hence the computing time."

:class:`DecomposedOptimization` implements that strategy generically:
partition the problem's variables into groups (e.g. per layer: edge / fog
/ cloud), then cyclically optimize one group at a time while the others
stay at the incumbent — block-coordinate descent with a Bayesian optimizer
per block.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.bayesopt.optimizer import Optimizer
from repro.bayesopt.space import Space
from repro.errors import OptimizationError, ValidationError
from repro.optimizer.problem import OptimizationProblem

__all__ = ["DecomposedOptimization", "DecompositionResult"]

Evaluator = Callable[[dict[str, Any]], Mapping[str, float]]


@dataclass
class DecompositionResult:
    """Outcome of a block-coordinate campaign."""

    best_configuration: dict[str, Any]
    best_value: float
    n_evaluations: int
    wall_clock_s: float
    #: best value after each (round, group) block, in execution order.
    block_history: list[tuple[int, str, float]] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "best_configuration": self.best_configuration,
            "best_value": self.best_value,
            "n_evaluations": self.n_evaluations,
            "wall_clock_s": self.wall_clock_s,
            "block_history": [list(entry) for entry in self.block_history],
        }


class DecomposedOptimization:
    """Block-coordinate optimization over named variable groups.

    Parameters
    ----------
    problem:
        The full optimization problem (space + objectives + constraints).
    evaluator:
        Full-configuration evaluator returning the metrics mapping.
    groups:
        ``{"edge": ["dev_freq", ...], "cloud": ["http", ...]}`` — a
        partition of the space's dimension names (every name exactly once).
    """

    def __init__(
        self,
        problem: OptimizationProblem,
        evaluator: Evaluator,
        groups: Mapping[str, Sequence[str]],
        *,
        seed: int | None = None,
    ) -> None:
        self.problem = problem
        self.evaluator = evaluator
        self.seed = seed
        names = problem.space.names
        assigned = [name for group in groups.values() for name in group]
        if sorted(assigned) != sorted(names):
            raise ValidationError(
                f"groups must partition the space dimensions {names}, got {sorted(assigned)}"
            )
        if any(not group for group in groups.values()):
            raise ValidationError("empty variable group")
        self.groups = {key: list(value) for key, value in groups.items()}
        self._dim_by_name = {dim.name: dim for dim in problem.space}

    def _initial_configuration(self) -> dict[str, Any]:
        """Mid-space starting incumbent."""
        return {
            dim.name: dim.from_unit(0.5) for dim in self.problem.space
        }

    def run(
        self,
        *,
        rounds: int = 2,
        budget_per_block: int = 10,
        initial_configuration: Mapping[str, Any] | None = None,
    ) -> DecompositionResult:
        """Cyclic block optimization; total budget = rounds × groups × block."""
        if rounds < 1:
            raise ValidationError("rounds must be >= 1")
        if budget_per_block < 2:
            raise ValidationError("budget_per_block must be >= 2")

        incumbent = dict(initial_configuration or self._initial_configuration())
        missing = set(self.problem.space.names) - set(incumbent)
        if missing:
            raise ValidationError(f"initial configuration misses variables: {sorted(missing)}")

        start = time.perf_counter()
        evaluations = 0
        best_value = float("inf")
        best_config = dict(incumbent)
        history: list[tuple[int, str, float]] = []

        for round_index in range(1, rounds + 1):
            for group_name, variables in self.groups.items():
                sub_space = Space([self._dim_by_name[name] for name in variables])
                optimizer = Optimizer(
                    sub_space,
                    base_estimator="ET",
                    n_initial_points=max(2, budget_per_block // 2),
                    initial_point_generator="lhs",
                    acq_func="gp_hedge",
                    random_state=None
                    if self.seed is None
                    else self.seed + 97 * round_index + hash(group_name) % 1000,
                )
                for _ in range(budget_per_block):
                    sub_point = optimizer.ask()
                    config = dict(incumbent)
                    config.update(zip(variables, sub_point))
                    metrics = self.evaluator(config)
                    value = self.problem.scalarize(metrics)
                    evaluations += 1
                    optimizer.tell(sub_point, value)
                    if value < best_value:
                        best_value = value
                        best_config = dict(config)
                result = optimizer.result()
                incumbent.update(zip(variables, result.x))
                history.append((round_index, group_name, best_value))

        if best_value == float("inf"):
            raise OptimizationError("no finite evaluation in the whole campaign")
        return DecompositionResult(
            best_configuration=best_config,
            best_value=best_value,
            n_evaluations=evaluations,
            wall_clock_s=time.perf_counter() - start,
            block_history=history,
        )

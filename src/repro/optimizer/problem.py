"""Phase I: the optimization problem (paper Eq. 1).

An :class:`OptimizationProblem` is

- **variables** — a :class:`~repro.bayesopt.space.Space` whose bounds are
  Eq. 1's box constraints;
- **objectives** — one or more metrics with a direction (min/max) and a
  weight; multiple objectives are scalarized by the weighted sum of
  normalized signed values (and a Pareto front can be extracted from the
  evaluation history);
- **constraints** — metric constraints such as "response time ≤ 4 s"
  (Eq. 1's inequality constraints), enforced by penalty.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.bayesopt.space import Space
from repro.errors import ValidationError

__all__ = ["Objective", "MetricConstraint", "OptimizationProblem"]


@dataclass(frozen=True)
class Objective:
    """One metric to optimize."""

    metric: str
    mode: str = "min"
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.mode not in ("min", "max"):
            raise ValidationError(f"mode must be 'min' or 'max', got {self.mode!r}")
        if self.weight <= 0:
            raise ValidationError("objective weight must be > 0")

    def signed(self, value: float) -> float:
        """Value in minimization convention."""
        return value if self.mode == "min" else -value


@dataclass(frozen=True)
class MetricConstraint:
    """An inequality constraint on an output metric (Eq. 1's g_j)."""

    metric: str
    bound: float
    kind: str = "<="

    def __post_init__(self) -> None:
        if self.kind not in ("<=", ">="):
            raise ValidationError(f"kind must be '<=' or '>=', got {self.kind!r}")

    def violation(self, value: float) -> float:
        """Amount by which ``value`` violates the constraint (0 if ok)."""
        if self.kind == "<=":
            return max(0.0, value - self.bound)
        return max(0.0, self.bound - value)

    def satisfied(self, value: float) -> bool:
        return self.violation(value) == 0.0

    def __str__(self) -> str:
        return f"{self.metric} {self.kind} {self.bound}"


class OptimizationProblem:
    """Variables + objective(s) + constraints, with scalarization helpers."""

    def __init__(
        self,
        space: Space,
        objectives: Objective | Sequence[Objective],
        *,
        constraints: Sequence[MetricConstraint] = (),
        constraint_penalty: float = 1e3,
    ) -> None:
        self.space = space
        self.objectives = (
            [objectives] if isinstance(objectives, Objective) else list(objectives)
        )
        if not self.objectives:
            raise ValidationError("problem needs at least one objective")
        metric_names = [o.metric for o in self.objectives]
        if len(set(metric_names)) != len(metric_names):
            raise ValidationError(f"duplicate objective metrics: {metric_names}")
        self.constraints = list(constraints)
        if constraint_penalty <= 0:
            raise ValidationError("constraint_penalty must be > 0")
        self.constraint_penalty = float(constraint_penalty)

    # -- basic properties --------------------------------------------------------------

    @property
    def is_single_objective(self) -> bool:
        return len(self.objectives) == 1

    @property
    def primary_metric(self) -> str:
        return self.objectives[0].metric

    @property
    def primary_mode(self) -> str:
        return self.objectives[0].mode

    # -- evaluation ---------------------------------------------------------------------

    def _require(self, metrics: Mapping[str, float], metric: str) -> float:
        try:
            return float(metrics[metric])
        except KeyError:
            raise ValidationError(
                f"evaluation produced no metric {metric!r}; has: {sorted(metrics)}"
            ) from None

    def feasible(self, metrics: Mapping[str, float]) -> bool:
        """Whether all metric constraints hold."""
        return all(c.satisfied(self._require(metrics, c.metric)) for c in self.constraints)

    def scalarize(self, metrics: Mapping[str, float]) -> float:
        """Weighted signed sum of objectives plus constraint penalties.

        Always a *minimization* value. Infeasible points receive a penalty
        proportional to the violation so the optimizer is pushed back into
        the feasible region rather than hitting a cliff.
        """
        total = 0.0
        for objective in self.objectives:
            total += objective.weight * objective.signed(
                self._require(metrics, objective.metric)
            )
        for constraint in self.constraints:
            violation = constraint.violation(self._require(metrics, constraint.metric))
            if violation > 0:
                total += self.constraint_penalty * (1.0 + violation)
        return total

    # -- multi-objective helpers -----------------------------------------------------------

    def dominates(self, a: Mapping[str, float], b: Mapping[str, float]) -> bool:
        """Pareto dominance of evaluation ``a`` over ``b`` (signed values)."""
        at_least_as_good = True
        strictly_better = False
        for objective in self.objectives:
            va = objective.signed(self._require(a, objective.metric))
            vb = objective.signed(self._require(b, objective.metric))
            if va > vb + 1e-12:
                at_least_as_good = False
                break
            if va < vb - 1e-12:
                strictly_better = True
        return at_least_as_good and strictly_better

    def pareto_front(
        self, evaluations: Sequence[Mapping[str, float]]
    ) -> list[int]:
        """Indices of non-dominated feasible evaluations."""
        feasible = [
            i for i, metrics in enumerate(evaluations) if self.feasible(metrics)
        ]
        front: list[int] = []
        for i in feasible:
            if not any(
                self.dominates(evaluations[j], evaluations[i])
                for j in feasible
                if j != i
            ):
                front.append(i)
        return front

    # -- provenance --------------------------------------------------------------------------

    def describe(self) -> dict[str, Any]:
        """JSON-able Phase I definition (goes into the Phase III summary)."""
        variables = []
        for dim in self.space:
            record: dict[str, Any] = {"name": dim.name, "type": type(dim).__name__}
            for attr in ("low", "high", "prior", "categories"):
                if hasattr(dim, attr):
                    record[attr] = getattr(dim, attr)
            variables.append(record)
        return {
            "variables": variables,
            "objectives": [
                {"metric": o.metric, "mode": o.mode, "weight": o.weight}
                for o in self.objectives
            ],
            "constraints": [str(c) for c in self.constraints],
        }

    def best_index(self, scalar_values: Sequence[float]) -> int:
        """Index of the best (lowest scalarized) evaluation."""
        if not scalar_values:
            raise ValidationError("no evaluations")
        best = min(range(len(scalar_values)), key=lambda i: scalar_values[i])
        if not math.isfinite(scalar_values[best]):
            raise ValidationError("all evaluations are non-finite")
        return best

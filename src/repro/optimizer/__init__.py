"""The paper's contribution: the E2Clab optimization layer.

Implements the three-phase methodology of Sec. III:

- **Phase I — Initialization** (:mod:`repro.optimizer.problem`): the
  optimization problem of Eq. 1 — variables (search space), single- or
  multi-objective functions, and constraints.
- **Phase II — Evaluation** (:mod:`repro.optimizer.optimization`,
  :mod:`repro.optimizer.manager`): the *optimization cycle* — parallel
  deployment, simultaneous execution, asynchronous model optimization,
  reconfiguration — driven by the user's :class:`Optimization` subclass
  (the paper's Listing 1 API: ``run`` / ``prepare`` / ``launch`` /
  ``finalize``) and automated by the :class:`OptimizationManager`.
- **Phase III — Finalization** (:mod:`repro.optimizer.summary`): the
  reproducibility summary (problem definition, sampler, algorithm and
  hyperparameters, every evaluation, best configuration found).
"""

from repro.optimizer.problem import (
    MetricConstraint,
    Objective,
    OptimizationProblem,
)
from repro.optimizer.optimization import Optimization
from repro.optimizer.summary import ReproducibilitySummary
from repro.optimizer.config import OptimizerConf
from repro.optimizer.manager import OptimizationManager, OptimizationOutcome
from repro.optimizer.decomposition import DecomposedOptimization, DecompositionResult

__all__ = [
    "Objective",
    "MetricConstraint",
    "OptimizationProblem",
    "Optimization",
    "ReproducibilitySummary",
    "OptimizerConf",
    "OptimizationManager",
    "OptimizationOutcome",
    "DecomposedOptimization",
    "DecompositionResult",
]

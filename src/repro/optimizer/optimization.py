"""The user-facing ``Optimization`` class (paper Listing 1).

Users inherit :class:`Optimization` and

- define the search in :meth:`run` (search algorithm, scheduler, metric,
  number of samples — Listing 1 lines 5–26), typically via the
  :meth:`execute` helper;
- define the evaluation logic in :meth:`launch` (deploy the application on
  the testbed, run it, collect metrics — Listing 1 line 31).

The framework provides :meth:`prepare` (a dedicated directory per model
evaluation), :meth:`finalize` (persists the evaluation computations), and
:meth:`run_objective` chaining prepare → launch → finalize exactly like
Listing 1 lines 28–35.
"""

from __future__ import annotations

import abc
import threading
import time
from pathlib import Path
from typing import Any, Mapping

from repro.errors import OptimizationError
from repro.experiments import EvaluationRecord, ExperimentArchive, ExperimentManifest
from repro.observability import export as export_observability_artifacts
from repro.observability.digest import get_perf
from repro.observability.metrics import get_registry
from repro.observability.trace import Tracer, get_tracer
from repro.optimizer.problem import OptimizationProblem
from repro.optimizer.summary import ReproducibilitySummary
from repro.search.algos import ConcurrencyLimiter, SearchAlgorithm, SurrogateSearch
from repro.search.evalcache import EvalCache
from repro.search.runner import ExperimentAnalysis, TrialRunner
from repro.search.schedulers import TrialScheduler

__all__ = ["Optimization"]

#: metric name under which the scalarized objective is reported.
SCALAR_METRIC = "objective"


class Optimization(abc.ABC):
    """Base class for user-defined optimizations."""

    def __init__(
        self,
        problem: OptimizationProblem,
        *,
        name: str = "optimization",
        workdir: str | Path = ".repro-optimizations",
        seed: int | None = None,
        description: str = "",
        tracer: Tracer | None = None,
        resume_dir: str | Path | None = None,
    ) -> None:
        self.problem = problem
        self.name = name
        self.seed = seed
        #: explicit tracer, or ``None`` to follow the process-global one.
        self._tracer = tracer
        if resume_dir is not None:
            # Re-open the interrupted campaign's archive: keeps the manifest
            # and the evaluation counter, so new evaluations continue the
            # optimization-<k> numbering instead of colliding.
            path = Path(resume_dir)
            self.archive = ExperimentArchive.open(path.parent, path.name)
            self.name = self.archive.manifest.name
        else:
            manifest = ExperimentManifest(
                name=name,
                description=description,
                seed=seed,
                parameters={"problem": problem.describe()},
            )
            self.archive = ExperimentArchive(workdir, manifest)
        self._lock = threading.Lock()
        self._records: list[EvaluationRecord] = []

    @property
    def tracer(self) -> Tracer:
        return self._tracer if self._tracer is not None else get_tracer()

    # -- the optimization cycle hooks (Listing 1 lines 28-35) -------------------------

    def prepare(self) -> Path:
        """Create a dedicated optimization directory for one evaluation."""
        with self._lock:
            return self.archive.new_evaluation_dir()

    @abc.abstractmethod
    def launch(self, config: Mapping[str, Any], **kwargs: Any) -> dict[str, float]:
        """Deploy the configuration and return the measured metrics.

        Implementations deploy the application workflow on the (simulated)
        testbed, run the workload, and return every metric the problem's
        objectives and constraints reference. ``kwargs`` may carry
        ``seed=`` / ``duration=`` overrides from repeat campaigns.
        """

    def finalize(
        self,
        directory: Path,
        config: Mapping[str, Any],
        metrics: Mapping[str, Any],
        *,
        deployment: list[dict[str, Any]] | None = None,
    ) -> EvaluationRecord:
        """Persist the computations of one evaluation (reproducibility)."""
        index = int(directory.name.split("-")[1])
        record = EvaluationRecord(
            index=index,
            configuration=dict(config),
            metrics=dict(metrics),
            deployment=deployment or [],
            seed=self.seed,
        )
        with self._lock:
            self.archive.store_evaluation(record, directory)
            self._records.append(record)
        return record

    def run_objective(self, config: Mapping[str, Any]) -> dict[str, float]:
        """prepare → launch → finalize → report (Listing 1 lines 28-35).

        The three hooks map onto the optimization cycle's deploy, execute
        and reconfigure steps, each traced as its own span (the fourth step,
        *optimize*, is the runner's suggest/tell pair).
        """
        tracer = self.tracer
        perf = get_perf()
        start = time.perf_counter()
        with tracer.span("cycle:deploy"), perf.timed("deploy"):
            directory = self.prepare()
        with tracer.span("cycle:execute"):
            metrics = dict(self.launch(config))
        metrics[SCALAR_METRIC] = self.problem.scalarize(metrics)
        with tracer.span("cycle:reconfigure"), perf.timed("reconfigure"):
            self.finalize(directory, config, metrics)
        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "repro_evaluations_total", "model evaluations run"
            ).inc()
            registry.histogram(
                "repro_evaluation_seconds", "wall seconds per model evaluation"
            ).observe(time.perf_counter() - start)
        return metrics

    # -- the search (Listing 1 lines 5-26) ------------------------------------------------

    @abc.abstractmethod
    def run(self) -> ReproducibilitySummary:
        """Define and execute the search; typically calls :meth:`execute`."""

    def execute(
        self,
        *,
        num_samples: int,
        search_alg: SearchAlgorithm | None = None,
        scheduler: TrialScheduler | None = None,
        max_concurrent: int | None = None,
        executor: str = "sync",
        max_workers: int = 4,
        algorithm_info: dict[str, Any] | None = None,
        sampling_info: dict[str, Any] | None = None,
        max_retries: int = 0,
        retry_backoff_s: float = 0.0,
        trial_timeout_s: float | None = None,
        resume: bool = False,
        checkpoint_every: int = 1,
        eval_cache: EvalCache | None = None,
        backend_options: dict[str, Any] | None = None,
    ) -> ReproducibilitySummary:
        """Run the optimization cycle and emit the Phase III summary.

        Defaults reproduce Listing 1: Extra-Trees surrogate, LHS initial
        design, gp_hedge acquisition, concurrency-limited asynchronous
        evaluation. With ``resume=True`` finished trials from the archive's
        checkpoint are replayed into the searcher (no re-execution) and the
        campaign continues until ``num_samples`` total.

        ``backend_options`` parameterizes the execution backend; for the
        distributed ``"store"`` executor the trial store and worker run
        directory default into this campaign's archive, so elastic workers
        only need the experiment directory to join.
        """
        if executor == "store":
            backend_options = dict(backend_options or {})
            backend_options.setdefault("store_dir", str(self.archive.root / "store"))
            backend_options.setdefault("run_dir", str(self.archive.root))
        if search_alg is None:
            n_initial = max(1, min(10, num_samples // 2))
            search_alg = SurrogateSearch(
                self.problem.space,
                mode="min",
                base_estimator="ET",
                n_initial_points=n_initial,
                initial_point_generator="lhs",
                acq_func="gp_hedge",
                random_state=self.seed,
            )
            algorithm_info = algorithm_info or {
                "search": "SurrogateSearch",
                "base_estimator": "ET",
                "acq_func": "gp_hedge",
                "n_initial_points": n_initial,
            }
            sampling_info = sampling_info or {
                "generator": "lhs",
                "n_points": n_initial,
            }
        if max_concurrent is not None:
            search_alg = ConcurrencyLimiter(search_alg, max_concurrent)

        resume_trials = None
        resume_searcher_state = None
        if resume:
            from repro.search.trial import Trial

            resume_trials = [Trial.from_dict(r) for r in self.archive.load_checkpoint()]
            resume_searcher_state = self.archive.load_searcher_state()

        def checkpoint(
            records: list[dict[str, Any]], searcher_state: dict[str, Any] | None = None
        ) -> Path:
            # When a live watchdog is armed, its control state rides along in
            # checkpoint.json so --resume does not re-fire old alerts; the
            # searcher state keeps the refit cadence across resumes.
            from repro.observability.watchdog import get_watchdog

            watchdog = get_watchdog()
            state = watchdog.state_dict() if watchdog is not None else None
            return self.archive.store_checkpoint(
                records, watchdog_state=state, searcher_state=searcher_state
            )

        tracer = self.tracer
        start = time.perf_counter()
        runner = TrialRunner(
            self.run_objective,
            search_alg,
            metric=SCALAR_METRIC,
            mode="min",
            scheduler=scheduler,
            num_samples=num_samples,
            executor=executor,
            max_workers=max_workers,
            name=self.name,
            tracer=tracer,
            max_retries=max_retries,
            retry_backoff_s=retry_backoff_s,
            trial_timeout_s=trial_timeout_s,
            resume_trials=resume_trials,
            resume_searcher_state=resume_searcher_state,
            checkpoint=checkpoint,
            checkpoint_every=checkpoint_every,
            eval_cache=eval_cache,
            backend_options=backend_options,
            # With tracing on, also drop the one-line-per-trial log next to
            # the other artifacts so the run report can render a trial table.
            log_dir=str(self.archive.root) if tracer.enabled else None,
        )
        with tracer.span(f"experiment:{self.name}", executor=executor):
            analysis = runner.run()
        wall = time.perf_counter() - start
        summary = self.summarize(
            analysis,
            algorithm_info=algorithm_info or {"search": type(search_alg).__name__},
            sampling_info=sampling_info or {},
            wall_clock_s=wall,
        )
        registry = get_registry()
        if registry.enabled:
            registry.gauge("repro_best_value", "incumbent objective value").set(
                summary.best_value
            )
        from repro.observability.watchdog import get_watchdog

        watchdog = get_watchdog()
        if watchdog is not None:
            summary.alerts = watchdog.summary()
        with self._lock:
            self.archive.store_summary(summary.to_dict())
        self.export_observability()
        return summary

    def export_observability(self) -> list[Path]:
        """Write spans/metrics artifacts into the archive root, if enabled."""
        return export_observability_artifacts(self.archive.root)

    # -- Phase III --------------------------------------------------------------------------

    def summarize(
        self,
        analysis: ExperimentAnalysis,
        *,
        algorithm_info: dict[str, Any],
        sampling_info: dict[str, Any],
        wall_clock_s: float,
    ) -> ReproducibilitySummary:
        """Build the reproducibility summary from an experiment analysis."""
        evaluations = []
        values: list[float] = []
        for trial in analysis.trials:
            if SCALAR_METRIC not in trial.result:
                continue
            value = trial.result[SCALAR_METRIC]
            values.append(value)
            evaluations.append(
                {
                    "configuration": dict(trial.config),
                    "metrics": dict(trial.result),
                    "value": value,
                }
            )
        # NaN scores (early-stopped trials without an intermediate report)
        # stay in `evaluations` for completeness but cannot win or converge.
        finite = [(i, v) for i, v in enumerate(values) if v == v]
        if not finite:
            raise OptimizationError("no successful evaluations to summarize")
        best_idx, best_value = min(finite, key=lambda iv: iv[1])
        # Convergence: first evaluation whose incumbent equals the final best.
        convergence = next(
            i + 1 for i, v in finite if v <= best_value + 1e-12
        )
        return ReproducibilitySummary(
            cost_profile=analysis.cost_profile().to_dict(),
            problem=self.problem.describe(),
            sampling=sampling_info,
            algorithm=algorithm_info,
            evaluations=evaluations,
            best_configuration=evaluations[best_idx]["configuration"],
            best_value=best_value,
            wall_clock_s=wall_clock_s,
            convergence_evaluation=convergence,
        )

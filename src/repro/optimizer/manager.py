"""The Optimization Manager (paper Fig. 7, right side).

The manager interprets a user-defined optimization setup (an
``optimizer_conf``) and automates the optimization cycle:

1. parallel deployment of the application workflow,
2. simultaneous execution,
3. asynchronous model optimization,
4. reconfiguration for new evaluations,

then produces the Phase III reproducibility summary — and, when asked,
repeats the best configuration for the paper's validation protocol
(``e2clab optimize --repeat 6 --duration 1380``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro import observability
from repro.errors import OptimizationError
from repro.observability.metrics import get_registry
from repro.observability.trace import get_tracer
from repro.optimizer.config import OptimizerConf
from repro.optimizer.optimization import Optimization
from repro.optimizer.summary import ReproducibilitySummary
from repro.utils.stats import Summary, mean_std

__all__ = ["OptimizationManager", "OptimizationOutcome", "CallableOptimization"]

Evaluator = Callable[..., dict[str, float]]


class CallableOptimization(Optimization):
    """Adapter: wraps a plain evaluator callable as an Optimization.

    The evaluator takes the configuration dict (plus optional ``seed=`` /
    ``duration=`` keyword overrides) and returns a metrics mapping.
    """

    def __init__(self, problem: Any, evaluator: Evaluator, **kwargs: Any) -> None:
        super().__init__(problem, **kwargs)
        self._evaluator = evaluator
        self._conf: OptimizerConf | None = None
        self._resume = False

    def launch(self, config: Mapping[str, Any], **kwargs: Any) -> dict[str, float]:
        return dict(self._evaluator(dict(config), **kwargs))

    def run(self) -> ReproducibilitySummary:
        if self._conf is None:
            raise OptimizationError(
                "CallableOptimization.run() needs a bound OptimizerConf; "
                "use OptimizationManager"
            )
        conf = self._conf
        space = self.problem.space
        search = conf.build_search(space)
        if conf.max_concurrent is not None:
            from repro.search.algos import ConcurrencyLimiter

            search = ConcurrencyLimiter(search, conf.max_concurrent)
        # The cache's JSONL ledger lives with the campaign's other artifacts,
        # so a resumed run re-opens it warm.
        eval_cache = conf.build_eval_cache(path=self.archive.root / "evalcache.jsonl")
        backend_options = None
        if conf.executor == "store":
            backend_options = dict(conf.store)
            # Manager-level store campaigns default to CLI workers: they
            # rebuild the evaluator from optimizer_conf.json (written below,
            # atomically), so the trainable — a bound method holding archive
            # locks — never needs to cross a process boundary.
            backend_options.setdefault("spawn", "cli")
            from repro.utils.serialization import dump_json

            dump_json(
                conf.to_dict(), self.archive.root / "optimizer_conf.json", atomic=True
            )
        return self.execute(
            num_samples=conf.num_samples,
            search_alg=search,
            scheduler=conf.build_scheduler(),
            executor=conf.executor,
            max_workers=conf.max_workers,
            algorithm_info=conf.algorithm_info(),
            sampling_info=conf.sampling_info(),
            max_retries=conf.max_retries,
            retry_backoff_s=conf.retry_backoff_s,
            trial_timeout_s=conf.trial_timeout_s,
            resume=self._resume,
            checkpoint_every=conf.checkpoint_every,
            eval_cache=eval_cache,
            backend_options=backend_options,
        )


@dataclass
class OptimizationOutcome:
    """Everything one manager run produced."""

    summary: ReproducibilitySummary
    #: pooled validation statistic of the best configuration, if repeated.
    validation: Summary | None = None
    validation_runs: list[dict[str, float]] = field(default_factory=list)

    @property
    def best_configuration(self) -> dict[str, Any]:
        return self.summary.best_configuration


class OptimizationManager:
    """Drives Phases I–III for a configuration + evaluation pair."""

    def __init__(
        self,
        conf: OptimizerConf,
        *,
        optimization: Optimization | None = None,
        evaluator: Evaluator | None = None,
        resume_from: Any = None,
    ) -> None:
        if (optimization is None) == (evaluator is None):
            raise OptimizationError("pass exactly one of optimization= or evaluator=")
        self.conf = conf
        if optimization is None:
            assert evaluator is not None
            injector = conf.build_fault_injector()
            if injector is not None:
                evaluator = injector.wrap(evaluator)
            self.fault_injector = injector
            problem = conf.build_problem()
            optimization = CallableOptimization(
                problem,
                evaluator,
                name=conf.name,
                workdir=conf.workdir,
                seed=conf.seed,
                resume_dir=resume_from,
            )
            optimization._conf = conf
            optimization._resume = resume_from is not None
        else:
            self.fault_injector = None
            if resume_from is not None:
                raise OptimizationError(
                    "resume_from= requires an evaluator-backed manager; pass the "
                    "archive to your Optimization subclass via resume_dir= instead"
                )
        self.optimization = optimization

    @property
    def run_dir(self) -> Any:
        """Where this campaign's artifacts (and run report inputs) live."""
        return self.optimization.archive.root

    def run(self) -> OptimizationOutcome:
        """Phase II + III, then the optional repeat-validation campaign.

        With ``conf.observability`` set, a recording tracer and a live
        metrics registry are installed for the duration of the run and the
        resulting artifacts (``spans.jsonl``, ``metrics.json``,
        ``metrics.prom``, ``trace_events.json``, ``timeline.html``) are
        exported into the experiment directory, ready for
        ``python -m repro report`` / ``python -m repro dashboard``.

        A non-empty ``conf.watchdog`` block additionally arms a live
        :class:`~repro.observability.watchdog.CampaignWatchdog` on the span
        stream (implying span recording): its alerts are folded into the
        Phase III summary, exported as ``alerts.jsonl``, and checkpointed so
        a resumed campaign does not re-fire them.
        """
        from repro.observability.watchdog import set_watchdog

        watchdog = self.conf.build_watchdog()
        serving = self.conf.serve is not None
        observing = self.conf.observability or watchdog is not None or serving
        if observing:
            observability.enable()
        if watchdog is not None:
            set_watchdog(watchdog)
            watchdog.attach(get_tracer())
            archive = self.optimization.archive
            # Resume: restore fired-alert state, then rebuild the straggler /
            # objective baselines from the trials the searcher will replay.
            watchdog.load_state(archive.load_watchdog_state())
            watchdog.seed_from_trials(archive.load_checkpoint())
        monitor = None
        if serving:
            # After set_watchdog: the monitor subscribes to whatever
            # tracer/watchdog are installed when it starts.
            from repro.observability.live import (
                LiveMonitor,
                StatusBoard,
                set_status_board,
            )

            mode = (self.conf.objectives[0].get("mode", "min") or "min").lower()
            set_status_board(
                StatusBoard(
                    name=self.conf.name,
                    num_samples=self.conf.num_samples,
                    mode=mode,
                )
            )
            monitor = LiveMonitor.from_spec(
                self.conf.serve, run_dir=self.run_dir, name=self.conf.name
            )
            monitor.start()
        try:
            from repro.observability.live import get_status_board

            board = get_status_board()
            tracer = get_tracer()
            board.set_phase("optimize")
            with tracer.span("phase:optimize"):
                summary = self.optimization.run()
            outcome = OptimizationOutcome(summary=summary)
            if self.conf.repeat > 0:
                board.set_phase("validate")
                with tracer.span("phase:validate", repeat=self.conf.repeat):
                    outcome = self.validate(summary.best_configuration, outcome=outcome)
            board.set_phase("finished")
            return outcome
        finally:
            if observing:
                # Export even when the campaign failed: partial spans and
                # metrics are exactly what debugging the failure needs.
                try:
                    self.optimization.export_observability()
                finally:
                    if monitor is not None:
                        from repro.observability.live import set_status_board

                        monitor.stop()
                        set_status_board(None)
                    if watchdog is not None:
                        watchdog.detach()
                        set_watchdog(None)
                    observability.disable()

    def validate(
        self,
        configuration: Mapping[str, Any],
        *,
        outcome: OptimizationOutcome | None = None,
    ) -> OptimizationOutcome:
        """Re-run ``configuration`` ``repeat + 1`` times (paper protocol).

        The paper repeats each configuration 6 extra times (7 experiments
        total) at full duration to reduce measurement variance; seeds vary
        per repetition so runs are independent.
        """
        runs: list[dict[str, float]] = []
        metric = self.optimization.problem.primary_metric
        base_seed = self.conf.seed or 0
        kwargs: dict[str, Any] = {}
        if self.conf.duration is not None:
            kwargs["duration"] = self.conf.duration
        tracer = get_tracer()
        registry = get_registry()
        start = time.perf_counter()
        for repetition in range(self.conf.repeat + 1):
            with tracer.span(f"validation:rep{repetition}", seed=base_seed + 1000 + repetition):
                metrics = self.optimization.launch(
                    dict(configuration), seed=base_seed + 1000 + repetition, **kwargs
                )
            if registry.enabled:
                registry.counter(
                    "repro_validation_runs_total", "repeat-validation runs of the best config"
                ).inc()
            runs.append(dict(metrics))
        pooled = mean_std([run[metric] for run in runs])
        if outcome is None:
            # Standalone validation of a known-good configuration: summarize
            # the validation runs themselves. (This used to launch a whole
            # fresh optimization campaign just to build a summary object.)
            summary = ReproducibilitySummary(
                problem=self.optimization.problem.describe(),
                sampling={},
                algorithm={"search": "validation"},
                evaluations=[
                    {
                        "configuration": dict(configuration),
                        "metrics": dict(run),
                        "value": run[metric],
                    }
                    for run in runs
                ],
                best_configuration=dict(configuration),
                best_value=pooled.mean,
                wall_clock_s=time.perf_counter() - start,
            )
            outcome = OptimizationOutcome(summary=summary)
        outcome.validation = pooled
        outcome.validation_runs = runs
        return outcome

"""Sobol low-discrepancy sequences (up to 16 dimensions).

Implements the classic direction-number construction with the Joe–Kuo
(new-joe-kuo-6) primitive polynomials and initial direction numbers for
dimensions 2–16; dimension 1 is the van der Corput sequence in base 2.
Points are generated with the Gray-code ordering (Antonov–Saleev), and a
random digital shift (XOR scrambling) decorrelates repeated designs.

16 dimensions comfortably covers the paper's 4-dimensional thread-pool
space and the larger synthetic spaces in the examples.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.sampling.base import Sampler

__all__ = ["SobolSampler"]

_BITS = 32

#: Joe–Kuo (new-joe-kuo-6) parameters per dimension (2-indexed):
#: (s, a, [m_1 .. m_s]).
_JOE_KUO: list[tuple[int, int, list[int]]] = [
    (1, 0, [1]),
    (2, 1, [1, 3]),
    (3, 1, [1, 3, 1]),
    (3, 2, [1, 1, 1]),
    (4, 1, [1, 1, 3, 3]),
    (4, 4, [1, 3, 5, 13]),
    (5, 2, [1, 1, 5, 5, 17]),
    (5, 4, [1, 1, 5, 5, 5]),
    (5, 7, [1, 1, 7, 11, 19]),
    (5, 11, [1, 1, 5, 1, 1]),
    (5, 13, [1, 1, 1, 3, 11]),
    (5, 14, [1, 3, 5, 5, 31]),
    (6, 1, [1, 3, 3, 9, 7, 49]),
    (6, 13, [1, 1, 1, 15, 21, 21]),
    (6, 16, [1, 3, 1, 13, 27, 49]),
]

MAX_DIMS = 1 + len(_JOE_KUO)


def _direction_numbers(dim_index: int) -> np.ndarray:
    """32 direction numbers (as integers scaled by 2^32) for one dimension."""
    v = np.zeros(_BITS, dtype=np.uint64)
    if dim_index == 0:
        for i in range(_BITS):
            v[i] = np.uint64(1) << np.uint64(_BITS - 1 - i)
        return v
    s, a, m = _JOE_KUO[dim_index - 1]
    m_arr = list(m)
    for i in range(s):
        v[i] = np.uint64(m_arr[i]) << np.uint64(_BITS - 1 - i)
    for i in range(s, _BITS):
        prev = int(v[i - s])
        value = prev ^ (prev >> s)
        for k in range(1, s):
            if (a >> (s - 1 - k)) & 1:
                value ^= int(v[i - k])
        v[i] = np.uint64(value)
    return v


class SobolSampler(Sampler):
    """Sobol sequence with Gray-code generation and digital-shift scrambling."""

    name = "sobol"

    def __init__(self, scramble: bool = True) -> None:
        self.scramble = scramble

    def generate(self, n_points: int, n_dims: int, rng: np.random.Generator) -> np.ndarray:
        self._validate(n_points, n_dims)
        if n_dims > MAX_DIMS:
            raise ValidationError(
                f"SobolSampler supports up to {MAX_DIMS} dimensions, got {n_dims}"
            )
        directions = np.stack([_direction_numbers(d) for d in range(n_dims)])
        x = np.zeros(n_dims, dtype=np.uint64)
        points = np.zeros((n_points, n_dims), dtype=np.uint64)
        for i in range(n_points):
            if i > 0:
                # Gray code: flip the direction of the lowest zero bit of i-1.
                c = (~np.uint64(i - 1) & np.uint64(i - 1) + np.uint64(1)).item()
                bit = int(c).bit_length() - 1
                x ^= directions[:, bit]
            points[i] = x
        if self.scramble:
            shift = rng.integers(0, 2**_BITS, size=n_dims, dtype=np.uint64)
            points ^= shift
        return points.astype(np.float64) / float(2**_BITS)

"""Sampler protocol and name-based lookup."""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import ValidationError

__all__ = ["Sampler", "get_sampler"]


class Sampler(abc.ABC):
    """Generates points in the unit hypercube ``[0, 1)^d``."""

    #: name used in configurations (``initial_point_generator="lhs"``).
    name: str = ""

    @abc.abstractmethod
    def generate(self, n_points: int, n_dims: int, rng: np.random.Generator) -> np.ndarray:
        """Return an ``(n_points, n_dims)`` array of samples in ``[0, 1)``."""

    @staticmethod
    def _validate(n_points: int, n_dims: int) -> None:
        if n_points < 1:
            raise ValidationError(f"n_points must be >= 1, got {n_points}")
        if n_dims < 1:
            raise ValidationError(f"n_dims must be >= 1, got {n_dims}")


def get_sampler(name: str) -> Sampler:
    """Resolve a sampler by configuration name.

    Accepted names: ``random``, ``lhs``, ``halton``, ``sobol``, ``grid``.
    """
    from repro.sampling.grid import GridSampler
    from repro.sampling.halton import HaltonSampler
    from repro.sampling.lhs import LatinHypercubeSampler
    from repro.sampling.random import RandomSampler
    from repro.sampling.sobol import SobolSampler

    samplers: dict[str, type[Sampler]] = {
        "random": RandomSampler,
        "lhs": LatinHypercubeSampler,
        "halton": HaltonSampler,
        "sobol": SobolSampler,
        "grid": GridSampler,
    }
    try:
        return samplers[name.lower()]()
    except KeyError:
        raise ValidationError(
            f"unknown sampler {name!r}; available: {sorted(samplers)}"
        ) from None

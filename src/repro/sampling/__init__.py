"""Initial-design samplers for surrogate model building (paper Sec. III-B1).

The methodology's *Surrogate Model Building* step generates a few sample
points within the variable bounds using sampling methods such as Latin
Hypercube Sampling or Low Discrepancy Sampling. All samplers here produce
points in the unit hypercube ``[0, 1)^d``; space transformation to real
variable ranges happens in :mod:`repro.bayesopt.space`.

Available samplers:

- :class:`RandomSampler` — i.i.d. uniform.
- :class:`LatinHypercubeSampler` — stratified, one point per row/column
  (the paper's default, ``initial_point_generator="lhs"``).
- :class:`HaltonSampler` — low-discrepancy van-der-Corput sequences with
  coprime bases.
- :class:`SobolSampler` — low-discrepancy (Joe–Kuo direction numbers, up
  to 16 dimensions), with Owen-style random digit scrambling.
- :class:`GridSampler` — full-factorial grid (for small spaces / OAT).
"""

from repro.sampling.base import Sampler, get_sampler
from repro.sampling.random import RandomSampler
from repro.sampling.lhs import LatinHypercubeSampler
from repro.sampling.halton import HaltonSampler
from repro.sampling.sobol import SobolSampler
from repro.sampling.grid import GridSampler

__all__ = [
    "Sampler",
    "get_sampler",
    "RandomSampler",
    "LatinHypercubeSampler",
    "HaltonSampler",
    "SobolSampler",
    "GridSampler",
]

"""Latin Hypercube Sampling — the paper's initial point generator."""

from __future__ import annotations

import numpy as np

from repro.sampling.base import Sampler

__all__ = ["LatinHypercubeSampler"]


class LatinHypercubeSampler(Sampler):
    """Stratified sampling: each of ``n`` equal slices of every dimension
    receives exactly one point (Helton & Davis 2003, the paper's [30]).

    ``centered=True`` places points at stratum centres instead of uniformly
    within each stratum (a.k.a. centered/median LHS).
    """

    name = "lhs"

    def __init__(self, centered: bool = False) -> None:
        self.centered = centered

    def generate(self, n_points: int, n_dims: int, rng: np.random.Generator) -> np.ndarray:
        self._validate(n_points, n_dims)
        # One permutation of strata per dimension.
        strata = np.arange(n_points, dtype=float)
        samples = np.empty((n_points, n_dims))
        for d in range(n_dims):
            perm = rng.permutation(strata)
            if self.centered:
                offsets = 0.5
            else:
                offsets = rng.random(n_points)
            samples[:, d] = (perm + offsets) / n_points
        return samples

"""Full-factorial grid sampling (for small spaces and sanity baselines)."""

from __future__ import annotations

import math

import numpy as np

from repro.sampling.base import Sampler

__all__ = ["GridSampler"]


class GridSampler(Sampler):
    """Evenly spaced full-factorial grid, truncated/shuffled to ``n_points``.

    The grid resolution per dimension is ``ceil(n_points ** (1/d))``; when
    the full factorial exceeds ``n_points``, a random subset is returned so
    the output size contract matches the other samplers.
    """

    name = "grid"

    def generate(self, n_points: int, n_dims: int, rng: np.random.Generator) -> np.ndarray:
        self._validate(n_points, n_dims)
        per_dim = max(1, math.ceil(n_points ** (1.0 / n_dims)))
        # Stratum centres, so no point lands on the boundary.
        axis = (np.arange(per_dim) + 0.5) / per_dim
        mesh = np.meshgrid(*([axis] * n_dims), indexing="ij")
        full = np.stack([m.ravel() for m in mesh], axis=1)
        if len(full) > n_points:
            idx = rng.choice(len(full), size=n_points, replace=False)
            full = full[np.sort(idx)]
        return full

"""Halton low-discrepancy sequences (Kocis & Whiten 1997, the paper's [31])."""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.sampling.base import Sampler

__all__ = ["HaltonSampler", "van_der_corput", "first_primes"]


def first_primes(count: int) -> list[int]:
    """The first ``count`` prime numbers (simple sieve, grown on demand)."""
    if count < 1:
        raise ValidationError("count must be >= 1")
    primes: list[int] = []
    candidate = 2
    while len(primes) < count:
        if all(candidate % p for p in primes if p * p <= candidate):
            primes.append(candidate)
        candidate += 1
    return primes


def van_der_corput(n_points: int, base: int, *, start: int = 0) -> np.ndarray:
    """Radical-inverse (van der Corput) sequence in the given base."""
    if base < 2:
        raise ValidationError(f"base must be >= 2, got {base}")
    out = np.zeros(n_points)
    for i in range(n_points):
        n = start + i + 1  # skip 0 to avoid the origin point
        inv, denom = 0.0, 1.0
        while n > 0:
            n, digit = divmod(n, base)
            denom *= base
            inv += digit / denom
        out[i] = inv
    return out


class HaltonSampler(Sampler):
    """Multi-dimensional Halton sequence with coprime prime bases.

    ``scramble=True`` (default) applies a random digit permutation per
    dimension — plain Halton correlates badly in high dimensions.
    """

    name = "halton"

    def __init__(self, scramble: bool = True) -> None:
        self.scramble = scramble

    def generate(self, n_points: int, n_dims: int, rng: np.random.Generator) -> np.ndarray:
        self._validate(n_points, n_dims)
        bases = first_primes(n_dims)
        samples = np.empty((n_points, n_dims))
        for d, base in enumerate(bases):
            column = self._scrambled_column(n_points, base, rng) if self.scramble else van_der_corput(n_points, base)
            samples[:, d] = column
        return samples

    @staticmethod
    def _scrambled_column(n_points: int, base: int, rng: np.random.Generator) -> np.ndarray:
        """Radical inverse with one random digit permutation (0 fixed)."""
        perm = np.concatenate(([0], 1 + rng.permutation(base - 1)))
        out = np.zeros(n_points)
        for i in range(n_points):
            n = i + 1
            inv, denom = 0.0, 1.0
            while n > 0:
                n, digit = divmod(n, base)
                denom *= base
                inv += perm[digit] / denom
            out[i] = inv
        return out

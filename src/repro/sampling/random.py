"""I.i.d. uniform sampling (the baseline every low-discrepancy method beats)."""

from __future__ import annotations

import numpy as np

from repro.sampling.base import Sampler

__all__ = ["RandomSampler"]


class RandomSampler(Sampler):
    """Uniform random points in the unit hypercube."""

    name = "random"

    def generate(self, n_points: int, n_dims: int, rng: np.random.Generator) -> np.ndarray:
        self._validate(n_points, n_dims)
        return rng.random((n_points, n_dims))

"""Deterministic, seedable fault injection for the simulated testbed.

The paper's optimization cycle assumes all 42 Grid'5000 nodes stay healthy
for the whole campaign. Real edge-to-cloud deployments do not: nodes crash,
links degrade, stragglers appear, and evaluators fail transiently. This
module makes those failure modes *reproducible* — every fault decision is a
pure function of ``(seed, configuration, attempt)``, so a faulty campaign
replays exactly and a retried attempt draws a fresh, independent stream.

Two surfaces:

- **evaluator surface** — :meth:`FaultInjector.wrap` decorates an evaluator
  callable; per call it may raise a :class:`TransientFault` /
  :class:`NodeCrashFault`, delay the evaluation (straggler), or inflate the
  returned metrics (measurement over a degraded link);
- **testbed surface** — :meth:`FaultInjector.crash_node` and
  :meth:`FaultInjector.degrade_link` mutate a simulated
  :class:`~repro.testbed.site.Testbed` directly (mark a node failed,
  install worse link characteristics), for scenario-level experiments.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Optional

import numpy as np

from repro.errors import FaultError, ValidationError
from repro.faults.context import current_attempt, mark_injection
from repro.utils.seeding import derive_seed

__all__ = [
    "FAULT_KINDS",
    "FaultSpec",
    "FaultInjector",
    "TransientFault",
    "NodeCrashFault",
]

#: fault kinds, in cumulative-draw order.
FAULT_KINDS = ("transient", "node_crash", "straggler", "link_degradation")


class TransientFault(FaultError):
    """Injected transient evaluator failure (flaky measurement harness)."""


class NodeCrashFault(FaultError):
    """Injected node crash during deployment of one evaluation."""


@dataclass(frozen=True)
class FaultSpec:
    """Fault-injection configuration (rates are per trial attempt).

    At most one fault fires per attempt: a single uniform draw is
    partitioned over the kinds, so ``transient + node_crash + straggler +
    link_degradation`` must stay <= 1.
    """

    transient: float = 0.0
    node_crash: float = 0.0
    straggler: float = 0.0
    link_degradation: float = 0.0
    #: extra wall-clock delay a straggler attempt suffers.
    straggler_delay_s: float = 0.05
    #: multiplier applied to numeric metrics measured over a degraded link.
    degradation_factor: float = 1.5
    seed: int = 0

    def __post_init__(self) -> None:
        for kind in FAULT_KINDS:
            rate = getattr(self, kind)
            if not 0.0 <= rate <= 1.0:
                raise ValidationError(f"fault rate {kind}={rate} must be in [0, 1]")
        if self.total_rate > 1.0:
            raise ValidationError(f"fault rates sum to {self.total_rate} > 1")
        if self.straggler_delay_s < 0:
            raise ValidationError("straggler_delay_s must be >= 0")
        if self.degradation_factor < 1.0:
            raise ValidationError("degradation_factor must be >= 1")

    @property
    def total_rate(self) -> float:
        return sum(getattr(self, kind) for kind in FAULT_KINDS)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultSpec":
        known = set(cls.__dataclass_fields__)  # type: ignore[attr-defined]
        unknown = set(data) - known
        if unknown:
            raise ValidationError(f"unknown fault spec keys: {sorted(unknown)}")
        return cls(**dict(data))


def _config_key(config: Mapping[str, Any]) -> int:
    """Stable 63-bit key of a configuration dict (process-salt free)."""
    payload = json.dumps(dict(config), sort_keys=True, default=str)
    return int.from_bytes(hashlib.sha256(payload.encode("utf-8")).digest()[:8], "little") >> 1


class FaultInjector:
    """Draws deterministic faults and applies them to evaluations/testbeds."""

    def __init__(self, spec: FaultSpec) -> None:
        self.spec = spec
        self._crash_draws = 0
        #: injected-fault tally by kind (all zeros until something fires).
        self.injected: dict[str, int] = {kind: 0 for kind in FAULT_KINDS}

    # -- decisions ------------------------------------------------------------------

    def decide(self, config: Mapping[str, Any], attempt: int | None = None) -> Optional[str]:
        """Which fault (if any) hits this ``(config, attempt)`` evaluation.

        Deterministic: the same seed, configuration and attempt index always
        produce the same decision, and consecutive attempts draw independent
        streams — the property that makes retry-after-fault effective.
        """
        if self.spec.total_rate <= 0.0:
            return None
        attempt = current_attempt() if attempt is None else int(attempt)
        rng = np.random.default_rng(
            derive_seed(self.spec.seed, "fault", _config_key(config), attempt)
        )
        draw = float(rng.random())
        edge = 0.0
        for kind in FAULT_KINDS:
            edge += getattr(self.spec, kind)
            if draw < edge:
                return kind
        return None

    def _record(self, kind: str) -> None:
        self.injected[kind] += 1
        from repro.observability.metrics import get_registry

        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "repro_faults_injected_total",
                "faults injected into trial evaluations",
                labelnames=("kind",),
            ).inc(kind=kind)

    # -- evaluator surface ----------------------------------------------------------

    def wrap(self, evaluator: Callable[..., Mapping[str, Any]]) -> Callable[..., dict[str, Any]]:
        """Wrap an evaluator so each call may suffer one injected fault."""

        def faulty_evaluator(config: Mapping[str, Any], *args: Any, **kwargs: Any) -> dict[str, Any]:
            kind = self.decide(config)
            if kind is not None:
                self._record(kind)
                mark_injection()
            if kind == "transient":
                raise TransientFault(
                    f"injected transient evaluator failure (attempt {current_attempt()})"
                )
            if kind == "node_crash":
                raise NodeCrashFault(
                    f"injected node crash during deployment (attempt {current_attempt()})"
                )
            if kind == "straggler" and self.spec.straggler_delay_s > 0:
                time.sleep(self.spec.straggler_delay_s)
            metrics = dict(evaluator(config, *args, **kwargs))
            if kind == "link_degradation":
                factor = self.spec.degradation_factor
                metrics = {
                    key: value * factor
                    if isinstance(value, (int, float)) and not isinstance(value, bool)
                    else value
                    for key, value in metrics.items()
                }
            return metrics

        faulty_evaluator.__name__ = getattr(evaluator, "__name__", "evaluator")
        faulty_evaluator.injector = self  # type: ignore[attr-defined]
        return faulty_evaluator

    # -- testbed surface ------------------------------------------------------------

    def crash_node(self, testbed: Any, cluster: str) -> Any:
        """Mark one free node of ``cluster`` as failed; returns the victim.

        The victim is chosen deterministically from the injector's seed and
        an internal crash counter, so a replay crashes the same nodes in the
        same order.
        """
        free = testbed.cluster(cluster).free_nodes()
        if not free:
            raise FaultError(f"no free node left to crash in cluster {cluster!r}")
        rng = np.random.default_rng(
            derive_seed(self.spec.seed, "crash", cluster, self._crash_draws)
        )
        self._crash_draws += 1
        victim = free[int(rng.integers(len(free)))]
        victim.fail()
        self._record("node_crash")
        return victim

    def degrade_link(
        self,
        network: Any,
        a: str,
        b: str,
        *,
        latency_factor: float = 4.0,
        bandwidth_factor: float = 0.25,
        added_loss: float = 0.05,
    ) -> Any:
        """Install degraded characteristics on the ``a``↔``b`` path.

        Reads the currently resolved path and replaces it with a direct link
        carrying ``latency * latency_factor``, ``bandwidth *
        bandwidth_factor`` and additional packet loss — the ``tc``-style
        degradation GMB-ECC prescribes for continuum benchmarks. Returns the
        new resolved path.
        """
        if a == b:
            raise FaultError("cannot degrade a loopback path")
        path = network.path(a, b)
        bandwidth = path.bandwidth_gbps
        if not np.isfinite(bandwidth):
            bandwidth = network.DEFAULT_BANDWIDTH_GBPS
        network.constrain(
            a,
            b,
            latency_ms=max(path.latency_ms, network.DEFAULT_LATENCY_MS) * latency_factor,
            bandwidth_gbps=bandwidth * bandwidth_factor,
            loss=min(0.99, path.loss + added_loss),
        )
        self._record("link_degradation")
        return network.path(a, b)

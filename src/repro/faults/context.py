"""Per-attempt execution context shared between the runner and injectors.

The trial runner retries failed/hung trials; each attempt must be
distinguishable so stochastic components (most importantly the
:class:`~repro.faults.injector.FaultInjector`) draw a *fresh* deterministic
stream per attempt instead of replaying the exact failure. The attempt
index travels through a thread-local rather than through the trainable's
signature, so existing trainables need no change; for the process executor
the worker-side entry point re-installs it inside the worker process.
"""

from __future__ import annotations

import threading

__all__ = [
    "current_attempt",
    "set_current_attempt",
    "reset_injection_flag",
    "mark_injection",
    "injection_occurred",
]

_state = threading.local()


def set_current_attempt(attempt: int) -> None:
    """Record the retry attempt index (0 = first try) for this thread."""
    _state.attempt = int(attempt)


def current_attempt() -> int:
    """The retry attempt index of the trial executing on this thread."""
    return getattr(_state, "attempt", 0)


def reset_injection_flag() -> None:
    """Clear the injected-fault marker before an attempt starts."""
    _state.injected = False


def mark_injection() -> None:
    """Record that a fault was injected into the attempt on this thread.

    The evaluation cache consults this (via :func:`injection_occurred`)
    to refuse admission of fault-tainted results: a straggler-delayed or
    link-degraded measurement must never be served as a clean hit later.
    """
    _state.injected = True


def injection_occurred() -> bool:
    """Whether the attempt running on this thread suffered an injection."""
    return getattr(_state, "injected", False)

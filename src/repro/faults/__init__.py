"""Fault tolerance: deterministic fault injection and attempt context."""

from repro.faults.context import current_attempt, set_current_attempt
from repro.faults.injector import (
    FAULT_KINDS,
    FaultInjector,
    FaultSpec,
    NodeCrashFault,
    TransientFault,
)

__all__ = [
    "FAULT_KINDS",
    "FaultInjector",
    "FaultSpec",
    "NodeCrashFault",
    "TransientFault",
    "current_attempt",
    "set_current_attempt",
]

"""Generic in-simulation metric sampler (dstat analogue)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator

from repro import simcore
from repro.errors import ValidationError
from repro.utils.timeseries import TimeSeries

__all__ = ["Probe", "MetricCollector"]


@dataclass(frozen=True)
class Probe:
    """A named metric source polled at every sampling tick."""

    name: str
    read: Callable[[], float]


class MetricCollector:
    """Polls probes every ``interval`` simulated seconds into time series.

    Example::

        env = simcore.Environment()
        pool = simcore.Resource(env, 4, name="workers")
        collector = MetricCollector(env, interval=10.0)
        collector.add_probe("pool_occupancy", pool.occupancy)
        collector.start()
        ... run simulation ...
        series = collector.series["pool_occupancy"]
    """

    def __init__(self, env: simcore.Environment, interval: float = 10.0) -> None:
        if interval <= 0:
            raise ValidationError("interval must be positive")
        self.env = env
        self.interval = float(interval)
        self.probes: list[Probe] = []
        self.series: dict[str, TimeSeries] = {}
        self._process: simcore.Process | None = None

    def add_probe(self, name: str, read: Callable[[], float]) -> None:
        """Register a probe; must be called before :meth:`start`."""
        if self._process is not None:
            raise ValidationError("cannot add probes after the collector started")
        if name in self.series:
            raise ValidationError(f"duplicate probe {name!r}")
        self.probes.append(Probe(name, read))
        self.series[name] = TimeSeries(name)

    def start(self) -> simcore.Process:
        """Start sampling; returns the collector process."""
        if self._process is not None:
            raise ValidationError("collector already started")
        self._process = self.env.process(self._run(), name="metric-collector")
        return self._process

    def _run(self) -> Generator[simcore.Event, None, None]:
        try:
            while True:
                yield self.env.timeout(self.interval)
                now = self.env.now
                for probe in self.probes:
                    self.series[probe.name].append(now, float(probe.read()))
        except simcore.Interrupt:
            return

    def stop(self) -> None:
        """Stop sampling (idempotent)."""
        if self._process is not None and self._process.is_alive:
            self._process.interrupt("collector stopped")

"""Generic in-simulation metric sampler (dstat analogue)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, Optional

from repro import simcore
from repro.errors import ValidationError
from repro.observability.metrics import MetricsRegistry, get_registry
from repro.utils.timeseries import TimeSeries

__all__ = ["Probe", "MetricCollector"]


@dataclass(frozen=True)
class Probe:
    """A named metric source polled at every sampling tick."""

    name: str
    read: Callable[[], float]


class MetricCollector:
    """Polls probes every ``interval`` simulated seconds into time series.

    Example::

        env = simcore.Environment()
        pool = simcore.Resource(env, 4, name="workers")
        collector = MetricCollector(env, interval=10.0)
        collector.add_probe("pool_occupancy", pool.occupancy)
        collector.start()
        ... run simulation ...
        series = collector.series["pool_occupancy"]

    ``sample_at_start`` additionally samples every probe at the instant the
    collector starts (t=0 of the paper's 10 s protocol), so a run of
    duration ``D`` yields ``D / interval + 1`` samples instead of
    ``D / interval``. Off by default for backward compatibility.

    Samples are also published into a :class:`MetricsRegistry` (the
    process-global one unless ``registry=`` is given) as the
    ``monitor_probe_value{probe=...}`` gauge plus a sample counter — a no-op
    while observability is disabled.
    """

    def __init__(
        self,
        env: simcore.Environment,
        interval: float = 10.0,
        *,
        sample_at_start: bool = False,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if interval <= 0:
            raise ValidationError("interval must be positive")
        self.env = env
        self.interval = float(interval)
        self.sample_at_start = bool(sample_at_start)
        self.probes: list[Probe] = []
        self.series: dict[str, TimeSeries] = {}
        self._process: simcore.Process | None = None
        self._registry = registry
        self._gauge = None
        self._sample_counter = None

    def add_probe(self, name: str, read: Callable[[], float]) -> None:
        """Register a probe; must be called before :meth:`start`."""
        if self._process is not None:
            raise ValidationError("cannot add probes after the collector started")
        if name in self.series:
            raise ValidationError(f"duplicate probe {name!r}")
        self.probes.append(Probe(name, read))
        self.series[name] = TimeSeries(name)

    def start(self) -> simcore.Process:
        """Start sampling; returns the collector process."""
        if self._process is not None:
            raise ValidationError("collector already started")
        registry = self._registry if self._registry is not None else get_registry()
        self._gauge = registry.gauge(
            "monitor_probe_value", "last sampled value per probe", ("probe",)
        )
        self._sample_counter = registry.counter(
            "monitor_samples_total", "probe samples taken"
        )
        self._process = self.env.process(self._run(), name="metric-collector")
        return self._process

    def _sample(self) -> None:
        now = self.env.now
        for probe in self.probes:
            value = float(probe.read())
            self.series[probe.name].append(now, value)
            self._gauge.set(value, probe=probe.name)
            self._sample_counter.inc()

    def _run(self) -> Generator[simcore.Event, None, None]:
        try:
            if self.sample_at_start:
                self._sample()
            while True:
                yield self.env.timeout(self.interval)
                self._sample()
        except simcore.Interrupt:
            return

    def stop(self) -> None:
        """Stop sampling (idempotent)."""
        if self._process is not None and self._process.is_alive:
            self._process.interrupt("collector stopped")

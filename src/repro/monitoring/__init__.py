"""Monitoring: generic metric collection and cross-repetition aggregation.

E2Clab's monitoring manager deploys dstat/py3nvml-style collectors on every
node and backs up the resulting time series. In this reproduction the engine
simulator produces those series natively
(:class:`repro.engine.metrics.MetricSeries`); this package adds

- :class:`MetricCollector` — a generic sampler that polls user-provided
  probes inside a simulation environment (for custom services),
- :class:`RepetitionAggregate` — pooling of repeated experiment runs into
  the paper's ``mean (± std)`` over all samples (e.g. 7 × 138 = 966),
- :class:`HybridAggregator` — mode-aware pooling of hybrid fluid/DES
  epochs (empirical DES windows + parametric fluid epochs).
"""

from repro.monitoring.collector import MetricCollector, Probe
from repro.monitoring.aggregate import RepetitionAggregate, aggregate_runs
from repro.monitoring.hybrid import EpochSample, HybridAggregator

__all__ = [
    "MetricCollector",
    "Probe",
    "RepetitionAggregate",
    "aggregate_runs",
    "EpochSample",
    "HybridAggregator",
]

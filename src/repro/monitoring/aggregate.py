"""Cross-repetition aggregation of engine runs.

The paper runs each configuration 7 times for 23 minutes and reports
``mean (± std)`` over all 966 samples (7 × 138). :func:`aggregate_runs`
reproduces exactly that pooling for any metric the engine collects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.engine.metrics import EngineRunResult
from repro.errors import ValidationError
from repro.utils.stats import RunningStats, Summary

__all__ = ["RepetitionAggregate", "aggregate_runs"]


@dataclass(frozen=True)
class RepetitionAggregate:
    """Pooled statistics over repeated runs of one configuration."""

    repetitions: int
    #: pooled over every per-window sample of every run (the paper's 966).
    user_response_time: Summary
    throughput: Summary
    cpu_usage: Summary
    gpu_utilization: Summary
    #: per-task pooled summaries keyed by Table I task name.
    task_times: dict[str, Summary] = field(default_factory=dict)
    #: per-pool busy fraction pooled over runs.
    pool_busy: dict[str, Summary] = field(default_factory=dict)
    gpu_memory_gb: float = 0.0
    system_memory_gb: float = 0.0

    def __str__(self) -> str:
        return (
            f"{self.repetitions} reps: response {self.user_response_time}, "
            f"throughput {self.throughput.mean:.1f} req/s"
        )


def _pool_samples(runs: Sequence[EngineRunResult], attr: str) -> Summary:
    stats = RunningStats()
    for run in runs:
        series = getattr(run.series, attr)
        stats.extend(series.values)
    return stats.summary()


def aggregate_runs(runs: Sequence[EngineRunResult]) -> RepetitionAggregate:
    """Pool repeated runs of the *same* configuration and workload."""
    if not runs:
        raise ValidationError("cannot aggregate zero runs")
    first = runs[0]
    for run in runs[1:]:
        if run.config != first.config:
            raise ValidationError(
                f"cannot pool different configs: {run.config} vs {first.config}"
            )
        if run.workload.simultaneous_requests != first.workload.simultaneous_requests:
            raise ValidationError("cannot pool different workloads")

    task_names = list(first.task_times)
    task_pool: dict[str, RunningStats] = {name: RunningStats() for name in task_names}
    busy_pool: dict[str, RunningStats] = {name: RunningStats() for name in first.pool_busy}
    throughput = RunningStats()
    for run in runs:
        throughput.add(run.throughput)
        for name in task_names:
            summary = run.task_times[name]
            if summary.count:
                # Re-weight by sample count so longer runs count more.
                task_pool[name].add(summary.mean, weight=summary.count)
        for name, value in run.pool_busy.items():
            busy_pool[name].add(value)

    return RepetitionAggregate(
        repetitions=len(runs),
        user_response_time=_pool_samples(runs, "user_response_time"),
        throughput=throughput.summary(),
        cpu_usage=_pool_samples(runs, "cpu_usage"),
        gpu_utilization=_pool_samples(runs, "gpu_utilization"),
        task_times={name: task_pool[name].summary() for name in task_names},
        pool_busy={name: busy_pool[name].summary() for name in busy_pool},
        gpu_memory_gb=first.gpu_memory_gb,
        system_memory_gb=first.system_memory_gb,
    )

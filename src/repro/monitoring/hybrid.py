"""Mode-aware sample aggregation for hybrid fluid/DES runs.

A :class:`~repro.engine.hybrid.HybridEngine` run produces one sample per
epoch, but the samples come from two different instruments: DES sampling
windows carry *empirical* response distributions (every completed request),
while fluid epochs carry *parametric* estimates (corrected mean and p95
from the analytic model). Averaging those naively would let the handful of
DES windows drown in the fluid majority — and a pooled p95 is not the mean
of per-epoch p95s.

:class:`HybridAggregator` therefore keeps the two kinds apart and combines
them by what they are:

- per-epoch series are emitted into the standard
  :class:`~repro.engine.metrics.MetricSeries` (one sample per epoch, so
  downstream plotting/CSV export works unchanged);
- scalar summaries (mean response, throughput, CPU) are weighted by each
  epoch's *completed requests*, not by epoch count;
- pooled percentiles solve ``Σ wᵉ·Fᵉ(q) = p`` over a mixture whose DES
  components are empirical CDFs and whose fluid components are lognormals
  fitted to the epoch's (mean, p95) pair — the fluid tail shape the
  analytic model assumes, calibrated by the DES windows it ran against.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass
from typing import Any, Optional, Sequence

from repro.engine.metrics import MetricSeries
from repro.errors import ValidationError
from repro.utils.stats import RunningStats, Summary

__all__ = ["EpochSample", "HybridAggregator"]

#: standard-normal 95th percentile, used to fit lognormal tails.
_Z95 = 1.6448536269514722


@dataclass(frozen=True)
class EpochSample:
    """One epoch of a hybrid run, whichever mode produced it."""

    index: int
    start: float
    end: float
    #: ``"fluid"`` or ``"des"``.
    mode: str
    #: offered arrival rate over the epoch (requests/s).
    rate: float
    throughput: float
    response_mean: float
    response_p95: float
    cpu_usage: float
    #: un-served fluid carried out of the epoch (requests).
    backlog: float = 0.0
    saturated: bool = False
    #: relative error of the fluid prediction measured by this DES window
    #: (sampling windows only).
    window_error: Optional[float] = None

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def completions(self) -> float:
        """Requests served during the epoch (the mixture weight)."""
        return self.throughput * self.duration

    def to_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "start": self.start,
            "end": self.end,
            "mode": self.mode,
            "rate": self.rate,
            "throughput": self.throughput,
            "response_mean": self.response_mean,
            "response_p95": self.response_p95,
            "cpu_usage": self.cpu_usage,
            "backlog": self.backlog,
            "saturated": self.saturated,
            "window_error": self.window_error,
        }


def _lognormal_from_mean_p95(mean: float, p95: float) -> tuple[float, float]:
    """Fit ``(mu, sigma)`` of a lognormal from its mean and 95th percentile.

    Solving ``p95 = exp(mu + z·σ)`` with ``mean = exp(mu + σ²/2)`` gives the
    quadratic ``σ²/2 − z·σ + ln(p95/mean) = 0``; the smaller root is the
    physical one (σ grows continuously from 0 as p95/mean grows from 1).
    """
    ratio = p95 / mean
    if ratio <= 1.0:
        return math.log(mean), 0.0
    disc = _Z95 * _Z95 - 2.0 * math.log(ratio)
    sigma = _Z95 - math.sqrt(disc) if disc > 0 else _Z95
    return math.log(mean) - 0.5 * sigma * sigma, sigma


class _Component:
    """One mixture component of the pooled response distribution."""

    __slots__ = ("weight", "samples", "mu", "sigma", "mean")

    def __init__(
        self,
        weight: float,
        *,
        samples: Optional[Sequence[float]] = None,
        mean: float = 0.0,
        p95: float = 0.0,
    ) -> None:
        self.weight = weight
        if samples is not None:
            self.samples: Optional[list[float]] = sorted(samples)
            self.mu = self.sigma = 0.0
            self.mean = self.samples[-1]
        else:
            self.samples = None
            self.mean = mean
            self.mu, self.sigma = _lognormal_from_mean_p95(mean, p95)

    def cdf(self, x: float) -> float:
        if self.samples is not None:
            return bisect_right(self.samples, x) / len(self.samples)
        if self.sigma == 0.0:
            return 1.0 if x >= self.mean else 0.0
        if x <= 0.0:
            return 0.0
        return 0.5 * (1.0 + math.erf((math.log(x) - self.mu) / (self.sigma * math.sqrt(2.0))))

    def upper(self) -> float:
        """A value with essentially all of this component's mass below it."""
        if self.samples is not None:
            return self.samples[-1]
        if self.sigma == 0.0:
            return self.mean
        return math.exp(self.mu + 6.0 * self.sigma)


class HybridAggregator:
    """Collects epoch samples and produces run-level metrics (see module doc)."""

    def __init__(self) -> None:
        self.epochs: list[EpochSample] = []
        self._components: list[_Component] = []
        self._response = RunningStats()
        self._throughput = RunningStats()
        self._cpu = RunningStats()
        self._completed = 0.0

    # -- ingestion ------------------------------------------------------------

    def add_fluid(self, sample: EpochSample) -> None:
        """Record a fluid epoch (parametric response estimate)."""
        if sample.mode != "fluid":
            raise ValidationError(f"expected a fluid sample, got mode={sample.mode!r}")
        self._add(sample, responses=None)

    def add_des(self, sample: EpochSample, responses: Sequence[float]) -> None:
        """Record a DES sampling window with its raw response samples."""
        if sample.mode != "des":
            raise ValidationError(f"expected a des sample, got mode={sample.mode!r}")
        self._add(sample, responses=responses)

    def _add(self, sample: EpochSample, responses: Optional[Sequence[float]]) -> None:
        self.epochs.append(sample)
        weight = sample.completions
        if weight <= 0:
            return
        self._completed += weight
        self._response.add(sample.response_mean, weight)
        self._throughput.add(sample.throughput, sample.duration)
        self._cpu.add(sample.cpu_usage, sample.duration)
        if responses:
            self._components.append(_Component(weight, samples=responses))
        elif sample.response_mean > 0 and sample.response_p95 > 0:
            self._components.append(
                _Component(weight, mean=sample.response_mean, p95=sample.response_p95)
            )

    # -- run-level outputs ----------------------------------------------------

    @property
    def completed(self) -> int:
        """Total requests served across all epochs (fluid mass included)."""
        return int(round(self._completed))

    def response_summary(self) -> Summary:
        """Completion-weighted mean ± std of per-epoch mean response."""
        return self._response.summary()

    def throughput_summary(self) -> Summary:
        """Duration-weighted mean ± std of per-epoch throughput."""
        return self._throughput.summary()

    def cpu_summary(self) -> Summary:
        return self._cpu.summary()

    def percentile(self, p: float) -> float:
        """Pooled response percentile across the epoch mixture.

        Bisects ``q`` such that the completion-weighted mixture CDF reaches
        ``p`` — empirical CDFs for DES windows, fitted lognormals for fluid
        epochs.
        """
        if not 0.0 < p < 1.0:
            raise ValidationError(f"percentile must be in (0, 1), got {p}")
        if not self._components:
            raise ValidationError("no epochs with completions recorded")
        total = sum(c.weight for c in self._components)

        def mixture_cdf(x: float) -> float:
            return sum(c.weight * c.cdf(x) for c in self._components) / total

        lo, hi = 0.0, max(c.upper() for c in self._components)
        for _ in range(80):
            mid = 0.5 * (lo + hi)
            if mixture_cdf(mid) < p:
                lo = mid
            else:
                hi = mid
        return 0.5 * (lo + hi)

    def percentiles(self) -> dict[str, float]:
        """The standard ``{"p50", "p95", "p99"}`` mapping."""
        return {f"p{q:g}": self.percentile(q / 100.0) for q in (50.0, 95.0, 99.0)}

    def series(self) -> MetricSeries:
        """Per-epoch time series in the standard engine shape.

        One sample per epoch, stamped at the epoch end — downstream
        consumers (CSV export, campaign plots) treat it exactly like a
        DES run sampled at the epoch length.
        """
        series = MetricSeries()
        for e in self.epochs:
            if e.completions > 0:
                series.user_response_time.append(e.end, e.response_mean)
            series.throughput.append(e.end, e.throughput)
            series.cpu_usage.append(e.end, e.cpu_usage)
        return series

    def mode_counts(self) -> dict[str, int]:
        counts = {"fluid": 0, "des": 0}
        for e in self.epochs:
            counts[e.mode] += 1
        return counts

    def des_time_fraction(self) -> float:
        """Fraction of simulated time covered by DES windows."""
        total = sum(e.duration for e in self.epochs)
        if total <= 0:
            return 0.0
        des = sum(e.duration for e in self.epochs if e.mode == "des")
        return des / total

    def window_errors(self) -> list[float]:
        return [e.window_error for e in self.epochs if e.window_error is not None]

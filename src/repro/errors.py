"""Exception hierarchy shared across the library.

All errors raised intentionally by :mod:`repro` derive from
:class:`ReproError`, so callers can distinguish library failures from
programming errors with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ValidationError(ReproError, ValueError):
    """An input (configuration, search space, parameter) failed validation."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class WallClockTimeout(SimulationError):
    """A simulation exceeded its wall-clock budget (a hung/runaway DES)."""


class FaultError(ReproError):
    """An injected (or detected) testbed fault surfaced during evaluation."""


class DeploymentError(ReproError):
    """A service could not be deployed on the simulated testbed."""


class ReservationError(DeploymentError):
    """The testbed could not satisfy a resource reservation."""


class OptimizationError(ReproError):
    """The optimization cycle failed (bad space, no feasible point, ...)."""


class ConvergenceWarning(UserWarning):
    """A model fit or optimizer did not fully converge; results are usable."""


class TrialError(ReproError):
    """A trial (one objective evaluation) raised inside the trial runner.

    When ``raise_on_failed_trial`` aborts a campaign mid-drain, the runner
    attaches the partial :class:`~repro.search.runner.ExperimentAnalysis`
    as :attr:`analysis` so completed work is not lost to the caller.
    """

    def __init__(self, message: str, *, trial_id: str | None = None) -> None:
        super().__init__(message)
        self.trial_id = trial_id
        self.analysis = None

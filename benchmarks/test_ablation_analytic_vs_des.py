"""Ablation — agreement of the analytic model with the DES.

The analytic twin is ~1000× faster; for it to be useful as a search proxy
it must *rank* configurations like the DES does. We sample random
configurations from the Eq. 2 space and compare.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats

from benchmarks.conftest import print_table, save_results
from repro.engine import AnalyticEngineModel, ThreadPoolConfig, simulate_engine
from repro.plantnet import paper_search_space
from repro.utils.tables import Table

N_CONFIGS = 24


@pytest.fixture(scope="module")
def paired():
    rng = np.random.default_rng(11)
    space = paper_search_space()
    model = AnalyticEngineModel()
    rows = []
    for _ in range(N_CONFIGS):
        point = space.inverse_transform(rng.random((1, len(space))))[0]
        config = ThreadPoolConfig(
            http=point[0], download=point[1], simsearch=point[2], extract=point[3]
        )
        analytic = model.response_time(config, 80)
        des = simulate_engine(
            config, 80, duration=250.0, warmup=50.0, seed=int(rng.integers(1e6))
        ).user_response_time.mean
        rows.append((config, analytic, des))
    return rows


def test_ablation_analytic_vs_des(benchmark, paired):
    model = AnalyticEngineModel()
    benchmark.pedantic(
        lambda: model.response_time(ThreadPoolConfig(40, 40, 7, 40), 80),
        rounds=1,
        iterations=20,
    )

    analytic = np.array([a for _, a, _ in paired])
    des = np.array([d for _, _, d in paired])
    rel_err = np.abs(analytic - des) / des
    rho = stats.spearmanr(analytic, des).statistic

    table = Table(
        ["statistic", "value"],
        title=f"Ablation — analytic vs DES over {N_CONFIGS} random configurations",
    )
    table.add_row(["Spearman rank correlation", f"{rho:.3f}"])
    table.add_row(["median |relative error|", f"{np.median(rel_err):.1%}"])
    table.add_row(["max |relative error|", f"{rel_err.max():.1%}"])
    print_table(table)
    save_results(
        "ablation_analytic_vs_des",
        {
            "spearman": float(rho),
            "median_rel_err": float(np.median(rel_err)),
            "max_rel_err": float(rel_err.max()),
        },
    )

    assert rho > 0.9, "analytic model must rank configurations like the DES"
    assert np.median(rel_err) < 0.10

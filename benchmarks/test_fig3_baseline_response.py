"""Fig. 3 — baseline user response time vs simultaneous requests.

The paper: with the production configuration, keeping the response under
the 4-second user tolerance caps the system at ~120 simultaneous requests
(3.86 ± 0.13 s at 120).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table, save_results
from repro.plantnet import BASELINE
from repro.plantnet.paper import FIG3_BASELINE_120
from repro.utils.tables import Table

REQUEST_SWEEP = (20, 40, 60, 80, 100, 120, 140, 160)


@pytest.fixture(scope="module")
def curve(sweep_scenario):
    return {
        requests: sweep_scenario.run(BASELINE, requests)
        for requests in REQUEST_SWEEP
    }


def test_fig3_baseline_response_curve(benchmark, curve, sweep_scenario):
    def measure():
        return sweep_scenario.run(BASELINE, 120)

    result_120 = benchmark.pedantic(measure, rounds=1, iterations=1)

    table = Table(
        ["simultaneous requests", "measured resp (s)", "paper"],
        title="Fig. 3 — baseline user response time vs workload",
    )
    rows = {}
    for requests, result in curve.items():
        paper = f"{FIG3_BASELINE_120['user_resp_time']} ± {FIG3_BASELINE_120['std']}" if requests == 120 else ""
        table.add_row([requests, str(result.user_response_time), paper])
        rows[requests] = result.user_response_time.mean
    print_table(table)
    save_results("fig3_baseline_response", {"curve": rows})

    # Shape assertions (who wins / where the knee falls):
    values = [rows[r] for r in REQUEST_SWEEP]
    assert values == sorted(values), "response time must be non-decreasing in load"
    # the 4 s tolerance is crossed between 120 and 160 requests
    assert rows[120] <= FIG3_BASELINE_120["tolerance_s"] * 1.05
    assert rows[160] > FIG3_BASELINE_120["tolerance_s"]
    # the paper's headline point: 3.86 ± 0.13 at 120 (we allow 12 %)
    assert result_120.user_response_time.mean == pytest.approx(
        FIG3_BASELINE_120["user_resp_time"], rel=0.12
    )
    # low load is flat: doubling 20→40 changes response by < 15 %
    assert rows[40] / rows[20] < 1.15

"""Fig. 9 — impact of extract thread-pool variability (OAT, ±2 around 7).

Reproduces all seven panels: (a) user response time — minimum at 6
threads; (b) per-task processing times — wait-extract falls and simsearch
rises with more extract threads; (c) CPU usage — pinned at 100 % for 8–9;
(d) GPU memory — grows with the pool; (e) system memory — grows with the
pool; (f) extract pool busy ~100 % for 5–7, 80–100 % for 8–9; (g)
simsearch pool busy ~50–60 % for 5–7, ≥80 % for 8–9.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table, save_results
from repro.plantnet import PRELIMINARY_OPTIMUM
from repro.plantnet.paper import FIG9_EXTRACT_SWEEP
from repro.sensitivity import OATAnalysis, ParameterSweep
from repro.utils.tables import Table

EXTRACT_VALUES = FIG9_EXTRACT_SWEEP["values"]  # (5, 6, 7, 8, 9)


@pytest.fixture(scope="module")
def oat_result(sweep_scenario):
    analysis = OATAnalysis(
        lambda cfg: sweep_scenario.evaluate(cfg, 80, seed=9),
        PRELIMINARY_OPTIMUM.to_dict(),
    )
    return analysis.run([ParameterSweep("extract", EXTRACT_VALUES)])


def test_fig9_extract_oat(benchmark, oat_result, sweep_scenario):
    benchmark.pedantic(
        lambda: sweep_scenario.evaluate(
            PRELIMINARY_OPTIMUM.replace(extract=6).to_dict(), 80, seed=10
        ),
        rounds=1,
        iterations=1,
    )

    sweep = dict(oat_result.sweeps["extract"])
    table = Table(
        [
            "extract",
            "resp (s)",
            "wait-extract",
            "simsearch task",
            "cpu",
            "gpu mem (GB)",
            "sys mem (GB)",
            "extract busy",
            "simsearch busy",
        ],
        title="Fig. 9 — extract pool OAT around the preliminary optimum",
    )
    rows = {}
    for e in EXTRACT_VALUES:
        m = sweep[e]
        rows[e] = m
        table.add_row(
            [
                e,
                f"{m['user_resp_time']:.3f}",
                f"{m['task_wait-extract']:.3f}",
                f"{m['task_simsearch']:.3f}",
                f"{m['cpu_usage']:.0%}",
                f"{m['gpu_memory_gb']:.1f}",
                f"{m['system_memory_gb']:.1f}",
                f"{m['busy_extract']:.0%}",
                f"{m['busy_simsearch']:.0%}",
            ]
        )
    print_table(table)
    save_results("fig9_extract_oat", {str(k): v for k, v in rows.items()})

    resp = {e: rows[e]["user_resp_time"] for e in EXTRACT_VALUES}
    # (a) minimum at 6 threads; 5 and 9 clearly worse.
    best = min(resp, key=resp.get)
    assert best == FIG9_EXTRACT_SWEEP["best"], resp
    assert resp[5] > resp[6]
    assert resp[9] > resp[7]
    # (b) wait-extract decreases with more extract threads...
    waits = [rows[e]["task_wait-extract"] for e in EXTRACT_VALUES]
    assert waits == sorted(waits, reverse=True)
    # ...while the simsearch task time increases (CPU competition).
    simsearch = [rows[e]["task_simsearch"] for e in EXTRACT_VALUES]
    assert simsearch == sorted(simsearch)
    # (c) CPU pinned for oversized pools.
    for e in FIG9_EXTRACT_SWEEP["cpu_saturated_at"]:
        assert rows[e]["cpu_usage"] > 0.95, e
    assert rows[5]["cpu_usage"] < rows[9]["cpu_usage"]
    # (d)+(e) memory grows with the pool.
    gpu_mem = [rows[e]["gpu_memory_gb"] for e in EXTRACT_VALUES]
    sys_mem = [rows[e]["system_memory_gb"] for e in EXTRACT_VALUES]
    assert gpu_mem == sorted(gpu_mem)
    assert sys_mem == sorted(sys_mem)
    # (f) extract busy ≈100 % at 5–7, lower at 8–9.
    for e in FIG9_EXTRACT_SWEEP["extract_busy_100_at"]:
        assert rows[e]["busy_extract"] > 0.93, e
    for e in FIG9_EXTRACT_SWEEP["extract_busy_80_100_at"]:
        assert 0.7 <= rows[e]["busy_extract"] <= 1.0, e
    assert rows[9]["busy_extract"] < rows[6]["busy_extract"]
    # (g) simsearch busy rises from ~50-60 % (5–7) to ≥75 % (8–9).
    assert 0.4 <= rows[5]["busy_simsearch"] <= 0.7
    for e in (8, 9):
        assert rows[e]["busy_simsearch"] >= 0.72, e

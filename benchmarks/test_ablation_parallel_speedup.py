"""Ablation — the Sec. V-B claim: parallel asynchronous optimization.

"This approach speeds up the search of application parameters thanks to
parallel and asynchronous application deployments [...] which helps to
significantly reduce the application optimization time from days to hours
compared to a sequential optimization approach."

We run the identical campaign (same search algorithm, same budget of DES
evaluations) sequentially and with a process-backed parallel runner, and
compare wall-clock time. Process workers give true CPU parallelism for the
pure-Python engine DES.
"""

from __future__ import annotations

import os

import pytest

from benchmarks.conftest import print_table, save_results
from repro.bayesopt.space import Space
from repro.plantnet import PlantNetScenario, paper_search_space
from repro.search import RandomSearch, run
from repro.utils.tables import Table

NUM_SAMPLES = 16
WORKERS = min(4, os.cpu_count() or 1)

_scenario = PlantNetScenario(
    duration=400.0, warmup=50.0, repetitions=1, base_seed=0, use_testbed=False
)


def _trainable(config: dict) -> dict:
    return _scenario.evaluate(config, 80, seed=17)


def _campaign(executor: str) -> float:
    space: Space = paper_search_space()
    analysis = run(
        _trainable,
        search_alg=RandomSearch(space, seed=3),
        metric="user_resp_time",
        num_samples=NUM_SAMPLES,
        executor=executor,
        max_workers=WORKERS,
        name=f"speedup-{executor}",
    )
    assert len(analysis.trials) == NUM_SAMPLES
    return analysis.wall_clock_s


def test_ablation_parallel_speedup(benchmark):
    sequential = _campaign("sync")
    parallel = benchmark.pedantic(lambda: _campaign("process"), rounds=1, iterations=1)

    speedup = sequential / parallel
    table = Table(
        ["execution", "wall clock (s)", "speedup"],
        title=f"Ablation — sequential vs parallel optimization ({NUM_SAMPLES} evaluations, {WORKERS} workers)",
    )
    table.add_row(["sequential", f"{sequential:.2f}", "1.0x"])
    table.add_row([f"parallel ({WORKERS} processes)", f"{parallel:.2f}", f"{speedup:.2f}x"])
    print_table(table)
    save_results(
        "ablation_parallel_speedup",
        {"sequential_s": sequential, "parallel_s": parallel, "speedup": speedup, "workers": WORKERS},
    )

    if WORKERS >= 2:
        # Real speedup, accounting for process start-up overhead; the bar
        # scales with the machine (CI boxes may expose only two cores).
        minimum = 1.4 if WORKERS >= 4 else 1.15
        assert speedup > minimum, f"expected parallel speedup, got {speedup:.2f}x"

"""Campaign-throughput benchmark for the ask/tell hot path.

Measures how fast an optimization campaign turns the suggest → evaluate →
tell crank, comparing two arms over the same search space and seed:

- **baseline** — the pre-batching protocol: one ``ask()`` per trial with a
  surrogate refit on every ask (``refit_every=1``), an unbounded fitted-model
  history, and an eager ``result()`` rebuild after every ``tell`` (what the
  optimizer used to do internally).
- **fast** — the batched hot path through :func:`repro.search.run`: asks are
  drawn eight at a time from a single surrogate fit, refits are throttled
  (``refit_every=8``), the model history is off, and results are lazy.

The objective is a cheap analytic quadratic so the measurement isolates the
optimizer-side cost (suggest + tell), not the evaluation. Results land in
``benchmarks/results/BENCH_campaign.json``: trials/sec per arm, the
suggest+tell speedup, p50/p90/p99 suggest and tell latencies, and peak RSS.

Scale: 500 trials by default (the paper-scale campaign budget); set
``REPRO_BENCH_SMOKE=1`` for a 120-trial smoke run (used by CI).
"""

from __future__ import annotations

import os
import resource
import time

import numpy as np

from benchmarks.conftest import save_results
from repro.bayesopt import Optimizer, Real, Space
from repro.search import run
from repro.search.algos import SurrogateSearch

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") == "1"
N_TRIALS = 120 if SMOKE else 500
BATCH_SIZE = 8
REFIT_EVERY = 8
SEED = 2021


def _space() -> Space:
    return Space([
        Real(0.0, 1.0, name="a"),
        Real(0.0, 1.0, name="b"),
        Real(0.0, 1.0, name="c"),
    ])


def _objective(config: dict) -> float:
    return (
        (config["a"] - 0.25) ** 2
        + (config["b"] - 0.5) ** 2
        + (config["c"] - 0.75) ** 2
    )


def _peak_rss_mb() -> float:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _percentiles(samples: list[float]) -> dict[str, float]:
    arr = np.asarray(samples, dtype=float)
    return {
        "p50_ms": float(np.percentile(arr, 50) * 1e3),
        "p90_ms": float(np.percentile(arr, 90) * 1e3),
        "p99_ms": float(np.percentile(arr, 99) * 1e3),
    }


def _run_baseline(n: int) -> dict:
    """Legacy per-trial protocol: refit-per-ask, model history, eager result."""
    space = _space()
    opt = Optimizer(space, random_state=SEED, refit_every=1, keep_models=n)
    names = space.names
    suggest_s: list[float] = []
    tell_s: list[float] = []
    wall0 = time.perf_counter()
    for _ in range(n):
        t0 = time.perf_counter()
        point = opt.ask()
        t1 = time.perf_counter()
        y = _objective(dict(zip(names, point)))
        t2 = time.perf_counter()
        opt.tell(point, y)
        opt.result()  # the old tell() rebuilt this eagerly every time
        t3 = time.perf_counter()
        suggest_s.append(t1 - t0)
        tell_s.append(t3 - t2)
    wall = time.perf_counter() - wall0
    opt_time = sum(suggest_s) + sum(tell_s)
    return {
        "trials": n,
        "wall_s": wall,
        "opt_time_s": opt_time,
        "trials_per_sec": n / wall,
        "opt_trials_per_sec": n / opt_time,
        "suggest": _percentiles(suggest_s),
        "tell": _percentiles(tell_s),
        "models_kept": len(opt.models),
        "best": opt.result().fun,
    }


def _run_fast(n: int) -> dict:
    """Batched hot path through the trial runner, costs from Trial.cost."""
    space = _space()
    search = SurrogateSearch(
        space,
        batch_size=BATCH_SIZE,
        random_state=SEED,
        refit_every=REFIT_EVERY,
    )
    wall0 = time.perf_counter()
    analysis = run(
        _objective,
        space=space,
        metric="loss",
        num_samples=n,
        search_alg=search,
        name="bench_campaign",
    )
    wall = time.perf_counter() - wall0
    suggest_s = [t.cost.get("suggest_s", 0.0) for t in analysis.trials]
    tell_s = [t.cost.get("tell_s", 0.0) for t in analysis.trials]
    opt_time = sum(suggest_s) + sum(tell_s)
    return {
        "trials": len(analysis.trials),
        "wall_s": wall,
        "opt_time_s": opt_time,
        "trials_per_sec": len(analysis.trials) / wall,
        "opt_trials_per_sec": len(analysis.trials) / opt_time,
        "suggest": _percentiles(suggest_s),
        "tell": _percentiles(tell_s),
        "models_kept": len(search.optimizer.models),
        "best": analysis.best_result,
    }


def test_campaign_throughput():
    fast = _run_fast(N_TRIALS)
    rss_after_fast = _peak_rss_mb()
    base = _run_baseline(N_TRIALS)

    speedup = base["opt_time_s"] / fast["opt_time_s"]
    payload = {
        "scale": "smoke" if SMOKE else "full",
        "n_trials": N_TRIALS,
        "batch_size": BATCH_SIZE,
        "refit_every": REFIT_EVERY,
        "seed": SEED,
        "baseline": base,
        "fast": fast,
        "suggest_tell_speedup": speedup,
        "peak_rss_mb": _peak_rss_mb(),
        "peak_rss_after_fast_mb": rss_after_fast,
    }
    save_results("BENCH_campaign", payload)

    print()
    print(f"campaign throughput ({payload['scale']}, {N_TRIALS} trials)")
    print(
        f"  baseline: {base['trials_per_sec']:7.1f} trials/s wall, "
        f"{base['opt_trials_per_sec']:7.1f} trials/s opt-side, "
        f"{base['models_kept']} models kept"
    )
    print(
        f"  fast:     {fast['trials_per_sec']:7.1f} trials/s wall, "
        f"{fast['opt_trials_per_sec']:7.1f} trials/s opt-side, "
        f"{fast['models_kept']} models kept"
    )
    print(f"  suggest+tell speedup: {speedup:.1f}x")
    print(
        f"  fast suggest p50/p90/p99: "
        f"{fast['suggest']['p50_ms']:.2f}/{fast['suggest']['p90_ms']:.2f}/"
        f"{fast['suggest']['p99_ms']:.2f} ms"
    )
    print(
        f"  fast tell p50/p90/p99: "
        f"{fast['tell']['p50_ms']:.2f}/{fast['tell']['p90_ms']:.2f}/"
        f"{fast['tell']['p99_ms']:.2f} ms"
    )
    print(f"  peak RSS: {payload['peak_rss_mb']:.1f} MB")

    # The hot-path rewrite must hold a >=5x suggest+tell advantage and keep
    # the fitted-model history flat (no per-trial model retention).
    assert speedup >= 5.0, f"expected >=5x suggest+tell speedup, got {speedup:.1f}x"
    assert fast["models_kept"] == 0
    assert fast["trials"] == N_TRIALS
    # Both arms optimize: sanity that batching didn't break convergence badly.
    assert fast["best"] < 0.5
    assert base["best"] < 0.5
